#!/usr/bin/env python3
"""Scenario: dissecting where CAIS's speedup comes from.

An architecture-study workflow: take the L1 sub-layer (GEMM-RS + LN +
AG-GEMM) and switch CAIS's three techniques on one at a time —

  1. compute-aware ISA + in-switch merging only      (CAIS-Base)
  2. + graph-level dataflow optimizer                (CAIS-Partial)
  3. + traffic control (separate load/reduce VCs)    (CAIS)
  4. full minus TB coordination                      (CAIS-w/o-Coord)

— and report, for each, the makespan, link utilization, merge-session
statistics and eviction behaviour, i.e. a reproduction of the paper's
Section V-B analysis in one script.

Run:  python examples/sublayer_fusion_study.py
"""

from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system

VARIANTS = ("CAIS-Base", "CAIS-Partial", "CAIS", "CAIS-w/o-Coord")


def main() -> None:
    model = LLAMA_7B.scaled(0.25)
    config = dgx_h100_config()
    tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

    print("CAIS technique study on LLaMA-7B L1 "
          "(output projection -> LN -> FFN1), TP=8\n")
    results = {}
    for name in VARIANTS:
        graph = sublayer_graph(model, config.num_gpus, "L1")
        results[name] = make_system(name, config, tiling=tiling).run([graph])

    header = (f"{'variant':16s} {'time':>10s} {'util':>6s} "
              f"{'sessions':>9s} {'merged':>7s} {'evicted':>8s} "
              f"{'wait':>8s}")
    print(header)
    print("-" * len(header))
    for name in VARIANTS:
        res = results[name]
        m = res.merge_stats.summary()
        print(f"{name:16s} {res.makespan_ns / 1e3:8.1f} us "
              f"{res.average_bandwidth_utilization():5.1%} "
              f"{m['sessions_completed']:9.0f} {m['requests_merged']:7.0f} "
              f"{m['lru_evictions'] + m['timeout_evictions']:8.0f} "
              f"{m['average_wait_us']:6.1f} us")

    base = results["CAIS-Base"].makespan_ns
    full = results["CAIS"].makespan_ns
    print(f"\nBreaking the global barrier (Base) is only the start: the "
          f"dataflow optimizer and coordination add another "
          f"{base / full:.2f}x on top of it (paper Section V-A-3: the "
          f"unlocked scheduling space must actually be exploited).")


if __name__ == "__main__":
    main()
