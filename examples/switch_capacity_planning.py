#!/usr/bin/env python3
"""Scenario: provisioning the switch merge table for a new design.

A hardware-architect workflow: you are sizing the per-port Merge Table for
a next-generation switch.  Too small and sessions thrash (evictions turn
merged traffic back into redundant transfers); too large and you burn die
area.  This example sweeps the capacity, with and without merging-aware TB
coordination, and prints performance alongside the analytic area cost of
each point — the trade-off behind the paper's Figs. 13/14 and its 40 KB
choice.

Run:  python examples/switch_capacity_planning.py
"""

from dataclasses import replace

from repro.common.config import dgx_h100_config
from repro.hw.area import switch_merge_unit_area
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system

CAPACITIES = (32, 64, 128, 320, 640)


def main() -> None:
    model = LLAMA_7B.scaled(0.125)
    base_cfg = dgx_h100_config()
    tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

    print("Merge-table capacity planning (LLaMA-7B L1, TP=8)\n")
    print(f"{'entries':>8s} {'size':>7s} {'area':>10s} "
          f"{'CAIS time':>11s} {'w/o coord':>11s} {'evictions':>10s}")
    for entries in CAPACITIES:
        cfg = base_cfg.with_merge_entries(entries)
        area = switch_merge_unit_area(cfg.switch)
        times = {}
        evictions = 0
        for system in ("CAIS", "CAIS-w/o-Coord"):
            graph = sublayer_graph(model, cfg.num_gpus, "L1")
            res = make_system(system, cfg, tiling=tiling).run([graph])
            times[system] = res.makespan_ns
            if system == "CAIS":
                summary = res.merge_stats.summary()
                evictions = int(summary["lru_evictions"] +
                                summary["timeout_evictions"])
        print(f"{entries:8d} {entries * 128 // 1024:5d}KB "
              f"{area.total_mm2:8.3f}mm2 "
              f"{times['CAIS'] / 1e3:9.1f}us "
              f"{times['CAIS-w/o-Coord'] / 1e3:9.1f}us "
              f"{evictions:10d}")

    print("\nReading the table: with coordination the knee sits near the "
          "paper's 320-entry (40 KB) point — beyond it, extra SRAM buys "
          "little; without coordination even large tables stay degraded.")


if __name__ == "__main__":
    main()
