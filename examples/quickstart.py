#!/usr/bin/env python3
"""Quickstart: run one communication-heavy sub-layer under CAIS and a
baseline, and print the speedup.

This is the smallest end-to-end use of the library:

1. pick a model (paper Table I) and scale it down so the run takes seconds,
2. build the GEMM-RS + LN + AG-GEMM sub-layer graph (paper Fig. 12's L1),
3. run it under SP-NVLS (communication-centric in-switch computing) and
   under CAIS (compute-aware), on identical simulated DGX-H100 nodes,
4. compare makespans, bandwidth utilization and merge statistics.

Run:  python examples/quickstart.py
"""

from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system


def main() -> None:
    # 1. Workload: LLaMA-7B at 1/8 of its token count (seconds, not hours).
    model = LLAMA_7B.scaled(0.125)
    config = dgx_h100_config()           # 8 GPUs x 4 NVSwitch planes
    tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

    # 2. The paper's L1 sub-layer: output projection -> LN -> first FFN.
    graph = sublayer_graph(model, tp=config.num_gpus, which="L1")

    # 3. Run both systems.  Each run builds a fresh simulated node.
    results = {}
    for name in ("SP-NVLS", "CAIS"):
        graph = sublayer_graph(model, tp=config.num_gpus, which="L1")
        results[name] = make_system(name, config, tiling=tiling).run([graph])

    # 4. Report.
    print(f"workload: {model.name} (scaled), L1 sub-layer, "
          f"TP={config.num_gpus}")
    for name, res in results.items():
        print(f"  {name:8s}: {res.makespan_ns / 1e3:8.1f} us   "
              f"link utilization {res.average_bandwidth_utilization():.1%}   "
              f"({res.tbs_completed} thread blocks, {res.events} events)")
    speedup = results["SP-NVLS"].makespan_ns / results["CAIS"].makespan_ns
    print(f"  CAIS speedup over SP-NVLS: {speedup:.2f}x")

    merge = results["CAIS"].merge_stats
    print(f"\nCAIS in-switch merging: "
          f"{merge.sessions_completed} sessions completed, "
          f"{merge.requests_merged} requests merged, "
          f"average first-to-last request spread "
          f"{merge.average_wait_ns() / 1e3:.1f} us")


if __name__ == "__main__":
    main()
