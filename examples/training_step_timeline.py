#!/usr/bin/env python3
"""Scenario: where does a training step's time go?

A performance-engineering workflow: run one transformer layer's forward +
backward pass (the repeating unit of a TP training step) under CAIS and
under T3-NVLS, and print each run's kernel Gantt chart plus the overlap
between the communication-heavy producer/consumer GEMM pairs.  The charts
make the paper's Fig. 9 visible: under CAIS downstream kernels launch long
before their producers finish.

Run:  python examples/training_step_timeline.py
"""

from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sp_backward_layer, sp_forward_layer
from repro.metrics.report import format_run_report
from repro.systems import make_system


def main() -> None:
    model = LLAMA_7B.scaled(0.125)
    config = dgx_h100_config()
    tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

    results = {}
    for name in ("T3-NVLS", "CAIS"):
        graphs = [sp_forward_layer(model, config.num_gpus),
                  sp_backward_layer(model, config.num_gpus)]
        results[name] = make_system(name, config, tiling=tiling).run(graphs)

    for name, res in results.items():
        print("=" * 72)
        print(format_run_report(res, width=40))
        timeline = res.timeline
        overlap = timeline.overlap_ns("proj", "ffn1")
        proj = timeline.span_for("proj")
        if proj is not None and proj.duration_ns > 0:
            print(f"\nproj/ffn1 overlap (the L1 chain): "
                  f"{overlap / 1e3:.1f} us "
                  f"({overlap / proj.duration_ns:.0%} of proj's lifetime)")
        print()

    t3 = results["T3-NVLS"].makespan_ns
    cais = results["CAIS"].makespan_ns
    print(f"CAIS speedup over T3-NVLS on the training step: "
          f"{t3 / cais:.2f}x")
    print(f"Per optimizer step at {LLAMA_7B.layers} layers: "
          f"{(t3 - cais) * LLAMA_7B.layers / 1e6:.2f} ms saved.")


if __name__ == "__main__":
    main()
