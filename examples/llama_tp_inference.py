#!/usr/bin/env python3
"""Scenario: choosing a serving stack for LLaMA-7B prefill on one DGX node.

A deployment question the paper's introduction motivates: you serve LLaMA
with 8-way tensor parallelism; the prefill stage is communication-heavy,
so which compute-communication strategy should the stack use?  This example
runs one full transformer layer (forward pass — the prefill's unit of work)
under every system the paper evaluates and prints a ranking with the
communication share of each.

Run:  python examples/llama_tp_inference.py [--scale 0.125]
"""

import argparse

from repro.common.config import dgx_h100_config
from repro.experiments.runner import layer_graphs, style_for
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.systems import SYSTEM_CLASSES, make_system

SYSTEMS = ("TP-NVLS", "SP-NVLS", "CoCoNet", "FuseLib", "T3",
           "CoCoNet-NVLS", "FuseLib-NVLS", "T3-NVLS", "LADM", "CAIS")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.125,
                        help="fraction of LLaMA-7B's tokens to simulate")
    args = parser.parse_args()

    model = LLAMA_7B.scaled(args.scale)
    config = dgx_h100_config()
    tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

    print(f"LLaMA-7B prefill, one layer, TP=8, tokens={model.tokens} "
          f"(scale {args.scale})\n")
    rows = []
    for name in SYSTEMS:
        graphs = layer_graphs(model, config.num_gpus, name, training=False)
        res = make_system(name, config, tiling=tiling).run(graphs)
        rows.append((res.makespan_ns, name, res))

    rows.sort()
    best = rows[0][0]
    print(f"{'rank':4s} {'system':14s} {'layer time':>12s} "
          f"{'vs best':>8s} {'TP style':>9s} {'link util':>10s}")
    for rank, (makespan, name, res) in enumerate(rows, 1):
        print(f"{rank:<4d} {name:14s} {makespan / 1e3:10.1f} us "
              f"{makespan / best:7.2f}x {style_for(name):>9s} "
              f"{res.average_bandwidth_utilization():9.1%}")

    layers = LLAMA_7B.layers
    fastest = rows[0]
    print(f"\nAt {layers} layers, the fastest stack ({fastest[1]}) spends "
          f"{fastest[0] * layers / 1e6:.2f} ms per prefill step on this "
          f"simulated node.")


if __name__ == "__main__":
    main()
