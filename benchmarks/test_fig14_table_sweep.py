"""Fig. 14 bench: performance sensitivity to merge-table size."""

from repro.experiments import fig14_table_sweep
from repro.experiments.runner import QUICK


def test_fig14_table_size_sweep(once):
    results = once(fig14_table_sweep.run, QUICK)
    print()
    print(fig14_table_sweep.format_table(results))
    norm = fig14_table_sweep.normalized(results)
    capacities = sorted(norm["CAIS"])
    # Coordinated CAIS dominates the uncoordinated variant at every size.
    for entries in capacities:
        assert norm["CAIS"][entries] >= \
            norm["CAIS-w/o-Coord"][entries] * 0.97, entries
    # The coordinated system recovers full performance by the shipping
    # 320-entry table; the uncoordinated one is still degraded there.
    assert norm["CAIS"][capacities[-1]] > 0.95
    assert norm["CAIS-w/o-Coord"][capacities[-1]] < 0.92
