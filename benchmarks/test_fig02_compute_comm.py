"""Fig. 2 bench: compute vs communication time when scaling up GPUs."""

from repro.experiments import fig02_scaling
from repro.experiments.runner import QUICK


def test_fig02_compute_comm_scaling(once):
    results = once(fig02_scaling.run, QUICK)
    print()
    print(fig02_scaling.format_table(results))
    ratios = [results[tp]["ratio"] for tp in sorted(results)]
    # Communication share grows monotonically with the GPU count...
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    # ...and overtakes computation somewhere in the 4-16 GPU range
    # (the paper's crossover is at 4-8 GPUs, ~1.6x at 8).
    assert results[4]["ratio"] < 1.5
    assert results[16]["ratio"] > 1.0
    assert 0.5 < results[8]["ratio"] < 3.0
