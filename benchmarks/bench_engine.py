#!/usr/bin/env python3
"""Engine fast-path benchmark: reference event path vs fast-path layers.

Times one full fig11 workload (LLaMA-7B layer graphs, default scale) per
system with every fast-path layer off and with all layers on, records
per-layer timings for the headline system, and — in the same process —
verifies the equivalence contract: the fast-path run must reproduce the
reference makespan, total compute, TB count, and GPU utilization to
*exact float equality* (any mismatch fails the benchmark immediately; a
fast wrong answer is worthless).

Writes ``BENCH_engine.json``:

* ``systems.<name>`` — {reference_s, fastpath_s, speedup, exact,
  events_reference, events_fastpath, details} per system (times are
  best-of-N process-CPU seconds; see ``timed_configs``);
* ``layers.<layer>`` — CPU time for the headline system with only that
  layer enabled (attribution of where the speedup comes from);
* ``events_per_cpu_second`` — engine throughput on the reference path
  (the raw event-loop figure of merit, independent of elision);
* ``headline`` — the headline system's speedup (the number the gate in
  ``check_regression.py --engine`` tracks).

Run:  PYTHONPATH=src python benchmarks/bench_engine.py \
          [--model LLaMA-7B] [--systems TP-NVLS CAIS CoCoNet T3] \
          [--training] [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.common import fastpath
from repro.common.config import dgx_h100_config
from repro.experiments.runner import DEFAULT, layer_graphs, run_system
from repro.llm.models import TABLE_I

#: The system whose per-layer attribution and headline speedup we track.
HEADLINE = "TP-NVLS"

LAYERS = {
    "calendar_queue": dict(calendar_queue=True, link_windows=False,
                           analytic_collectives=False,
                           analytic_kernels=False),
    "link_windows": dict(calendar_queue=False, link_windows=True,
                         analytic_collectives=False,
                         analytic_kernels=False),
    "analytic_collectives": dict(calendar_queue=False, link_windows=False,
                                 analytic_collectives=True,
                                 analytic_kernels=False),
    "analytic_kernels": dict(calendar_queue=False, link_windows=False,
                             analytic_collectives=False,
                             analytic_kernels=True),
}


def observables(res):
    return (res.makespan_ns, res.compute_ns, res.tbs_completed,
            res.gpu_utilization)


def timed_run(system, graphs, cfg):
    start = time.process_time()
    res = run_system(system, graphs, cfg, DEFAULT)
    return res, time.process_time() - start


def timed_configs(system, graphs, cfg, configs, repeat=1):
    """Best-of-``repeat`` per config, in process-CPU seconds.

    CPU time (not wall clock) because the simulator is a single-threaded
    pure-Python process: it measures the same thing while being immune
    to scheduler preemption on loaded runners (wall-clock on a busy
    single-core CI box swings +/-30%).  Even CPU time drifts a few
    percent over a process's lifetime (allocator state), which would
    bias whichever config is measured last — so the repetitions are
    *interleaved* across configs and the minimum per config is kept
    (the standard robust estimator)."""
    results = {name: None for name in configs}
    best = {name: None for name in configs}
    for _ in range(max(1, repeat)):
        for name, fp_config in configs.items():
            with fastpath.overridden(fp_config):
                res, elapsed = timed_run(system, graphs, cfg)
            results[name] = res
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    return results, best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="LLaMA-7B",
                        choices=sorted(TABLE_I))
    parser.add_argument("--systems", nargs="+",
                        default=["TP-NVLS", "CAIS", "CoCoNet", "T3"])
    parser.add_argument("--training", action="store_true",
                        help="benchmark the forward+backward graphs")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per timing; the minimum is "
                             "reported (default: %(default)s)")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args()

    model = TABLE_I[args.model]
    cfg = dgx_h100_config()
    report = {
        "model": args.model,
        "training": args.training,
        "systems": {},
        "layers": {},
    }

    for system in args.systems:
        graphs = layer_graphs(model, cfg.num_gpus, system,
                              training=args.training)
        configs = {"reference": fastpath.DISABLED,
                   "fastpath": fastpath.FastPathConfig()}
        if system == HEADLINE:
            configs.update({layer: fastpath.FastPathConfig(**fields)
                            for layer, fields in LAYERS.items()})
        results, best = timed_configs(system, graphs, cfg, configs,
                                      args.repeat)
        ref, ref_s = results["reference"], best["reference"]
        fast, fast_s = results["fastpath"], best["fastpath"]
        exact = observables(fast) == observables(ref)
        row = {
            "reference_s": ref_s,
            "fastpath_s": fast_s,
            "speedup": ref_s / fast_s if fast_s > 0 else 0.0,
            "exact": exact,
            "events_reference": ref.events,
            "events_fastpath": fast.events,
            "details": {k: v for k, v in sorted(fast.details.items())
                        if k.startswith("fastpath.")},
        }
        report["systems"][system] = row
        print(f"{system:>8}: ref {ref_s:6.2f}s  fast {fast_s:6.2f}s  "
              f"x{row['speedup']:.2f}  exact={exact}")
        if not exact:
            print(f"  reference {observables(ref)}")
            print(f"  fast-path {observables(fast)}")
            print("EQUIVALENCE VIOLATION — benchmark aborted")
            return 1
        if system == HEADLINE:
            for layer in LAYERS:
                assert observables(results[layer]) == observables(ref), \
                    layer
                report["layers"][layer] = {"cpu_s": best[layer]}
                print(f"  {layer:>22}: {best[layer]:6.2f}s "
                      f"(x{ref_s / best[layer]:.2f})")

    headline = report["systems"].get(HEADLINE)
    if headline is not None:
        report["headline"] = headline["speedup"]
        h = report["systems"][HEADLINE]
        report["events_per_cpu_second"] = (
            h["events_reference"] / h["reference_s"])

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report: {args.out}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
