"""Table II bench: full- vs half-scale speedup preservation."""

from repro.experiments import table2_scaling_validation
from repro.experiments.runner import QUICK


def test_table2_scaling_validation(once):
    results = once(table2_scaling_validation.run, QUICK)
    print()
    print(table2_scaling_validation.format_table(results))
    full = results["Full"]["speedup"]
    half = results["Half"]["speedup"]
    # The scaled-down setup preserves the CAIS-over-TP-NVLS speedup
    # (paper: 1.43 full vs 1.40 half).
    assert full > 1.0 and half > 1.0
    assert abs(full - half) < 0.2
