"""Fig. 17 bench: per-GPU throughput scaling to 16/32 GPUs."""

from repro.experiments import fig17_scalability
from repro.experiments.runner import QUICK


def test_fig17_scalability(once):
    # 8 and 16 GPUs here; the 32-GPU point of the figure regenerates via
    # ``python -m repro.experiments fig17`` (it alone costs ~4 minutes).
    results = once(fig17_scalability.run, QUICK, "L1", (8, 16))
    print()
    print(fig17_scalability.format_table(results))
    norm = fig17_scalability.normalized(results)
    # Paper: per-GPU throughput drops < 5% at 32 GPUs for both systems.
    # We allow a wider band at benchmark scale but require the same
    # near-flat scaling shape and CAIS staying ahead of CoCoNet-NVLS.
    for gpus, value in norm["CAIS"].items():
        assert value > 0.75, (gpus, value)
    for gpus in norm["CAIS"]:
        assert norm["CAIS"][gpus] >= norm["CoCoNet-NVLS"][gpus] * 0.98
