"""Fig. 13 bench: merge-table requirements and waiting-time ablation."""

from repro.experiments import fig13_merge_table
from repro.experiments.runner import QUICK


def test_fig13a_required_table_size(once):
    results = once(fig13_merge_table.run_table_size, QUICK, ["LLaMA-7B"],
                   ("L1",))
    row = results["LLaMA-7B L1"]
    print()
    print(fig13_merge_table.format_table(results, {}))
    # Coordination shrinks the required table substantially (paper: 87%).
    assert row["reduction_%"] > 30.0
    assert row["CAIS"] < row["CAIS-w/o-Coord"]


def test_fig13b_wait_ablation(once):
    wait = once(fig13_merge_table.run_wait_ablation, QUICK)
    print()
    for stage, value in wait.items():
        print(f"  {stage}: {value:.2f} us")
    stages = list(wait.values())
    # Each coordination stage tightens the first-to-last request spread;
    # end-to-end the reduction is large (paper: 35 us -> <3 us, ~10x).
    assert stages[-1] < stages[0] / 3.0
    assert stages[1] <= stages[0] * 1.05
    assert stages[2] <= stages[1] * 1.05
    assert stages[3] <= stages[2] * 1.05
