"""Fig. 18 bench: simulated NVLS AllReduce vs the analytic reference."""

from repro.experiments import fig18_nvls_validation
from repro.experiments.runner import QUICK


def test_fig18_nvls_validation(once):
    results = once(fig18_nvls_validation.run, (64, 128, 256))
    print()
    print(fig18_nvls_validation.format_table(results))
    # Paper: 3.87% average error vs real hardware across 1-16 GB; our
    # simulator vs the analytic reference stays within 15% per point and
    # improves with size (both saturate bandwidth).
    errors = [row["error_%"] for _, row in sorted(results.items())]
    assert all(e < 15.0 for e in errors), errors
    assert errors[-1] < errors[0]
    assert fig18_nvls_validation.average_error(results) < 10.0
