"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the reproduction's own design
knobs: reduction packetization granularity, the asymmetric-overlap
dispatch policy, and the merging-aware TB ordering.
"""

from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.experiments.runner import QUICK
from repro.systems import make_system


def _run_cais(tiling, **kwargs):
    model = LLAMA_7B.scaled(QUICK.tokens_fraction)
    graph = sublayer_graph(model, 8, "L1")
    system = make_system("CAIS", dgx_h100_config(), tiling=tiling, **kwargs)
    return system.run([graph])


def test_reduction_packetization_granularity(once):
    """Sub-chunk size trades merge-session footprint against message
    count; 8 KB (the default) should be competitive with the extremes."""
    def sweep():
        out = {}
        for red_chunk in (4096, 8192, 32768):
            tiling = TilingConfig(chunk_bytes=32768,
                                  red_chunk_bytes=red_chunk)
            out[red_chunk] = _run_cais(tiling).makespan_ns
        return out

    results = once(sweep)
    print()
    for red_chunk, makespan in results.items():
        print(f"  red_chunk={red_chunk >> 10}KB: {makespan / 1e3:.1f} us")
    default = results[8192]
    # Whole-tile sessions (32 KB) monopolize the 40 KB table and lose.
    assert results[32768] > default * 0.98
    assert default < min(results.values()) * 1.15


def test_asymmetric_overlap_policy(once):
    """Fair-share dispatch (asymmetric kernel overlapping) vs the same
    system with kernel phases left to barrier scheduling (CAIS-Base)."""
    def pair():
        tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)
        model = LLAMA_7B.scaled(QUICK.tokens_fraction)
        graph = sublayer_graph(model, 8, "L1")
        cfg = dgx_h100_config()
        full = make_system("CAIS", cfg, tiling=tiling).run([graph])
        base = make_system("CAIS-Base", cfg, tiling=tiling).run([graph])
        return full.makespan_ns, base.makespan_ns

    full, base = once(pair)
    print(f"\n  overlap: {full / 1e3:.1f} us, barriers: {base / 1e3:.1f} us")
    assert full < base


def test_merge_aware_ordering(once):
    """Home-rotated TB ordering vs row-major (coordination ablation)."""
    from repro.cais.dataflow import CaisRunner
    from repro.experiments.fig13_merge_table import _run_cais as run_feats

    def pair():
        model = LLAMA_7B.scaled(QUICK.tokens_fraction)
        graph = sublayer_graph(model, 8, "L1")
        with_order = run_feats(graph, QUICK, frozenset(
            {"prelaunch", "preaccess", "throttle", "order"}))
        graph = sublayer_graph(model, 8, "L1")
        without = run_feats(graph, QUICK, frozenset(
            {"prelaunch", "preaccess", "throttle"}))
        return (with_order.merge_stats.average_wait_ns(),
                without.merge_stats.average_wait_ns())

    ordered, row_major = once(pair)
    print(f"\n  wait with ordering: {ordered / 1e3:.2f} us, "
          f"row-major: {row_major / 1e3:.2f} us")
    assert ordered < row_major


def test_eviction_policy_lru_vs_fifo(once):
    """Merge-table eviction policy ablation under a constrained table.

    LRU (the paper's policy) keeps hot, nearly-complete sessions resident;
    FIFO evicts by allocation age.  With coordination aligning arrivals the
    two are close, but LRU should never be meaningfully worse.
    """
    from repro.cais.dataflow import CaisRunner
    from repro.cais import compiler as cais_compiler
    from repro.llm import tiling as llm_tiling
    from repro.systems import Harness

    def pair():
        out = {}
        for policy in ("lru", "fifo"):
            llm_tiling.reset_tensor_ids()
            cais_compiler.reset_group_ids()
            model = LLAMA_7B.scaled(QUICK.tokens_fraction)
            graph = sublayer_graph(model, 8, "L1")
            cfg = dgx_h100_config().with_merge_entries(64)
            harness = Harness(cfg, merge=True, sync_tables=True,
                              traffic_control=True, fair_share=True,
                              merge_eviction_policy=policy)
            runner = CaisRunner(harness, tiling=QUICK.tiling)
            done = {"ok": False}
            runner.run_graphs([graph],
                              on_done=lambda: done.update(ok=True))
            harness.executor.run()
            assert done["ok"]
            out[policy] = harness.sim.now
        return out

    results = once(pair)
    print(f"\n  lru: {results['lru'] / 1e3:.1f} us, "
          f"fifo: {results['fifo'] / 1e3:.1f} us")
    assert results["lru"] <= results["fifo"] * 1.05
