#!/usr/bin/env python3
"""Measure the observability layer's overhead on real CAIS runs.

The design contract (DESIGN.md, "Observability") is *zero-cost when
disabled*: instrumented hot paths hold a reference to the installed
tracer/registry and guard every record with one ``enabled`` attribute
read, so a run without ``--trace``/``--metrics`` should be within noise
of a build that never had instrumentation.  This benchmark quantifies
both sides on two workloads:

* ``--workload sublayer`` — one CAIS L1 sublayer run, traced with
  Tracer + MetricsRegistry + SimProfiler (the original benchmark).
* ``--workload serving``  — a continuous-batching serving run with the
  new reporting sinks (TimeSeriesSink + RequestLog) against the
  disabled baseline, plus — for context, outside the budget — the full
  ``repro report`` stack that adds the PR-4 CausalityRecorder.  The
  causality DAG records every transfer/merge node and carries its own
  (pre-existing) cost; the <5% budget covers what *this* layer adds.
* ``--workload matrix``   — a ``run_matrix`` sweep with the full
  harness-telemetry stack (run ledger + progress board + meta-trace)
  against the bare runner.  The telemetry lives entirely outside the
  simulation, so beyond the <5% wall budget this mode asserts the
  summaries are *identical* (same makespans, same event counts) with
  telemetry on and off — the zero-event contract at matrix scale.

In both modes the **disabled** configuration runs with the null sinks
installed (the default); the serving mode additionally checks the
stronger half of the contract — the sinks add **zero simulation
events**, so an enabled run is simulation-identical (same makespan,
same event count) to a disabled one — and asserts the enabled wall
overhead stays under ``--budget`` percent.

Run:  PYTHONPATH=src python benchmarks/obs_overhead.py \\
          [--workload serving] [--repeat 3] [--budget 5]
"""

import argparse
import contextlib
import io
import os
import statistics
import sys
import tempfile
import time

from repro import obs
from repro.common.config import dgx_h100_config
from repro.experiments.parallel import ExecContext, SimTask, run_matrix
from repro.experiments.runner import Scale
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.models import LLAMA_7B, ModelConfig
from repro.llm.serving import ServingSpec, simulate_serving
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

#: Small-but-real serving workload: ~100 requests through a 4-GPU TP
#: group, enough iterations that per-iteration instrumentation costs
#: dominate the measurement rather than setup.
SERVING_MODEL = ModelConfig(name="bench-tiny", hidden=256, ffn_hidden=512,
                            heads=8, seq_len=64, batch=4, layers=4)
SERVING_SPEC = ServingSpec(model="bench-tiny", seed=7,
                           arrival_rate_rps=100_000.0, horizon_ms=1.0,
                           prompt_min=8, prompt_max=24,
                           output_min=1, output_max=3,
                           max_batch_requests=4)
SERVING_TILING = TilingConfig(tile=32, chunk_bytes=32768,
                              red_chunk_bytes=8192)


def sublayer_run(traced: bool) -> float:
    """Wall-clock seconds for one CAIS L1 run."""
    if traced:
        obs.install(tracer=obs.Tracer(), metrics=obs.MetricsRegistry(),
                    profiler=obs.SimProfiler())
    try:
        model = LLAMA_7B.scaled(0.125)
        system = make_system("CAIS", dgx_h100_config(), tiling=TILING)
        t0 = time.perf_counter()
        system.run([sublayer_graph(model, 8, "L1")])
        return time.perf_counter() - t0
    finally:
        obs.reset()


def serving_run(mode: str):
    """(wall seconds, makespan_ns, sim events) for one serving run.

    ``mode``: ``disabled`` (null sinks), ``sinks`` (TimeSeriesSink +
    RequestLog — the budgeted configuration), or ``report`` (the full
    ``repro report`` stack including the causality recorder).
    """
    if mode == "sinks":
        obs.install(timeseries=obs.TimeSeriesSink(window_ns=100_000.0),
                    request_log=obs.RequestLog())
    elif mode == "report":
        obs.install(timeseries=obs.TimeSeriesSink(window_ns=100_000.0),
                    request_log=obs.RequestLog(),
                    causality=obs.CausalityRecorder())
    try:
        system = make_system("TP-NVLS", dgx_h100_config(num_gpus=4, seed=1),
                             tiling=SERVING_TILING, jitter=False)
        t0 = time.perf_counter()
        serving = simulate_serving(system, SERVING_SPEC,
                                   model=SERVING_MODEL, style="basic")
        wall = time.perf_counter() - t0
        return wall, serving.run.makespan_ns, serving.run.events
    finally:
        obs.reset()


#: Matrix-mode sweep: a handful of tiny distinct tasks, all misses
#: (no cache), so every repetition simulates the same work and the
#: telemetry cost is the only difference between configurations.
MATRIX_TASKS = 8


def _matrix_tasks():
    scale = Scale(tokens_fraction=1.0, tiling=TILING)
    tasks = []
    for seed in range(MATRIX_TASKS):
        g = Graph("bench-matrix")
        g.add(LogicalOp(name="gemm0", kind=OpKind.GEMM,
                        gemm=GemmShape(256, 256, 256)))
        g.add(LogicalOp(name="ar0", kind=OpKind.COMM, deps=("gemm0",),
                        comm=CommKind.ALL_REDUCE, comm_bytes=1 << 16))
        tasks.append(SimTask(system="TP-NVLS", graphs=(g,),
                             config=dgx_h100_config(seed=seed),
                             scale=scale))
    return tasks


def matrix_run(telemetry: bool, workdir: str):
    """(wall seconds, summary identity) for one telemetry-on/off sweep.

    The identity is the tuple of (makespan, events) per task — what the
    zero-event contract requires to be independent of telemetry.
    """
    tasks = _matrix_tasks()
    if telemetry:
        os.environ[obs.LEDGER_ENV] = os.path.join(workdir, "ledger")
        ctx = ExecContext(jobs=1, progress=True,
                          meta_trace=os.path.join(workdir, "meta.json"))
    else:
        os.environ.pop(obs.LEDGER_ENV, None)
        ctx = ExecContext(jobs=1)
    try:
        t0 = time.perf_counter()
        # The board writes to stderr; capture it so the benchmark's own
        # output stays readable (the writes are still paid for).
        with contextlib.redirect_stderr(io.StringIO()):
            out = run_matrix(tasks, ctx)
        wall = time.perf_counter() - t0
        return wall, tuple((s.makespan_ns, s.events) for s in out)
    finally:
        os.environ.pop(obs.LEDGER_ENV, None)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload",
                        choices=("sublayer", "serving", "matrix"),
                        default="sublayer")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per configuration")
    parser.add_argument("--budget", type=float, default=5.0,
                        help="serving mode: fail if the enabled overhead "
                             "exceeds this percent (default: %(default)s)")
    args = parser.parse_args()

    if args.workload == "sublayer":
        sublayer_run(False)                  # warm imports and caches
        disabled = [sublayer_run(False) for _ in range(args.repeat)]
        enabled = [sublayer_run(True) for _ in range(args.repeat)]
        d, e = statistics.median(disabled), statistics.median(enabled)
        print(f"observability disabled: {d * 1e3:8.1f} ms  (median of "
              f"{args.repeat}: {[f'{t * 1e3:.1f}' for t in disabled]})")
        print(f"observability enabled:  {e * 1e3:8.1f} ms  (median of "
              f"{args.repeat}: {[f'{t * 1e3:.1f}' for t in enabled]})")
        print(f"recording overhead:     {(e / d - 1) * 100:+8.1f} %")
        print("\nThe 'disabled' number is the shipping configuration; its "
              "only\nobservability cost is one attribute read per guarded "
              "site.")
        return 0

    if args.workload == "matrix":
        with tempfile.TemporaryDirectory() as workdir:
            matrix_run(False, workdir)       # warm imports and caches
            base = [matrix_run(False, workdir)
                    for _ in range(args.repeat)]
            # A fresh ledger subdir per repetition keeps append cost flat.
            full = [matrix_run(True, os.path.join(workdir, str(i)))
                    for i in range(args.repeat)]
        d = statistics.median(w for w, _ in base)
        e = statistics.median(w for w, _ in full)
        overhead = (e / d - 1) * 100
        print(f"matrix ({MATRIX_TASKS} tasks), telemetry off: "
              f"{d * 1e3:8.1f} ms  (median of {args.repeat}: "
              f"{[f'{w * 1e3:.1f}' for w, _ in base]})")
        print(f"matrix, ledger+board+meta-trace:  {e * 1e3:8.1f} ms  "
              f"(median of {args.repeat}: "
              f"{[f'{w * 1e3:.1f}' for w, _ in full]})")
        print(f"harness-telemetry overhead:       {overhead:+8.1f} %"
              f"  (budget {args.budget:g} %)")
        failures = 0
        outcomes = {key for _, key in base} | {key for _, key in full}
        if len(outcomes) != 1:
            print("FAIL: telemetry perturbed the simulations — distinct "
                  f"(makespan, events) sets: {len(outcomes)}")
            failures += 1
        else:
            print("simulations identical with telemetry on and off "
                  "(zero-event contract holds)")
        if overhead > args.budget:
            print(f"FAIL: telemetry overhead {overhead:+.1f} % exceeds "
                  f"the {args.budget:g} % budget")
            failures += 1
        return 1 if failures else 0

    serving_run("disabled")                  # warm imports and caches
    base = [serving_run("disabled") for _ in range(args.repeat)]
    full = [serving_run("sinks") for _ in range(args.repeat)]
    stack = [serving_run("report") for _ in range(args.repeat)]
    d = statistics.median(w for w, _, _ in base)
    e = statistics.median(w for w, _, _ in full)
    r = statistics.median(w for w, _, _ in stack)
    overhead = (e / d - 1) * 100

    print(f"serving, sinks disabled:  {d * 1e3:8.1f} ms  (median of "
          f"{args.repeat}: {[f'{w * 1e3:.1f}' for w, _, _ in base]})")
    print(f"serving, ts+reqlog:       {e * 1e3:8.1f} ms  (median of "
          f"{args.repeat}: {[f'{w * 1e3:.1f}' for w, _, _ in full]})")
    print(f"serving, + causality:     {r * 1e3:8.1f} ms  "
          f"({(r / d - 1) * 100:+.1f} % — PR-4 DAG, outside the budget)")
    print(f"sink recording overhead:  {overhead:+8.1f} %"
          f"  (budget {args.budget:g} %)")

    failures = 0
    # Zero-event contract: the sinks never touch the event queue or RNG,
    # so makespan and event count must match exactly run-for-run.
    spans = {(m, n) for _, m, n in base} | {(m, n) for _, m, n in full} \
        | {(m, n) for _, m, n in stack}
    if len(spans) != 1:
        print(f"FAIL: sinks perturbed the simulation — "
              f"(makespan, events) observed: {sorted(spans)}")
        failures += 1
    else:
        m, n = next(iter(spans))
        print(f"simulation identical across all runs: "
              f"makespan {m / 1e6:.3f} ms, {n} events")
    if overhead > args.budget:
        print(f"FAIL: enabled overhead {overhead:+.1f} % exceeds the "
              f"{args.budget:g} % budget")
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
