#!/usr/bin/env python3
"""Measure the observability layer's overhead on a real CAIS run.

The design contract (DESIGN.md, "Observability") is *zero-cost when
disabled*: instrumented hot paths hold a reference to the installed
tracer/registry and guard every record with one ``enabled`` attribute
read, so a run without ``--trace``/``--metrics`` should be within noise
of a build that never had instrumentation.  This benchmark quantifies
both sides:

* **disabled** — null sinks installed (the default); the guard cost.
* **enabled**  — Tracer + MetricsRegistry + SimProfiler all live; the
  cost of actually recording ~10^5 events.

Run:  PYTHONPATH=src python benchmarks/obs_overhead.py [--repeat 3]
"""

import argparse
import statistics
import time

from repro import obs
from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)


def one_run(traced: bool) -> float:
    """Wall-clock seconds for one CAIS L1 run."""
    if traced:
        obs.install(tracer=obs.Tracer(), metrics=obs.MetricsRegistry(),
                    profiler=obs.SimProfiler())
    try:
        model = LLAMA_7B.scaled(0.125)
        system = make_system("CAIS", dgx_h100_config(), tiling=TILING)
        t0 = time.perf_counter()
        system.run([sublayer_graph(model, 8, "L1")])
        return time.perf_counter() - t0
    finally:
        obs.reset()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per configuration")
    args = parser.parse_args()

    one_run(False)                       # warm imports and caches
    disabled = [one_run(False) for _ in range(args.repeat)]
    enabled = [one_run(True) for _ in range(args.repeat)]

    d, e = statistics.median(disabled), statistics.median(enabled)
    print(f"observability disabled: {d * 1e3:8.1f} ms  (median of "
          f"{args.repeat}: {[f'{t * 1e3:.1f}' for t in disabled]})")
    print(f"observability enabled:  {e * 1e3:8.1f} ms  (median of "
          f"{args.repeat}: {[f'{t * 1e3:.1f}' for t in enabled]})")
    print(f"recording overhead:     {(e / d - 1) * 100:+8.1f} %")
    print("\nThe 'disabled' number is the shipping configuration; its only"
          "\nobservability cost is one attribute read per guarded site.")


if __name__ == "__main__":
    main()
