"""Fig. 15 bench: average bandwidth utilization per sub-layer."""

from repro.experiments import fig15_bandwidth
from repro.experiments.runner import QUICK


def test_fig15_utilization_ordering(once):
    results = once(fig15_bandwidth.run, QUICK, ["LLaMA-7B"], ("L1", "L2"))
    print()
    print(fig15_bandwidth.format_table(results))
    avg = fig15_bandwidth.averages(results)
    # Paper: 62.4% (Base) -> 84.7% (Partial) -> 90.2% (CAIS).  Absolute
    # values are lower at our granularity; the ordering is the claim.
    assert avg["CAIS-Base"] < avg["CAIS"]
    assert avg["CAIS-Partial"] <= avg["CAIS"] * 1.02
    assert avg["CAIS-Base"] <= avg["CAIS-Partial"] * 1.05
