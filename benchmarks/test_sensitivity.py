"""Sensitivity bench: the headline speedup is a regime property, not a
single-calibration artifact."""

from repro.experiments import sensitivity
from repro.experiments.runner import QUICK


def test_bandwidth_sensitivity(once):
    results = once(sensitivity.bandwidth_sweep, QUICK, (8.0, 16.0, 32.0))
    print()
    for bw, row in sorted(results.items()):
        print(f"  {bw:5.0f} GB/s/plane: speedup {row['speedup']:.2f}x")
    # CAIS wins at every bandwidth point across a 4x range.
    for bw, row in results.items():
        assert row["speedup"] > 1.05, bw
    # More bandwidth means faster absolute times for both systems.
    times = [results[bw]["cais_us"] for bw in sorted(results)]
    assert all(b < a for a, b in zip(times, times[1:]))


def test_seed_robustness(once):
    stats = once(sensitivity.seed_sweep, QUICK, (1, 2, 3))
    print(f"\n  speedup {stats['mean']:.2f} +/- {stats['stdev']:.3f} "
          f"(n={stats['n']})")
    # The effect dwarfs the run-to-run noise.
    assert stats["min"] > 1.05
    assert stats["stdev"] < 0.1
