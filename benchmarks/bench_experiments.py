#!/usr/bin/env python3
"""Time the experiment matrix: serial vs parallel vs cached.

Runs a fixed fig12-style matrix (one model, two sub-layers, four
systems at --quick scale) three ways and writes the timings to
``BENCH_experiments.json``:

* **serial** — ``jobs=1``, no cache: the pre-fan-out execution path.
* **parallel** — ``jobs=N`` (default: all cores) over worker processes.
* **cached** — second invocation against a warm on-disk cache; every
  task should be a hit, so this bounds the fixed cost of fingerprinting
  plus cache I/O.

On a single-core runner the parallel row only measures pool overhead;
the speedup column is meaningful on >= 2 cores.  The cached row must be
dramatically faster everywhere, and ``hits``/``misses`` are recorded so
CI can assert the reuse actually happened.

Run:  PYTHONPATH=src python benchmarks/bench_experiments.py \
          [--jobs N] [--repeat 2] [--out BENCH_experiments.json]
"""

import argparse
import json
import os
import shutil
import statistics
import tempfile
import time

from repro import obs
from repro.experiments import fig12_sublayer
from repro.experiments.cache import SimCache
from repro.experiments.parallel import ExecContext
from repro.experiments.runner import QUICK

MATRIX = dict(models=["LLaMA-7B"], sublayers=("L1", "L2"),
              systems=("TP-NVLS", "SP-NVLS", "CAIS-Base", "CAIS"))


def one_run(ctx: ExecContext) -> float:
    t0 = time.perf_counter()
    fig12_sublayer.run(QUICK, ctx=ctx, **MATRIX)
    return time.perf_counter() - t0


def timed(label: str, make_ctx, repeat: int) -> dict:
    times = [one_run(make_ctx()) for _ in range(repeat)]
    med = statistics.median(times)
    print(f"{label:>9}: {med * 1e3:8.1f} ms  "
          f"({[f'{t * 1e3:.1f}' for t in times]})")
    return {"median_s": med, "runs_s": times}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="workers for the parallel row")
    parser.add_argument("--repeat", type=int, default=2,
                        help="timed repetitions per configuration")
    parser.add_argument("--out", default="BENCH_experiments.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    cache_dir = tempfile.mkdtemp(prefix="bench_repro_cache_")
    try:
        one_run(ExecContext(jobs=1))     # warm imports and lru caches
        report = {
            "matrix": {k: list(v) for k, v in MATRIX.items()},
            "tasks": len(MATRIX["models"]) * len(MATRIX["sublayers"])
            * len(MATRIX["systems"]),
            "jobs": args.jobs,
            "cpu_count": os.cpu_count(),
            "serial": timed("serial", lambda: ExecContext(jobs=1),
                            args.repeat),
            "parallel": timed("parallel",
                              lambda: ExecContext(jobs=args.jobs),
                              args.repeat),
        }

        # Warm the cache once, then time hit-only invocations with the
        # metrics registry live so the report proves reuse happened.
        one_run(ExecContext(jobs=1, cache=SimCache(cache_dir)))
        obs.install(metrics=obs.MetricsRegistry())
        try:
            metrics = obs.current_metrics()
            report["cached"] = timed(
                "cached",
                lambda: ExecContext(jobs=1, cache=SimCache(cache_dir)),
                args.repeat)
            report["cached"]["hits"] = metrics.counter("cache.hits").value
            report["cached"]["misses"] = \
                metrics.counter("cache.misses").value
        finally:
            obs.reset()

        serial = report["serial"]["median_s"]
        report["parallel"]["speedup"] = serial / report["parallel"]["median_s"]
        report["cached"]["speedup"] = serial / report["cached"]["median_s"]
        print(f"parallel speedup: {report['parallel']['speedup']:.2f}x   "
              f"cached speedup: {report['cached']['speedup']:.2f}x   "
              f"(hits={report['cached']['hits']:.0f})")
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
