#!/usr/bin/env python3
"""Gate a fresh ``BENCH_experiments.json`` against the committed baseline.

``bench_experiments.py`` measures the experiment matrix three ways
(serial, parallel, cached).  This checker compares a fresh report with
``benchmarks/BENCH_baseline.json`` and fails when any timed row got
slower than the baseline by more than ``--tolerance`` (a fraction;
default 0.25 = 25%), or when the cached row stopped being a pure
cache-hit replay.  Speedups never fail the gate — run with ``--update``
to re-baseline after an intentional performance change.

Run:  PYTHONPATH=src python benchmarks/check_regression.py \
          [FRESH] [--baseline PATH] [--tolerance 0.25] [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Timed rows compared between the fresh report and the baseline.
TIMED_ROWS = ("serial", "parallel", "cached")

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "BENCH_baseline.json")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check(fresh: dict, baseline: dict, tolerance: float) -> list:
    """All regressions found; empty means the gate passes."""
    problems = []
    if fresh.get("matrix") != baseline.get("matrix"):
        problems.append(
            f"matrix changed: {fresh.get('matrix')} vs baseline "
            f"{baseline.get('matrix')} — re-baseline with --update")
        return problems
    for row in TIMED_ROWS:
        fresh_s = fresh[row]["median_s"]
        base_s = baseline[row]["median_s"]
        limit = base_s * (1.0 + tolerance)
        if fresh_s > limit:
            problems.append(
                f"{row}: {fresh_s * 1e3:.1f} ms exceeds baseline "
                f"{base_s * 1e3:.1f} ms by more than "
                f"{tolerance:.0%} (limit {limit * 1e3:.1f} ms)")
    # The cached row must stay a pure replay: any miss means the run
    # fingerprint changed and the timing comparison is meaningless.
    misses = fresh["cached"].get("misses", 0)
    if misses:
        problems.append(f"cached row had {misses:.0f} cache misses "
                        f"(expected a pure hit replay)")
    if fresh["cached"].get("hits", 0) < fresh.get("tasks", 0):
        problems.append(
            f"cached row hit only {fresh['cached'].get('hits', 0):.0f} of "
            f"{fresh.get('tasks', 0)} tasks")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="?", default="BENCH_experiments.json",
                        help="fresh report from bench_experiments.py")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction "
                             "(default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the fresh report "
                             "instead of checking")
    args = parser.parse_args()

    fresh = load(args.fresh)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump(fresh, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load(args.baseline)
    problems = check(fresh, baseline, args.tolerance)
    for row in TIMED_ROWS:
        fresh_s = fresh[row]["median_s"]
        base_s = baseline[row]["median_s"]
        print(f"{row:>9}: {fresh_s * 1e3:8.1f} ms  "
              f"(baseline {base_s * 1e3:8.1f} ms, "
              f"{fresh_s / base_s:5.2f}x)")
    if problems:
        print("\nREGRESSIONS:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
