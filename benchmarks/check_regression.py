#!/usr/bin/env python3
"""Gate a fresh ``BENCH_experiments.json`` against the committed baseline.

``bench_experiments.py`` measures the experiment matrix three ways
(serial, parallel, cached).  This checker compares a fresh report with
``benchmarks/BENCH_baseline.json`` and fails when any timed row got
slower than the baseline by more than ``--tolerance`` (a fraction;
default 0.25 = 25%), or when the cached row stopped being a pure
cache-hit replay.  Speedups never fail the gate — run with ``--update``
to re-baseline after an intentional performance change.

Run:  PYTHONPATH=src python benchmarks/check_regression.py \
          [FRESH] [--baseline PATH] [--tolerance 0.25] [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Timed rows compared between the fresh report and the baseline.
TIMED_ROWS = ("serial", "parallel", "cached")

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "BENCH_baseline.json")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check(fresh: dict, baseline: dict, tolerance: float) -> list:
    """All regressions found; empty means the gate passes."""
    problems = []
    if fresh.get("matrix") != baseline.get("matrix"):
        problems.append(
            f"matrix changed: {fresh.get('matrix')} vs baseline "
            f"{baseline.get('matrix')} — re-baseline with --update")
        return problems
    for row in TIMED_ROWS:
        fresh_s = fresh[row]["median_s"]
        base_s = baseline[row]["median_s"]
        limit = base_s * (1.0 + tolerance)
        if fresh_s > limit:
            problems.append(
                f"{row}: {fresh_s * 1e3:.1f} ms exceeds baseline "
                f"{base_s * 1e3:.1f} ms by more than "
                f"{tolerance:.0%} (limit {limit * 1e3:.1f} ms)")
    # The cached row must stay a pure replay: any miss means the run
    # fingerprint changed and the timing comparison is meaningless.
    misses = fresh["cached"].get("misses", 0)
    if misses:
        problems.append(f"cached row had {misses:.0f} cache misses "
                        f"(expected a pure hit replay)")
    if fresh["cached"].get("hits", 0) < fresh.get("tasks", 0):
        problems.append(
            f"cached row hit only {fresh['cached'].get('hits', 0):.0f} of "
            f"{fresh.get('tasks', 0)} tasks")
    return problems


def check_engine(report: dict, min_speedup: float) -> list:
    """Gate a ``BENCH_engine.json`` report (see ``bench_engine.py``).

    Two invariants: every system's fast-path run reproduced the
    reference observables exactly, and the headline speedup did not
    collapse below ``min_speedup``.
    """
    problems = []
    for system, row in sorted(report.get("systems", {}).items()):
        if not row.get("exact"):
            problems.append(
                f"engine: {system} fast-path run diverged from the "
                f"reference (equivalence contract broken)")
        if row.get("speedup", 0.0) < 1.0 - 0.25:
            problems.append(
                f"engine: {system} fast-path is a slowdown "
                f"({row.get('speedup', 0.0):.2f}x)")
    headline = report.get("headline", 0.0)
    if headline < min_speedup:
        problems.append(
            f"engine: headline speedup {headline:.2f}x below the "
            f"{min_speedup:.1f}x floor")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="?", default=None,
                        help="fresh report from bench_experiments.py "
                             "(default: BENCH_experiments.json; with "
                             "--engine and no report named, only the "
                             "engine gate runs)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction "
                             "(default: %(default)s)")
    parser.add_argument("--engine", metavar="PATH", default=None,
                        help="also gate a BENCH_engine.json report "
                             "(fast-path exactness + headline speedup)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="headline fast-path speedup floor for "
                             "--engine (default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the fresh report "
                             "instead of checking")
    args = parser.parse_args()

    if args.engine:
        engine_report = load(args.engine)
        engine_problems = check_engine(engine_report, args.min_speedup)
        print(f"engine: headline {engine_report.get('headline', 0.0):.2f}x, "
              f"{engine_report.get('events_per_cpu_second', 0.0):,.0f} "
              f"events/s reference")
        if engine_problems:
            print("\nREGRESSIONS:")
            for p in engine_problems:
                print(f"  - {p}")
            return 1
        if args.fresh is None:
            print("bench regression gate: OK (engine only)")
            return 0
    if args.fresh is None:
        args.fresh = "BENCH_experiments.json"

    fresh = load(args.fresh)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump(fresh, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load(args.baseline)
    problems = check(fresh, baseline, args.tolerance)
    for row in TIMED_ROWS:
        fresh_s = fresh[row]["median_s"]
        base_s = baseline[row]["median_s"]
        print(f"{row:>9}: {fresh_s * 1e3:8.1f} ms  "
              f"(baseline {base_s * 1e3:8.1f} ms, "
              f"{fresh_s / base_s:5.2f}x)")
    if problems:
        print("\nREGRESSIONS:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
