"""Shared configuration for the figure/table regeneration benchmarks.

Each benchmark runs its experiment exactly once (they are deterministic
simulations — repeated rounds would only re-measure Python overhead) and
prints the regenerated rows/series so ``pytest benchmarks/ --benchmark-only``
doubles as a quick reproduction report.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)
    return _run
