"""Fig. 12 bench: sub-layer (GEMM-RS + LN + AG-GEMM) speedups L1-L4."""

from repro.experiments import fig12_sublayer
from repro.experiments.runner import QUICK, geomean


def test_fig12_sublayer_speedups(once):
    results = once(fig12_sublayer.run, QUICK, ["LLaMA-7B"])
    print()
    print(fig12_sublayer.format_table(results))
    per_system = {}
    for subs in results.values():
        for which, systems in subs.items():
            cais = systems["CAIS"]
            for system, t in systems.items():
                if system != "CAIS":
                    per_system.setdefault(system, []).append(t / cais)
    gm = {s: geomean(v) for s, v in per_system.items()}
    # Paper Fig. 12 geomeans: 1.39, 1.91, 1.99, 1.91, 1.64, 1.24, 1.20,
    # 1.47, 7.90 — we assert each baseline loses and the ordering of the
    # big splits holds.
    assert all(v > 1.0 for v in gm.values()), gm
    assert gm["LADM"] == max(gm.values())
    assert gm["CoCoNet"] > gm["CoCoNet-NVLS"]
    assert gm["FuseLib"] > gm["FuseLib-NVLS"]
    # T3 vs T3-NVLS nearly tie at benchmark scale; the gap opens at the
    # default experiment scale (see EXPERIMENTS.md).
    assert gm["T3"] > gm["T3-NVLS"] * 0.97
