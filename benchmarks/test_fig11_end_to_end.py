"""Fig. 11 bench: end-to-end speedup across training and inference."""

from repro.experiments import fig11_end_to_end
from repro.experiments.runner import QUICK, geomean


def test_fig11_end_to_end_speedups(once):
    results = once(fig11_end_to_end.run, QUICK, True, ["LLaMA-7B"])
    print()
    print(fig11_end_to_end.format_table(results))
    for mode in ("inference", "training"):
        rows = results[mode]["LLaMA-7B"]
        cais = rows["CAIS"]["per_layer_us"]
        # CAIS wins against every baseline (paper Fig. 11).
        for system, row in rows.items():
            if system != "CAIS":
                assert row["per_layer_us"] > cais, (mode, system)
        # Headline factors, loose bands around the paper's geomeans.
        assert 1.1 < rows["TP-NVLS"]["per_layer_us"] / cais < 2.2
        assert 1.2 < rows["CoCoNet"]["per_layer_us"] / cais < 3.0
        assert rows["LADM"]["per_layer_us"] / cais > 2.5
        assert 1.02 < rows["CAIS-Base"]["per_layer_us"] / cais < 2.2
