"""Fig. 16 bench: bandwidth utilization over time (L2 of LLaMA-7B)."""

from repro.experiments import fig16_utilization_trace
from repro.experiments.runner import QUICK


def test_fig16_utilization_trace(once):
    results = once(fig16_utilization_trace.run, QUICK)
    print()
    print(fig16_utilization_trace.format_table(results))
    stats = {system: fig16_utilization_trace.steady_state_stats(series)
             for system, series in results.items()}
    # CAIS-Base's barrier phases make its trace the most fluctuating:
    # its steady-state dips are the deepest of the three (paper Fig. 16).
    base_swing = stats["CAIS-Base"]["max"] - stats["CAIS-Base"]["min"]
    cais_swing = stats["CAIS"]["max"] - stats["CAIS"]["min"]
    assert base_swing > cais_swing * 0.9
    # The fused configurations sustain higher utilization through the
    # middle of the run instead of alternating saturated/idle phases.
    assert stats["CAIS"]["mean"] > stats["CAIS-Base"]["mean"]
    assert len(results["CAIS"]) >= 12
