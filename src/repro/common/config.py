"""Hardware configuration for the simulated multi-GPU system.

Defaults replicate the paper's experimental setup (Section IV-A): an
NVIDIA DGX-H100-like node with 8 GPUs interconnected through 4 NVSwitch
planes, 250 ns link latency each way (~1 us round trip), a 40 KB / 320-entry
per-port Merge Table, and eight 256-deep virtual channels per input port.

Per Section IV-B the paper runs a *half-scale* configuration (50% of the SMs
with matrix dimensions halved); :func:`dgx_h100_config` follows suit by
default and :func:`full_scale_config` restores the full machine for the
Table II validation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError


@dataclass(frozen=True)
class GpuSpec:
    """Compute-side parameters of one GPU (H100-like).

    ``tensor_flops_per_sm_cycle`` is the dense tensor-core throughput per SM
    per cycle; ``gemm_efficiency`` derates it to a sustained CUTLASS-like
    level.  ``tb_slots_per_sm`` is the thread-block occupancy used by the
    TB-granular execution model.
    """

    num_sms: int = 66                    # half-scale H100 (132 full)
    clock_ghz: float = 1.8
    tensor_flops_per_sm_cycle: float = 2048.0   # dense BF16 (no sparsity)
    gemm_efficiency: float = 0.4
    vector_flops_per_sm_cycle: float = 256.0
    tb_slots_per_sm: int = 2
    hbm_bandwidth_gbps: float = 3350.0   # bytes/ns
    hbm_latency_ns: float = 450.0
    kernel_launch_overhead_ns: float = 2000.0

    def sustained_tensor_flops_per_ns(self) -> float:
        """Whole-GPU sustained tensor throughput in flops per nanosecond."""
        return (self.num_sms * self.tensor_flops_per_sm_cycle *
                self.gemm_efficiency * self.clock_ghz)


@dataclass(frozen=True)
class LinkSpec:
    """One GPU<->switch NVLink connection (per direction).

    A DGX-H100 GPU has 900 GB/s of aggregate bidirectional NVLink bandwidth
    striped over 4 switch planes.  The default here is the *effective
    sustained* data bandwidth calibrated so that, at TP=8 on LLaMA-7B,
    communication time is comparable to computation time — the regime the
    paper establishes in Fig. 2 (comm overtakes compute beyond 4-8 GPUs;
    40-60% of end-to-end latency, Section II).  The spec sheet's raw
    112.5 GB/s per plane per direction, combined with the paper's own GPU
    model, would make the workload compute-bound and suppress every effect
    the paper studies; see DESIGN.md ("calibration").
    """

    bandwidth_gbps: float = 16.0         # bytes/ns, one direction, per plane
    latency_ns: float = 250.0            # propagation, one way (paper IV-A)
    flit_bytes: int = 16
    max_packet_bytes: int = 128          # intra-SM coalescing target


@dataclass(frozen=True)
class SwitchSpec:
    """NVSwitch parameters, including the CAIS merge-unit provisioning."""

    hop_latency_ns: float = 100.0        # internal forwarding latency
    num_vcs: int = 8
    vc_depth: int = 256
    merge_table_entries: int = 320       # 40 KB / 128 B per entry (paper IV-A)
    merge_entry_bytes: int = 128
    merge_timeout_ns: float = 50_000.0   # forward-progress timeout
    reduce_flops_per_ns: float = 1.0e3   # in-switch ALU throughput (amortized)

    def merge_table_bytes(self) -> int:
        """Merge table capacity per port, in bytes."""
        return self.merge_table_entries * self.merge_entry_bytes


@dataclass(frozen=True)
class JitterSpec:
    """Execution-variability model (paper Section III-B motivation, [18]).

    ``tb_jitter`` is a multiplicative per-TB compute-time perturbation.
    ``gpu_skew_ns`` is a per-GPU constant start-time offset drawn uniformly
    in ``[0, gpu_skew_ns]``.  ``dispatch_shuffle_window`` locally permutes
    the TB dispatch order per GPU, modelling independent hardware TB
    schedulers — the dominant source of the ~35 us uncoordinated request
    spread the paper reports.
    """

    tb_jitter: float = 0.08
    gpu_skew_ns: float = 2_000.0
    dispatch_shuffle_window: int = 48

    def __post_init__(self) -> None:
        _require(0.0 <= self.tb_jitter < 1.0, "JitterSpec.tb_jitter",
                 self.tb_jitter, "must be in [0, 1)")
        _require(self.gpu_skew_ns >= 0.0, "JitterSpec.gpu_skew_ns",
                 self.gpu_skew_ns, "must be >= 0")
        _require(self.dispatch_shuffle_window >= 1,
                 "JitterSpec.dispatch_shuffle_window",
                 self.dispatch_shuffle_window, "must be >= 1")


def _require(ok: bool, name: str, value, constraint: str) -> None:
    """Raise :class:`ConfigError` naming the offending field."""
    if not ok:
        raise ConfigError(f"{name}={value!r} {constraint}")


@dataclass(frozen=True)
class FaultSpec:
    """Fault-injection model and the resilience knobs that answer it.

    All injection is deterministic: the timeline is derived from
    ``repro.common.rng`` streams keyed by ``fault_seed`` (mixed with the
    system seed), so the same spec on the same config always yields the
    same faults.  ``intensity`` in ``[0, 1]`` scales both the *probability*
    and the *severity* of every fault class; the per-entity random draws
    are made independently of the intensity, so the fault set at a lower
    intensity is always a subset of the set at a higher one (degradation
    curves are structurally monotone, not just monotone in expectation).

    Rates are per-entity trigger probabilities at ``intensity=1``; windowed
    faults (link-down, straggler, SM-throttle, degradation) last about
    ``fault_window_ns`` and start within ``horizon_ns`` of sim start.

    Resilience knobs: ``ack_timeout_ns`` arms per-session retransmit timers
    for ring chunks and CAIS reduction contributions, backing off
    exponentially (``backoff_base``) up to ``max_backoff_ns`` for at most
    ``max_retries`` attempts; the watchdog converts ``watchdog_strikes``
    consecutive no-progress intervals into a :class:`DeadlockError` with
    per-entity outstanding-work diagnostics.
    """

    enabled: bool = False
    intensity: float = 1.0
    fault_seed: int = 0
    horizon_ns: float = 2.0e6            # fault onsets fall in [0, horizon)
    # Link faults.
    link_degrade_rate: float = 0.35
    link_degrade_floor: float = 0.4      # surviving bandwidth fraction at 1.0
    link_down_rate: float = 0.10
    fault_window_ns: float = 150_000.0
    # Switch faults.
    plane_fail_rate: float = 0.12
    nvls_fail_rate: float = 0.25
    # GPU faults.
    gpu_straggler_rate: float = 0.25
    straggler_slowdown: float = 2.5      # compute-time multiplier at 1.0
    sm_throttle_rate: float = 0.15
    sm_throttle_floor: float = 0.5       # surviving SM-slot fraction at 1.0
    # Message faults (protected data-plane ops only; see faults/injector.py).
    msg_drop_rate: float = 0.02
    msg_corrupt_rate: float = 0.01
    # Resilience.  The base ack timeout is sized for the short path
    # (single-hop switch acks); transports with longer round trips pass a
    # timeout scale to the retransmitter — a timeout near the path's real
    # RTT triggers spurious retransmit storms that amplify the very
    # congestion that delayed the ack.
    ack_timeout_ns: float = 100_000.0
    max_retries: int = 8
    backoff_base: float = 2.0
    max_backoff_ns: float = 1.6e6
    watchdog_interval_ns: float = 1.0e6
    watchdog_strikes: int = 3

    def __post_init__(self) -> None:
        _require(0.0 <= self.intensity <= 1.0, "FaultSpec.intensity",
                 self.intensity, "must be in [0, 1]")
        _require(self.horizon_ns > 0.0, "FaultSpec.horizon_ns",
                 self.horizon_ns, "must be > 0")
        for name in ("link_degrade_rate", "link_down_rate", "plane_fail_rate",
                     "nvls_fail_rate", "gpu_straggler_rate",
                     "sm_throttle_rate", "msg_drop_rate", "msg_corrupt_rate"):
            rate = getattr(self, name)
            _require(0.0 <= rate <= 1.0, f"FaultSpec.{name}", rate,
                     "must be a probability in [0, 1]")
        for name in ("link_degrade_floor", "sm_throttle_floor"):
            floor = getattr(self, name)
            _require(0.0 < floor <= 1.0, f"FaultSpec.{name}", floor,
                     "must be in (0, 1]")
        _require(self.straggler_slowdown >= 1.0,
                 "FaultSpec.straggler_slowdown", self.straggler_slowdown,
                 "must be >= 1 (a compute-time multiplier)")
        _require(self.fault_window_ns > 0.0, "FaultSpec.fault_window_ns",
                 self.fault_window_ns, "must be > 0")
        _require(self.fault_window_ns <= self.horizon_ns,
                 "FaultSpec.fault_window_ns", self.fault_window_ns,
                 f"must not exceed horizon_ns={self.horizon_ns!r} "
                 "(fault window beyond the sim horizon)")
        _require(self.ack_timeout_ns > 0.0, "FaultSpec.ack_timeout_ns",
                 self.ack_timeout_ns, "must be > 0")
        _require(self.max_retries >= 0, "FaultSpec.max_retries",
                 self.max_retries, "must be >= 0")
        _require(self.backoff_base >= 1.0, "FaultSpec.backoff_base",
                 self.backoff_base, "must be >= 1")
        _require(self.max_backoff_ns >= self.ack_timeout_ns,
                 "FaultSpec.max_backoff_ns", self.max_backoff_ns,
                 f"must be >= ack_timeout_ns={self.ack_timeout_ns!r}")
        _require(self.watchdog_interval_ns > 0.0,
                 "FaultSpec.watchdog_interval_ns", self.watchdog_interval_ns,
                 "must be > 0")
        _require(self.watchdog_strikes >= 2, "FaultSpec.watchdog_strikes",
                 self.watchdog_strikes,
                 "must be >= 2 (one interval proves nothing)")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of the simulated node.

    The topology is ``num_gpus`` GPUs, each connected to every one of the
    ``num_switches`` switch planes by one bidirectional link.
    """

    num_gpus: int = 8
    num_switches: int = 4
    gpu: GpuSpec = field(default_factory=GpuSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    switch: SwitchSpec = field(default_factory=SwitchSpec)
    jitter: JitterSpec = field(default_factory=JitterSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    seed: int = 2026
    sync_rtt_ns: float = 500.0           # TB-group sync empty-packet RTT

    def __post_init__(self) -> None:
        if self.num_gpus < 2:
            raise ConfigError(f"need at least 2 GPUs, got {self.num_gpus}")
        if self.num_switches < 1:
            raise ConfigError(
                f"need at least 1 switch, got {self.num_switches}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def per_gpu_bandwidth_gbps(self) -> float:
        """Aggregate one-direction NVLink bandwidth per GPU (all planes)."""
        return self.link.bandwidth_gbps * self.num_switches

    def with_gpus(self, num_gpus: int) -> "SystemConfig":
        """A copy of this config scaled to ``num_gpus`` GPUs."""
        return replace(self, num_gpus=num_gpus)

    def with_merge_entries(self, entries: int) -> "SystemConfig":
        """A copy with a different per-port merge-table capacity."""
        return replace(self, switch=replace(self.switch,
                                            merge_table_entries=entries))

    def with_seed(self, seed: int) -> "SystemConfig":
        """A copy with a different master RNG seed."""
        return replace(self, seed=seed)

    def with_faults(self, faults: FaultSpec) -> "SystemConfig":
        """A copy with a different fault-injection spec."""
        return replace(self, faults=faults)


def dgx_h100_config(num_gpus: int = 8, seed: int = 2026) -> SystemConfig:
    """The paper's default half-scale DGX-H100 configuration."""
    return SystemConfig(num_gpus=num_gpus, seed=seed)


def full_scale_config(num_gpus: int = 8, seed: int = 2026) -> SystemConfig:
    """Full-scale H100 (132 SMs), used by the Table II validation."""
    return SystemConfig(
        num_gpus=num_gpus,
        gpu=GpuSpec(num_sms=132),
        seed=seed,
    )
