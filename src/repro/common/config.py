"""Hardware configuration for the simulated multi-GPU system.

Defaults replicate the paper's experimental setup (Section IV-A): an
NVIDIA DGX-H100-like node with 8 GPUs interconnected through 4 NVSwitch
planes, 250 ns link latency each way (~1 us round trip), a 40 KB / 320-entry
per-port Merge Table, and eight 256-deep virtual channels per input port.

Per Section IV-B the paper runs a *half-scale* configuration (50% of the SMs
with matrix dimensions halved); :func:`dgx_h100_config` follows suit by
default and :func:`full_scale_config` restores the full machine for the
Table II validation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError


@dataclass(frozen=True)
class GpuSpec:
    """Compute-side parameters of one GPU (H100-like).

    ``tensor_flops_per_sm_cycle`` is the dense tensor-core throughput per SM
    per cycle; ``gemm_efficiency`` derates it to a sustained CUTLASS-like
    level.  ``tb_slots_per_sm`` is the thread-block occupancy used by the
    TB-granular execution model.
    """

    num_sms: int = 66                    # half-scale H100 (132 full)
    clock_ghz: float = 1.8
    tensor_flops_per_sm_cycle: float = 2048.0   # dense BF16 (no sparsity)
    gemm_efficiency: float = 0.4
    vector_flops_per_sm_cycle: float = 256.0
    tb_slots_per_sm: int = 2
    hbm_bandwidth_gbps: float = 3350.0   # bytes/ns
    hbm_latency_ns: float = 450.0
    kernel_launch_overhead_ns: float = 2000.0

    def sustained_tensor_flops_per_ns(self) -> float:
        """Whole-GPU sustained tensor throughput in flops per nanosecond."""
        return (self.num_sms * self.tensor_flops_per_sm_cycle *
                self.gemm_efficiency * self.clock_ghz)


@dataclass(frozen=True)
class LinkSpec:
    """One GPU<->switch NVLink connection (per direction).

    A DGX-H100 GPU has 900 GB/s of aggregate bidirectional NVLink bandwidth
    striped over 4 switch planes.  The default here is the *effective
    sustained* data bandwidth calibrated so that, at TP=8 on LLaMA-7B,
    communication time is comparable to computation time — the regime the
    paper establishes in Fig. 2 (comm overtakes compute beyond 4-8 GPUs;
    40-60% of end-to-end latency, Section II).  The spec sheet's raw
    112.5 GB/s per plane per direction, combined with the paper's own GPU
    model, would make the workload compute-bound and suppress every effect
    the paper studies; see DESIGN.md ("calibration").
    """

    bandwidth_gbps: float = 16.0         # bytes/ns, one direction, per plane
    latency_ns: float = 250.0            # propagation, one way (paper IV-A)
    flit_bytes: int = 16
    max_packet_bytes: int = 128          # intra-SM coalescing target


@dataclass(frozen=True)
class SwitchSpec:
    """NVSwitch parameters, including the CAIS merge-unit provisioning."""

    hop_latency_ns: float = 100.0        # internal forwarding latency
    num_vcs: int = 8
    vc_depth: int = 256
    merge_table_entries: int = 320       # 40 KB / 128 B per entry (paper IV-A)
    merge_entry_bytes: int = 128
    merge_timeout_ns: float = 50_000.0   # forward-progress timeout
    reduce_flops_per_ns: float = 1.0e3   # in-switch ALU throughput (amortized)

    def merge_table_bytes(self) -> int:
        """Merge table capacity per port, in bytes."""
        return self.merge_table_entries * self.merge_entry_bytes


@dataclass(frozen=True)
class JitterSpec:
    """Execution-variability model (paper Section III-B motivation, [18]).

    ``tb_jitter`` is a multiplicative per-TB compute-time perturbation.
    ``gpu_skew_ns`` is a per-GPU constant start-time offset drawn uniformly
    in ``[0, gpu_skew_ns]``.  ``dispatch_shuffle_window`` locally permutes
    the TB dispatch order per GPU, modelling independent hardware TB
    schedulers — the dominant source of the ~35 us uncoordinated request
    spread the paper reports.
    """

    tb_jitter: float = 0.08
    gpu_skew_ns: float = 2_000.0
    dispatch_shuffle_window: int = 48


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of the simulated node.

    The topology is ``num_gpus`` GPUs, each connected to every one of the
    ``num_switches`` switch planes by one bidirectional link.
    """

    num_gpus: int = 8
    num_switches: int = 4
    gpu: GpuSpec = field(default_factory=GpuSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    switch: SwitchSpec = field(default_factory=SwitchSpec)
    jitter: JitterSpec = field(default_factory=JitterSpec)
    seed: int = 2026
    sync_rtt_ns: float = 500.0           # TB-group sync empty-packet RTT

    def __post_init__(self) -> None:
        if self.num_gpus < 2:
            raise ConfigError(f"need at least 2 GPUs, got {self.num_gpus}")
        if self.num_switches < 1:
            raise ConfigError(
                f"need at least 1 switch, got {self.num_switches}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def per_gpu_bandwidth_gbps(self) -> float:
        """Aggregate one-direction NVLink bandwidth per GPU (all planes)."""
        return self.link.bandwidth_gbps * self.num_switches

    def with_gpus(self, num_gpus: int) -> "SystemConfig":
        """A copy of this config scaled to ``num_gpus`` GPUs."""
        return replace(self, num_gpus=num_gpus)

    def with_merge_entries(self, entries: int) -> "SystemConfig":
        """A copy with a different per-port merge-table capacity."""
        return replace(self, switch=replace(self.switch,
                                            merge_table_entries=entries))

    def with_seed(self, seed: int) -> "SystemConfig":
        """A copy with a different master RNG seed."""
        return replace(self, seed=seed)


def dgx_h100_config(num_gpus: int = 8, seed: int = 2026) -> SystemConfig:
    """The paper's default half-scale DGX-H100 configuration."""
    return SystemConfig(num_gpus=num_gpus, seed=seed)


def full_scale_config(num_gpus: int = 8, seed: int = 2026) -> SystemConfig:
    """Full-scale H100 (132 SMs), used by the Table II validation."""
    return SystemConfig(
        num_gpus=num_gpus,
        gpu=GpuSpec(num_sms=132),
        seed=seed,
    )
