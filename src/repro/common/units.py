"""Units and conversion helpers.

Time is modelled as a continuous quantity in **nanoseconds** (float), which
gives sub-cycle resolution at GPU clocks (~1.4 GHz => ~0.7 ns per cycle)
without the cost of integer cycle stepping.  Data sizes are **bytes** (int).
Bandwidth is **bytes per nanosecond** (== GB/s, conveniently).

The helpers below keep unit conversions explicit at call sites, per the
"explicit is better than implicit" rule: ``GiB(16)`` reads better than
``16 * 2**30``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (bytes)
# ---------------------------------------------------------------------------

def KiB(n: float) -> int:
    """``n`` kibibytes expressed in bytes."""
    return int(n * 1024)


def MiB(n: float) -> int:
    """``n`` mebibytes expressed in bytes."""
    return int(n * 1024**2)


def GiB(n: float) -> int:
    """``n`` gibibytes expressed in bytes."""
    return int(n * 1024**3)


# ---------------------------------------------------------------------------
# Time (nanoseconds)
# ---------------------------------------------------------------------------

def ns(n: float) -> float:
    """``n`` nanoseconds (identity, used for readability)."""
    return float(n)


def us(n: float) -> float:
    """``n`` microseconds expressed in nanoseconds."""
    return float(n) * 1e3


def ms(n: float) -> float:
    """``n`` milliseconds expressed in nanoseconds."""
    return float(n) * 1e6


def seconds(n: float) -> float:
    """``n`` seconds expressed in nanoseconds."""
    return float(n) * 1e9


# ---------------------------------------------------------------------------
# Bandwidth (bytes per nanosecond == GB/s)
# ---------------------------------------------------------------------------

def gbps(n: float) -> float:
    """``n`` gigabytes per second expressed in bytes/ns.

    1 GB/s = 1e9 bytes / 1e9 ns = 1 byte/ns, so this is the identity — the
    helper exists so call sites read as bandwidths, not magic floats.
    """
    return float(n)


def tbps(n: float) -> float:
    """``n`` terabytes per second expressed in bytes/ns."""
    return float(n) * 1e3


def transfer_time_ns(nbytes: int, bandwidth_bytes_per_ns: float) -> float:
    """Serialization delay for ``nbytes`` over a link of the given bandwidth."""
    if bandwidth_bytes_per_ns <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_ns}")
    return nbytes / bandwidth_bytes_per_ns


# ---------------------------------------------------------------------------
# Frequency / cycles
# ---------------------------------------------------------------------------

def cycles_to_ns(cycles: float, clock_ghz: float) -> float:
    """Convert a cycle count at ``clock_ghz`` GHz into nanoseconds."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz}")
    return cycles / clock_ghz


def ns_to_cycles(t_ns: float, clock_ghz: float) -> float:
    """Convert nanoseconds into a cycle count at ``clock_ghz`` GHz."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz}")
    return t_ns * clock_ghz
