"""Exception hierarchy shared by all repro subsystems.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigError(ReproError):
    """A hardware or workload configuration is invalid."""


class RoutingError(ReproError):
    """A message could not be routed to its destination."""


class ProtocolError(ReproError):
    """A switch/GPU protocol invariant was violated (e.g. duplicate session)."""


class DeadlockError(SimulationError):
    """The event queue drained while entities still had outstanding work."""


class WorkloadError(ReproError, ValueError):
    """An operator graph or tiling request is malformed.

    Also a :class:`ValueError`: a malformed workload is almost always a bad
    argument (a model that does not divide across the TP group, a negative
    tile size), and callers outside the library naturally guard those with
    ``except ValueError``.
    """
