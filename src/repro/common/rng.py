"""Deterministic per-component random streams.

Every stochastic effect in the simulator (thread-block execution jitter,
per-GPU clock skew, scheduler tie-breaking) draws from a named stream so that

* runs are reproducible for a fixed master seed, and
* adding a new consumer of randomness does not perturb existing streams
  (each stream is seeded independently from the master seed and its name).
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngPool:
    """Factory of independent, deterministically seeded RNG streams."""

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError(f"seed must be non-negative, got {master_seed}")
        self.master_seed = master_seed
        self._streams: dict = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the RNG stream for ``name``, creating it on first use.

        The same ``(master_seed, name)`` pair always yields an identical
        stream regardless of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def jitter(self, name: str, magnitude: float) -> float:
        """One multiplicative jitter factor in ``[1-magnitude, 1+magnitude]``.

        Used for thread-block execution-time variability; ``magnitude=0``
        disables jitter and always returns exactly 1.0.
        """
        if magnitude == 0.0:
            return 1.0
        return 1.0 + float(self.stream(name).uniform(-magnitude, magnitude))
