"""Readable, advanceable id allocators.

``itertools.count`` hands out ids fast but its next value cannot be read
or bulk-advanced.  The analytic collective bypass (DESIGN.md §11) replays
a calibrated phase without simulating it, and must leave every id stream
exactly where the event path would have left it — message ids feed the
plane-striping hash, collective run ids feed staging-address construction
— so the streams it touches use this allocator instead.
"""

from __future__ import annotations


class IdAllocator:
    """Monotonic id source: call it for the next id; ``value`` is the next
    id to be handed out; ``advance(n)`` skips ``n`` ids."""

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def __call__(self) -> int:
        v = self.value
        self.value = v + 1
        return v

    def advance(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"cannot advance id allocator by {n}")
        self.value += n
