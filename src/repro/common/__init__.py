"""Shared substrate: discrete-event engine, units, hardware configs, RNG."""

from .config import (
    GpuSpec,
    JitterSpec,
    LinkSpec,
    SwitchSpec,
    SystemConfig,
    dgx_h100_config,
    full_scale_config,
)
from .errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    WorkloadError,
)
from .events import Event, Simulator
from .rng import RngPool

__all__ = [
    "ConfigError",
    "DeadlockError",
    "Event",
    "GpuSpec",
    "JitterSpec",
    "LinkSpec",
    "ProtocolError",
    "ReproError",
    "RngPool",
    "RoutingError",
    "SimulationError",
    "Simulator",
    "SwitchSpec",
    "SystemConfig",
    "WorkloadError",
    "dgx_h100_config",
    "full_scale_config",
]
