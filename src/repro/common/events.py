"""Discrete-event simulation engine.

The engine is the substrate every hardware model in this repository runs on:
GPUs, links, switches, NVLS engines and the CAIS merge unit all schedule
callbacks on one shared :class:`Simulator`.

Design notes
------------
* Time is a float in nanoseconds (see :mod:`repro.common.units`).
* Events at equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties), which makes runs fully
  deterministic for a fixed seed.
* Events are cancellable: :meth:`Event.cancel` marks the event dead and the
  main loop skips it.  This supports timeout timers (CAIS merge-entry
  timeouts) that are usually disarmed before they fire.  The simulator
  tracks how many cancelled events sit in the queue and auto-compacts the
  queue when they outnumber the live ones (timeout-heavy CAIS runs would
  otherwise drag dead timers through every queue operation).
* Two interchangeable queue disciplines sit behind one three-method API
  (``push``/``pop``/``peek``): the reference binary heap and a calendar
  queue (bucketed by timestamp) with O(1) amortized push for the
  near-monotonic timestamp distributions simulations produce.  Both fire
  events in *exactly* the same ``(time, seq)`` order — entries are
  ``(time, seq, event)`` tuples and ``seq`` is unique, so the order is a
  total order independent of the container — which keeps every output
  byte-identical across disciplines (property-tested in
  ``tests/properties/test_scheduler_equivalence.py``).  The calendar queue
  is selected by default via :mod:`repro.common.fastpath`.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import current_causality, current_metrics, current_profiler
from ..obs.causality import NO_CAUSE
from .errors import SimulationError
from . import fastpath

#: Queues smaller than this are never auto-compacted — the rebuild would
#: cost more than skipping the handful of dead events.
_AUTO_COMPACT_MIN_QUEUE = 64


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only ever
    cancels them or inspects :attr:`time`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner",
                 "cause")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 owner: Optional["Simulator"] = None,
                 cause: int = NO_CAUSE):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner
        # Ambient causal-node id captured at schedule time (repro.obs
        # .causality); restored before the callback fires so causality
        # propagates through arbitrary callback cascades.
        self.cause = cause

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._cancelled_live += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.1f}ns, {name}, {state})"


#: Queue entries: comparison is C-level tuple comparison on (time, seq) —
#: ``seq`` is unique per simulator, so the third element never compares.
_Entry = Tuple[float, int, Event]


class HeapEventQueue:
    """Reference discipline: one binary heap of ``(time, seq, event)``."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: _Entry) -> None:
        heappush(self._heap, entry)

    def pop(self) -> _Entry:
        return heappop(self._heap)

    def peek(self) -> Optional[_Entry]:
        heap = self._heap
        return heap[0] if heap else None

    def compact(self) -> None:
        """Drop cancelled events; preserves relative order of the rest."""
        self._heap[:] = [e for e in self._heap if not e[2].cancelled]
        heapify(self._heap)


class CalendarEventQueue:
    """Calendar queue: timestamp-bucketed event store with exact ordering.

    Entries are hashed by ``floor(time / width)`` into buckets.  The
    *current* bucket (every entry at or before the bucket now being
    drained) is kept as a small binary heap; *future* buckets are plain
    append-only lists that get heapified wholesale the moment they become
    current (one O(n) heapify instead of n sifts).  A heap of non-empty
    bucket indices finds the next bucket, so sparse regions of the
    timeline cost nothing.  Push is O(1) amortized; pop is O(log b) in the
    current-bucket occupancy b.

    Ordering is exact by construction: all current-bucket times strictly
    precede all future-bucket times (equal times share a bucket), and
    within a bucket the heap orders ``(time, seq)`` tuples — so the pop
    sequence is identical to the reference heap's for any workload.

    The bucket width adapts: when the population doubles past the last
    resize point (or collapses below a quarter of it), every entry is
    rebucketed with ``width = span / population * target_occupancy``, so
    buckets hold ~:data:`_TARGET_OCCUPANCY` events regardless of the
    workload's time scale.
    """

    #: Events per bucket the resize policy aims for.
    TARGET_OCCUPANCY = 16
    #: Initial bucket width in ns (matches link/TB event spacing at the
    #: default fabric scale; adapted after the first resize anyway).
    INITIAL_WIDTH_NS = 64.0
    #: Population that triggers the first adaptive resize.
    MIN_RESIZE_POPULATION = 1024

    __slots__ = ("width", "_cur", "_cur_idx", "_buckets", "_order", "_size",
                 "_resize_up", "_resize_down", "resizes")

    def __init__(self, width: float = INITIAL_WIDTH_NS) -> None:
        self.width = width
        self._cur: List[_Entry] = []        # heap: bucket index <= _cur_idx
        self._cur_idx = 0
        self._buckets: Dict[int, List[_Entry]] = {}
        self._order: List[int] = []         # heap of future bucket indices
        self._size = 0
        self._resize_up = self.MIN_RESIZE_POPULATION
        self._resize_down = -1
        self.resizes = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: _Entry) -> None:
        idx = int(entry[0] / self.width)
        if idx <= self._cur_idx:
            heappush(self._cur, entry)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._order, idx)
            else:
                bucket.append(entry)
        self._size += 1
        if self._size >= self._resize_up:
            self._resize()

    def _advance(self) -> None:
        """Load the next non-empty future bucket into the current heap."""
        while not self._cur and self._order:
            idx = heappop(self._order)
            bucket = self._buckets.pop(idx, None)
            if bucket is None:      # stale index left behind by compact()
                continue
            heapify(bucket)
            self._cur = bucket
            self._cur_idx = idx

    def pop(self) -> _Entry:
        if not self._cur:
            self._advance()
        self._size -= 1
        if self._size <= self._resize_down:
            entry = heappop(self._cur)
            self._resize()
            return entry
        return heappop(self._cur)

    def peek(self) -> Optional[_Entry]:
        if not self._cur:
            self._advance()
        cur = self._cur
        return cur[0] if cur else None

    def compact(self) -> None:
        """Drop cancelled events; bucket structure is preserved (empty
        future buckets leave a stale index that :meth:`_advance` skips)."""
        cur = [e for e in self._cur if not e[2].cancelled]
        heapify(cur)
        self._cur = cur
        size = len(cur)
        for idx in list(self._buckets):
            bucket = [e for e in self._buckets[idx] if not e[2].cancelled]
            if bucket:
                self._buckets[idx] = bucket
                size += len(bucket)
            else:
                del self._buckets[idx]
        self._size = size

    def _entries(self) -> List[_Entry]:
        entries = list(self._cur)
        for bucket in self._buckets.values():
            entries.extend(bucket)
        return entries

    def _resize(self) -> None:
        """Rebucket everything with a width targeting
        :data:`TARGET_OCCUPANCY` events per bucket."""
        entries = self._entries()
        size = len(entries)
        self._resize_up = max(2 * size, self.MIN_RESIZE_POPULATION)
        self._resize_down = size // 4 if size >= 2 * self.MIN_RESIZE_POPULATION else -1
        if size >= 2:
            lo = min(e[0] for e in entries)
            hi = max(e[0] for e in entries)
            span = hi - lo
            if span > 0.0:
                self.width = span * self.TARGET_OCCUPANCY / size
            lo_idx = int(lo / self.width)
        else:
            lo_idx = int(entries[0][0] / self.width) if entries else 0
        self.resizes += 1
        self._cur = []
        self._cur_idx = lo_idx
        self._buckets = {}
        self._order = []
        width = self.width
        buckets = self._buckets
        cur = self._cur
        for entry in entries:
            idx = int(entry[0] / width)
            if idx <= lo_idx:
                cur.append(entry)
            else:
                bucket = buckets.get(idx)
                if bucket is None:
                    buckets[idx] = [entry]
                else:
                    bucket.append(entry)
        heapify(cur)
        order = list(buckets)
        heapify(order)
        self._order = order


def _make_queue(scheduler: str):
    if scheduler == "calendar":
        return CalendarEventQueue()
    if scheduler == "heap":
        return HeapEventQueue()
    raise SimulationError(
        f"unknown scheduler {scheduler!r}; expected 'calendar' or 'heap'")


class Simulator:
    """Priority-queue discrete-event simulator.

    ``scheduler`` selects the queue discipline (``"calendar"`` or
    ``"heap"``); by default it follows the process-global
    :func:`repro.common.fastpath.config`.  Both disciplines fire events in
    identical order (see module docstring), so the choice never affects
    simulation output.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, "a")
    >>> _ = sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = ("calendar" if fastpath.config().calendar_queue
                         else "heap")
        self.scheduler = scheduler
        self._now: float = 0.0
        self._queue = _make_queue(scheduler)
        # Next event sequence number.  A plain int (not itertools.count) so
        # the analytic bypass can read and bulk-advance it — keeping later
        # tie-breaking identical to what the event path would have produced.
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._cancelled_live = 0
        self._auto_compactions = 0
        self._peak_queue_depth = 0
        self._wall_seconds = 0.0
        self._work_reporters: List[Callable[[], Optional[str]]] = []
        # Observability hooks, captured at construction (install first).
        self._profiler = current_profiler()
        self._metrics = current_metrics()
        self._causality = current_causality()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots."""
        return self._cancelled_live

    def cancelled_fraction(self) -> float:
        """Fraction of the queue occupied by cancelled events."""
        if not len(self._queue):
            return 0.0
        return self._cancelled_live / len(self._queue)

    @property
    def auto_compactions(self) -> int:
        """Times the queue was auto-compacted (see :meth:`schedule`)."""
        return self._auto_compactions

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of the event queue."""
        return self._peak_queue_depth

    @property
    def wall_seconds(self) -> float:
        """Cumulative wall-clock time spent inside :meth:`run`."""
        return self._wall_seconds

    def events_per_wall_second(self) -> float:
        """Engine throughput so far (0 before the first :meth:`run`)."""
        if self._wall_seconds <= 0.0:
            return 0.0
        return self._events_processed / self._wall_seconds

    # ------------------------------------------------------------------
    # Outstanding-work diagnostics
    # ------------------------------------------------------------------
    def register_work_reporter(
            self, reporter: Callable[[], Optional[str]]) -> None:
        """Register a callable describing an entity's outstanding work.

        Reporters return a one-line summary (e.g. ``"gpu 3: 5 busy TBs, 2
        sync-pending"``) or ``None``/``""`` when the entity is idle.  They
        are only consulted when a stall is being turned into a
        :class:`DeadlockError`, so they may be arbitrarily slow.
        """
        self._work_reporters.append(reporter)

    def outstanding_report(self) -> List[str]:
        """One line per entity that still has work outstanding.

        A reporter that itself crashes must not mask the deadlock being
        diagnosed, so its exception is folded into the report instead of
        propagating.
        """
        lines: List[str] = []
        for reporter in self._work_reporters:
            try:
                line = reporter()
            except Exception as exc:  # pragma: no cover - defensive
                line = f"<work reporter {reporter!r} failed: {exc!r}>"
            if line:
                lines.append(line)
        return lines

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event {delay} ns in the past "
                f"(now={self._now})")
        return self._push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns.

        The timestamp is used exactly as given — no round-trip through a
        relative delay, which would perturb absolute times by float
        rounding (``now + (time - now) != time`` in general).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} ns, in the past "
                f"(now={self._now})")
        return self._push(time, callback, args)

    @property
    def seq_allocated(self) -> int:
        """Sequence numbers handed out so far (next event gets this one)."""
        return self._seq

    def advance_seq(self, n: int) -> None:
        """Skip ``n`` sequence numbers (analytic-bypass replay only)."""
        if n < 0:
            raise SimulationError(f"cannot advance seq by {n}")
        self._seq += n

    def _push(self, time: float, callback: Callable[..., None],
              args: tuple) -> Event:
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, callback, args, owner=self,
                   cause=self._causality.current)
        queue = self._queue
        queue.push((time, seq, ev))
        depth = len(queue)
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        # Auto-compact: when dead timers dominate the queue, one O(n)
        # rebuild beats dragging them through every push/pop.
        if (self._cancelled_live * 2 > depth
                and depth >= _AUTO_COMPACT_MIN_QUEUE):
            self.drain_cancelled()
            self._auto_compactions += 1
            if self._metrics.enabled:
                self._metrics.counter("sim.auto_compactions").inc()
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, ev: Event) -> None:
        """Advance the clock to ``ev`` and fire it.

        The one dispatch path shared by :meth:`step` and :meth:`run` —
        clock monotonicity check, causality restore, profiler wrap.
        """
        if ev.time < self._now:
            raise SimulationError(
                f"event queue time went backwards: {ev.time} < {self._now}")
        self._now = ev.time
        self._events_processed += 1
        causality = self._causality
        if causality.enabled:
            causality.current = ev.cause
        profiler = self._profiler
        if profiler is None:
            ev.callback(*ev.args)
        else:
            profiler.timed(ev.callback, ev.args)

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        queue = self._queue
        while len(queue):
            ev = queue.pop()[2]
            if ev.cancelled:
                self._cancelled_live -= 1
                continue
            self._dispatch(ev)
            self.publish_metrics()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` events have fired.

        ``until`` is an absolute simulation time; when the next event lies
        beyond it the clock is advanced to ``until`` and the loop stops with
        the event still queued.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        # Hot loop: hoist attribute lookups out of the per-event path
        # (this loop fires every event of every simulation).  The queue
        # object is mutated in place everywhere (drain_cancelled included),
        # so the local bindings stay valid across callbacks.
        queue = self._queue
        peek = queue.peek
        pop = queue.pop
        dispatch = self._dispatch
        fired = 0
        wall_start = perf_counter()
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    return
                entry = peek()
                if entry is None:
                    break
                ev = entry[2]
                if ev.cancelled:
                    pop()
                    self._cancelled_live -= 1
                    continue
                if until is not None and entry[0] > until:
                    self._now = until
                    return
                pop()
                dispatch(ev)
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._wall_seconds += perf_counter() - wall_start
            self.publish_metrics()

    def drain_cancelled(self) -> None:
        """Compact the queue by dropping cancelled events.

        Mutates the queue object in place: :meth:`run` holds local
        references to its methods across callbacks (which may trigger
        auto-compaction via :meth:`schedule`), so the queue's identity must
        never change.
        """
        self._queue.compact()
        self._cancelled_live = 0

    def publish_metrics(self) -> None:
        """Export engine health gauges to the metrics registry (no-op when
        metrics are disabled)."""
        metrics = self._metrics
        if not metrics.enabled:
            return
        metrics.gauge("sim.queue_depth").set(len(self._queue))
        metrics.gauge("sim.peak_queue_depth").set(self._peak_queue_depth)
        metrics.gauge("sim.cancelled_fraction").set(self.cancelled_fraction())
        metrics.gauge("sim.events_processed").set(self._events_processed)
        # Volatile: wall-clock-dependent, excluded from snapshots so
        # same-seed runs keep byte-identical metrics exports.
        metrics.gauge("sim.events_per_wall_second", volatile=True).set(
            self.events_per_wall_second())
