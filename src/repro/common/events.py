"""Discrete-event simulation engine.

The engine is the substrate every hardware model in this repository runs on:
GPUs, links, switches, NVLS engines and the CAIS merge unit all schedule
callbacks on one shared :class:`Simulator`.

Design notes
------------
* Time is a float in nanoseconds (see :mod:`repro.common.units`).
* Events at equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties), which makes runs fully
  deterministic for a fixed seed.
* Events are cancellable: :meth:`Event.cancel` marks the event dead and the
  main loop skips it.  This supports timeout timers (CAIS merge-entry
  timeouts) that are usually disarmed before they fire.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from .errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only ever
    cancels them or inspects :attr:`time`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.1f}ns, {name}, {state})"


class Simulator:
    """Priority-queue discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, "a")
    >>> _ = sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event {delay} ns in the past "
                f"(now={self._now})")
        ev = Event(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self._now:
                raise SimulationError(
                    f"event queue time went backwards: {ev.time} < {self._now}")
            self._now = ev.time
            self._events_processed += 1
            ev.callback(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` events have fired.

        ``until`` is an absolute simulation time; when the next event lies
        beyond it the clock is advanced to ``until`` and the loop stops with
        the event still queued.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    return
                nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and nxt.time > until:
                    self._now = until
                    return
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def drain_cancelled(self) -> None:
        """Compact the queue by dropping cancelled events (heap rebuild)."""
        self._queue = [ev for ev in self._queue if not ev.cancelled]
        heapq.heapify(self._queue)
