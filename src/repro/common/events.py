"""Discrete-event simulation engine.

The engine is the substrate every hardware model in this repository runs on:
GPUs, links, switches, NVLS engines and the CAIS merge unit all schedule
callbacks on one shared :class:`Simulator`.

Design notes
------------
* Time is a float in nanoseconds (see :mod:`repro.common.units`).
* Events at equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties), which makes runs fully
  deterministic for a fixed seed.
* Events are cancellable: :meth:`Event.cancel` marks the event dead and the
  main loop skips it.  This supports timeout timers (CAIS merge-entry
  timeouts) that are usually disarmed before they fire.  The simulator
  tracks how many cancelled events sit in the queue and auto-compacts the
  heap when they outnumber the live ones (timeout-heavy CAIS runs would
  otherwise drag dead timers through every heap operation).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from ..obs import current_causality, current_metrics, current_profiler
from ..obs.causality import NO_CAUSE
from .errors import SimulationError

#: Queues smaller than this are never auto-compacted — the rebuild would
#: cost more than skipping the handful of dead events.
_AUTO_COMPACT_MIN_QUEUE = 64


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only ever
    cancels them or inspects :attr:`time`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner",
                 "cause")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 owner: Optional["Simulator"] = None,
                 cause: int = NO_CAUSE):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner
        # Ambient causal-node id captured at schedule time (repro.obs
        # .causality); restored before the callback fires so causality
        # propagates through arbitrary callback cascades.
        self.cause = cause

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._cancelled_live += 1

    def __lt__(self, other: "Event") -> bool:
        # Direct field comparison: this runs on every heap sift, and the
        # tuple form allocates two tuples per call.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.1f}ns, {name}, {state})"


class Simulator:
    """Priority-queue discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, "a")
    >>> _ = sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_live = 0
        self._auto_compactions = 0
        self._peak_queue_depth = 0
        self._work_reporters: List[Callable[[], Optional[str]]] = []
        # Observability hooks, captured at construction (install first).
        self._profiler = current_profiler()
        self._metrics = current_metrics()
        self._causality = current_causality()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots."""
        return self._cancelled_live

    def cancelled_fraction(self) -> float:
        """Fraction of the queue occupied by cancelled events."""
        if not self._queue:
            return 0.0
        return self._cancelled_live / len(self._queue)

    @property
    def auto_compactions(self) -> int:
        """Times the queue was auto-compacted (see :meth:`schedule`)."""
        return self._auto_compactions

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of the event queue."""
        return self._peak_queue_depth

    # ------------------------------------------------------------------
    # Outstanding-work diagnostics
    # ------------------------------------------------------------------
    def register_work_reporter(
            self, reporter: Callable[[], Optional[str]]) -> None:
        """Register a callable describing an entity's outstanding work.

        Reporters return a one-line summary (e.g. ``"gpu 3: 5 busy TBs, 2
        sync-pending"``) or ``None``/``""`` when the entity is idle.  They
        are only consulted when a stall is being turned into a
        :class:`DeadlockError`, so they may be arbitrarily slow.
        """
        self._work_reporters.append(reporter)

    def outstanding_report(self) -> List[str]:
        """One line per entity that still has work outstanding.

        A reporter that itself crashes must not mask the deadlock being
        diagnosed, so its exception is folded into the report instead of
        propagating.
        """
        lines: List[str] = []
        for reporter in self._work_reporters:
            try:
                line = reporter()
            except Exception as exc:  # pragma: no cover - defensive
                line = f"<work reporter {reporter!r} failed: {exc!r}>"
            if line:
                lines.append(line)
        return lines

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event {delay} ns in the past "
                f"(now={self._now})")
        ev = Event(self._now + delay, next(self._seq), callback, args,
                   owner=self, cause=self._causality.current)
        heapq.heappush(self._queue, ev)
        depth = len(self._queue)
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        # Auto-compact: when dead timers dominate the heap, one O(n)
        # rebuild beats dragging them through every push/pop.
        if (self._cancelled_live * 2 > depth
                and depth >= _AUTO_COMPACT_MIN_QUEUE):
            self.drain_cancelled()
            self._auto_compactions += 1
            if self._metrics.enabled:
                self._metrics.counter("sim.auto_compactions").inc()
        return ev

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                self._cancelled_live -= 1
                continue
            if ev.time < self._now:
                raise SimulationError(
                    f"event queue time went backwards: {ev.time} < {self._now}")
            self._now = ev.time
            self._events_processed += 1
            causality = self._causality
            if causality.enabled:
                causality.current = ev.cause
            profiler = self._profiler
            if profiler is None:
                ev.callback(*ev.args)
            else:
                profiler.timed(ev.callback, ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` events have fired.

        ``until`` is an absolute simulation time; when the next event lies
        beyond it the clock is advanced to ``until`` and the loop stops with
        the event still queued.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        # Hot loop: hoist attribute/global lookups out of the per-event
        # path (this loop fires every event of every simulation).  The
        # queue list is mutated in place everywhere (drain_cancelled
        # included), so the local binding stays valid across callbacks.
        queue = self._queue
        heappop = heapq.heappop
        profiler = self._profiler
        causality = self._causality
        cz_on = causality.enabled
        fired = 0
        try:
            while queue:
                if max_events is not None and fired >= max_events:
                    return
                ev = queue[0]
                if ev.cancelled:
                    heappop(queue)
                    self._cancelled_live -= 1
                    continue
                if until is not None and ev.time > until:
                    self._now = until
                    return
                heappop(queue)
                if ev.time < self._now:
                    raise SimulationError(
                        f"event queue time went backwards: "
                        f"{ev.time} < {self._now}")
                self._now = ev.time
                self._events_processed += 1
                if cz_on:
                    causality.current = ev.cause
                if profiler is None:
                    ev.callback(*ev.args)
                else:
                    profiler.timed(ev.callback, ev.args)
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self.publish_metrics()

    def drain_cancelled(self) -> None:
        """Compact the queue by dropping cancelled events (heap rebuild).

        Mutates the list in place: :meth:`run` holds a local reference to
        the queue across callbacks (which may trigger auto-compaction via
        :meth:`schedule`), so the list's identity must never change.
        """
        self._queue[:] = [ev for ev in self._queue if not ev.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_live = 0

    def publish_metrics(self) -> None:
        """Export engine health gauges to the metrics registry (no-op when
        metrics are disabled)."""
        metrics = self._metrics
        if not metrics.enabled:
            return
        metrics.gauge("sim.queue_depth").set(len(self._queue))
        metrics.gauge("sim.peak_queue_depth").set(self._peak_queue_depth)
        metrics.gauge("sim.cancelled_fraction").set(self.cancelled_fraction())
        metrics.gauge("sim.events_processed").set(self._events_processed)
