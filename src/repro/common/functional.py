"""Functional-payload helpers.

Timing-mode simulations carry ``payload=None``; correctness tests attach real
values (floats or numpy arrays) so in-switch reductions can be verified
numerically.  ``combine_payloads`` is the single reduction operator used by
the NVLS engine, the CAIS merge unit, and GPU-side accumulation.
"""

from __future__ import annotations

from typing import Any


def combine_payloads(acc: Any, value: Any) -> Any:
    """Sum two optional payloads; ``None`` acts as the identity."""
    if acc is None:
        return value
    if value is None:
        return acc
    return acc + value
