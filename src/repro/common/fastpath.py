"""Global fast-path configuration for the simulation engine.

Four composable acceleration layers (see DESIGN.md §11), each of which is
*equivalence-preserving* in a precisely stated sense:

* ``calendar_queue`` — bucketed event scheduler in
  :class:`repro.common.events.Simulator`.  Fires events in exactly the same
  ``(time, seq)`` order as the reference heap, so enabling it never changes
  any output byte.
* ``link_windows`` — batched serialization on uncontended FIFO links
  (:mod:`repro.interconnect.link`).  Per-chunk timestamps are reproduced
  exactly; only event *count* and same-instant interleaving differ.
* ``analytic_collectives`` — closed-form/calibrated completion times for
  uncongested collective phases (:mod:`repro.collectives.analytic`),
  validated online against the event path on a deterministic sample of ops.
* ``analytic_kernels`` — exact arithmetic evaluation of isolated
  pure-compute kernel launches (:mod:`repro.gpu.executor`): the SM slot
  pipeline is replayed in a specialized loop drawing the *same* RNG values
  in the *same* order as the event path, so every timestamp, jitter draw,
  and busy-integral float is reproduced bit-for-bit with two heap
  operations per thread block instead of two full engine events.

The process-global config is read once per :class:`Simulator`/harness
construction.  ``repro --no-fastpath`` (or ``REPRO_NO_FASTPATH=1``) forces
the reference event path everywhere, which is the byte-identity baseline CI
compares against.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional


@dataclass(frozen=True)
class FastPathConfig:
    """Which acceleration layers are active, plus their tuning knobs."""

    #: Use the calendar-queue scheduler instead of the reference heap.
    calendar_queue: bool = True
    #: Collapse per-chunk serialization events on uncontended FIFO links.
    link_windows: bool = True
    #: Bypass event-level simulation for validated uncongested collectives.
    analytic_collectives: bool = True
    #: Evaluate isolated pure-compute kernel launches arithmetically
    #: (bit-exact replication of the event path, including RNG draws).
    analytic_kernels: bool = True
    #: Occurrences of a collective signature simulated on the event path
    #: before the bypass may engage: the first calibrates, the remaining
    #: ``validate_occurrences - 1`` must reproduce the calibrated makespan
    #: to exact float equality or the signature is blacklisted.
    validate_occurrences: int = 2

    @property
    def any_enabled(self) -> bool:
        return (self.calendar_queue or self.link_windows
                or self.analytic_collectives or self.analytic_kernels)

    def cache_token(self) -> str:
        """Stable fingerprint component for result caches.

        Calendar-queue choice is provably output-invariant so it is *not*
        part of the token; the other layers change event interleaving
        (windows) or skip simulation entirely (analytic), so cached
        summaries must not be shared across those modes.
        """
        return (f"fp:w{int(self.link_windows)}"
                f"-a{int(self.analytic_collectives)}"
                f"-k{int(self.analytic_kernels)}"
                f"-v{self.validate_occurrences}")


DISABLED = FastPathConfig(calendar_queue=False, link_windows=False,
                          analytic_collectives=False,
                          analytic_kernels=False)


def _from_env() -> FastPathConfig:
    if os.environ.get("REPRO_NO_FASTPATH", "").strip() not in ("", "0"):
        return DISABLED
    return FastPathConfig()


_config: FastPathConfig = _from_env()


def config() -> FastPathConfig:
    """The process-global fast-path configuration."""
    return _config


def set_config(cfg: FastPathConfig) -> FastPathConfig:
    """Install ``cfg`` globally; returns the previous config."""
    global _config
    previous = _config
    _config = cfg
    return previous


def disable_all() -> FastPathConfig:
    """Force the reference event path everywhere (``--no-fastpath``)."""
    return set_config(DISABLED)


def configure(**overrides) -> FastPathConfig:
    """Replace selected fields of the global config; returns the previous."""
    return set_config(replace(_config, **overrides))


@contextmanager
def overridden(cfg: Optional[FastPathConfig] = None,
               **overrides) -> Iterator[FastPathConfig]:
    """Temporarily install ``cfg`` (or field overrides) — test helper."""
    new = cfg if cfg is not None else replace(_config, **overrides)
    previous = set_config(new)
    try:
        yield new
    finally:
        set_config(previous)
