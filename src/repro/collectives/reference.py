"""Analytic collective cost models (alpha-beta style).

Two uses:

* the **Fig. 18 validation reference**: the paper measures NCCL AllReduce on
  a real DGX-H100 with NVLS; without hardware we substitute a first-
  principles alpha-beta model of the same operation (see DESIGN.md) and
  report simulator-vs-model error across 1-16 GB messages exactly as the
  paper reports simulator-vs-hardware error; and
* quick sanity bounds in tests (a simulated collective should land within a
  constant factor of its analytic time).
"""

from __future__ import annotations

from ..common.config import SystemConfig
from ..common.errors import WorkloadError


def _check(nbytes: int, k: int) -> None:
    if nbytes <= 0:
        raise WorkloadError(f"collective size must be positive: {nbytes}")
    if k < 2:
        raise WorkloadError(f"need at least 2 ranks, got {k}")


def wire_efficiency(config: SystemConfig) -> float:
    """Payload fraction of the wire: one flit header per coalesced packet."""
    packet = config.link.max_packet_bytes
    return packet / (packet + config.link.flit_bytes)


def ring_allreduce_time_ns(nbytes: int, config: SystemConfig) -> float:
    """Bandwidth-optimal ring AllReduce: 2(K-1)/K of the tensor per link."""
    k = config.num_gpus
    _check(nbytes, k)
    bw = config.per_gpu_bandwidth_gbps()
    hop = config.link.latency_ns * 2 + config.switch.hop_latency_ns
    return 2 * (k - 1) / k * nbytes / bw + 2 * (k - 1) * hop


def ring_reduce_scatter_time_ns(nbytes: int, config: SystemConfig) -> float:
    """Ring ReduceScatter: (K-1)/K of the tensor per link."""
    k = config.num_gpus
    _check(nbytes, k)
    bw = config.per_gpu_bandwidth_gbps()
    hop = config.link.latency_ns * 2 + config.switch.hop_latency_ns
    return (k - 1) / k * nbytes / bw + (k - 1) * hop


def ring_all_gather_time_ns(nbytes: int, config: SystemConfig) -> float:
    """Ring AllGather: same volume profile as ReduceScatter."""
    return ring_reduce_scatter_time_ns(nbytes, config)


def nvls_allreduce_time_ns(nbytes: int, config: SystemConfig) -> float:
    """One-shot NVLS AllReduce (the Fig. 18 hardware stand-in).

    Each GPU streams its full copy up into the switch fabric once (the
    switch reduces in-flight) and receives the full result once: N bytes
    per direction per GPU, plus one gather round trip and the in-switch
    reduction latency.  This is the single-pass traffic profile that gives
    NVLS its ~2x bandwidth advantage over rings on large messages.
    """
    k = config.num_gpus
    _check(nbytes, k)
    bw = config.per_gpu_bandwidth_gbps() * wire_efficiency(config)
    rtt = 2 * config.link.latency_ns + config.switch.hop_latency_ns
    reduce_ns = nbytes / (config.switch.reduce_flops_per_ns *
                          config.num_switches)
    pipeline = max(nbytes / bw, reduce_ns)
    return pipeline + 2 * rtt


def nvls_allreduce_busbw_gbps(nbytes: int, config: SystemConfig) -> float:
    """NCCL-convention bus bandwidth for the NVLS AllReduce reference."""
    k = config.num_gpus
    algo_bw = nbytes / nvls_allreduce_time_ns(nbytes, config)
    return algo_bw * 2 * (k - 1) / k
