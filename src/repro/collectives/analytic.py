"""Analytic fast-path for uncongested collective phases (DESIGN.md §11).

Barrier-style systems (TP-NVLS, SP-NVLS, and the overlap baselines when
they run without chunk callbacks) execute the *same* collective —
transport, kind, byte count, chunking, fabric — hundreds of times per
experiment, each time against a quiescent network.  Event-level simulation
of such a phase is pure recomputation: its completion time and its entire
side-effect footprint (link busy intervals, id-stream advances, switch
counters) are a function of the signature alone.

:class:`CollectiveFastPath` exploits this with a calibrate → validate →
replay protocol:

1. **Calibrate** — the first occurrence of a signature runs on the event
   path; its duration and side-effect deltas are captured.
2. **Validate** — the next ``validate_occurrences - 1`` occurrences (the
   deterministic sample) also run on the event path; each must reproduce
   the calibrated duration to *exact float equality* (``t0 + duration ==
   observed completion``) and identical id/traffic deltas, or the
   signature is blacklisted back to the event path forever.  Passing
   validation at different absolute start times is direct evidence that
   the phase's float arithmetic is translation-invariant for this
   signature.
3. **Replay** — later occurrences skip event-level simulation: one
   completion event fires at ``t0 + duration``, and the captured deltas
   are applied (link trackers, message/run-id streams, switch counters),
   leaving downstream state where the event path would have left it.

A closed-form estimate of the uncongested phase (:func:`phase_estimate`)
cross-checks every calibration; a gross disagreement is counted as a
diagnostic (the calibrated value still wins — it is exact by
construction).

The signature table is per-harness: each simulated node calibrates its
own signatures, so a run's event count (and everything else about it) is
a deterministic function of the run alone, never of what happened to run
earlier in the same process.  Repeated collectives *within* one run —
the dominant pattern, every transformer layer issuing the same phases —
still amortize down to single events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common import fastpath
from ..common.config import SystemConfig
from ..interconnect.message import (FLIT_BYTES, PACKET_BYTES, _msg_ids)
from ..llm.graph import CommKind
from ..obs import current_causality, current_metrics, current_tracer
from . import ring as _ring_mod
from . import nvls_collectives as _nvls_mod


# ---------------------------------------------------------------------------
# Closed-form sanity model
# ---------------------------------------------------------------------------

def _wire_bytes(payload: int) -> int:
    return payload + -(-payload // PACKET_BYTES) * FLIT_BYTES


#: Serialized traffic per GPU, in units of the collective's shard size, for
#: each (transport, kind): ring passes each shard around the ring (k-1)
#: hops; NVLS pulls/pushes each shard across the fabric once.
_ROUNDS = {
    ("ring", CommKind.REDUCE_SCATTER): lambda k: k - 1,
    ("ring", CommKind.ALL_GATHER): lambda k: k - 1,
    ("ring", CommKind.ALL_REDUCE): lambda k: 2 * (k - 1),
    ("nvls", CommKind.REDUCE_SCATTER): lambda k: 1,
    ("nvls", CommKind.ALL_GATHER): lambda k: 1,
    ("nvls", CommKind.ALL_REDUCE): lambda k: 2,
}


def phase_estimate(transport: str, kind: CommKind, nbytes: int,
                   chunk_bytes: int, config: SystemConfig) -> float:
    """Closed-form completion-time estimate of an uncongested phase (ns).

    A pipelined bandwidth-server model: the phase's steady state is limited
    by per-plane up-link serialization of the traffic each GPU must move,
    plus a pipeline-fill term of one wire traversal (two link latencies and
    a switch hop, plus one chunk serialization) per round.  This is a
    sanity model (worth ~tens of percent), used only to cross-check the
    exact calibrated duration — protocol details (pull windows, staging
    barriers, credit turnarounds) are deliberately out of scope.
    """
    k = config.num_gpus
    planes = config.num_switches
    rounds = _ROUNDS[(transport, kind)](k)
    shard = nbytes // k
    chunk = min(chunk_bytes, shard) if shard else chunk_bytes
    chunks_per_shard = -(-shard // chunk_bytes) if shard else 0
    bw = config.link.bandwidth_gbps
    serialization = rounds * chunks_per_shard * _wire_bytes(chunk) / bw / planes
    fill = rounds * (2 * config.link.latency_ns
                     + config.switch.hop_latency_ns
                     + _wire_bytes(chunk) / bw)
    return serialization + fill


# ---------------------------------------------------------------------------
# Signature table
# ---------------------------------------------------------------------------

_CALIBRATING = "calibrating"
_VALIDATING = "validating"
_BYPASS = "bypass"
_BLACKLISTED = "blacklisted"

#: One link's captured tracker delta: (link ordinal in
#: ``network.all_links()``, BandwidthTracker.delta_since payload).
_LinkDelta = Tuple[int, Tuple[List[Tuple[float, float]], int, int]]


@dataclass
class _Signature:
    """Calibration record and bypass state for one collective signature."""

    state: str = _CALIBRATING
    duration: float = 0.0
    validated: int = 0
    link_deltas: List[_LinkDelta] = field(default_factory=list)
    msg_delta: int = 0
    ring_delta: int = 0
    nvls_delta: int = 0
    events_delta: int = 0
    #: Per-switch (messages_handled delta, {op: count delta}).
    switch_deltas: List[Tuple[int, Dict[object, int]]] = \
        field(default_factory=list)
    analytic_rel_err: float = 0.0


class CollectiveFastPath:
    """CommImpl wrapper implementing the calibrate/validate/replay protocol.

    Wraps any comm adapter; engages only for adapters that declare a
    ``fastpath_transport`` (ring/NVLS — LADM's direct-read transport
    mutates per-GPU cache state and is excluded) and only for calls that
    are *provably* isolated and unobserved: no chunk callback, no fault
    machinery, no functional payloads, no tracing/metrics/causality, a
    quiescent fabric, and — the decisive guard — an **empty event queue**.
    With nothing queued, no kernel completion, serving arrival, or timer
    can possibly fire during the phase, so nothing can start concurrent
    traffic mid-window: the phase is isolated not just at its start but
    for its whole duration, which is what makes replaying a calibrated
    duration exact rather than approximate.  Everything else passes
    straight through to the event path.
    """

    def __init__(self, harness, comm):
        self.harness = harness
        self.comm = comm
        self.transport: Optional[str] = getattr(
            comm, "fastpath_transport", None)
        cfg = fastpath.config()
        self.validate_occurrences = max(1, cfg.validate_occurrences)
        self.enabled = (
            cfg.analytic_collectives
            and self.transport is not None
            and harness.fault_state is None
            and not harness.local_values
            and not current_metrics().enabled
            and not current_tracer().enabled
            and not current_causality().enabled)
        self._chunk_bytes = getattr(comm, "chunk_bytes", 0)
        # The table lives on the harness (one simulated node), so a run's
        # event count is a deterministic function of the run alone — a
        # process-global table would make it depend on what ran earlier in
        # the same process.  Within a harness, transport + chunking + op
        # fully determine an isolated phase's physics.
        self._table: Dict[tuple, _Signature] = harness.fastpath_signatures
        self._key_base = (self.transport, self._chunk_bytes)
        self._runs_started = 0
        # Per-harness fast-path accounting, aggregated by Harness.result().
        self.analytic_ops = 0
        self.events_elided = 0
        self.calibrations = 0
        self.validations = 0
        self.blacklists = 0
        self.analytic_disagreements = 0
        if self.enabled:
            harness.fastpath_comms.append(self)

    # -- CommImpl ------------------------------------------------------
    def run(self, kind, nbytes, on_complete, on_chunk=None):
        self._runs_started += 1
        if not self._eligible(on_chunk):
            self.comm.run(kind, nbytes, on_complete, on_chunk)
            return
        sig_key = self._key_base + (kind, nbytes)
        sig = self._table.get(sig_key)
        if sig is None:
            sig = self._table[sig_key] = _Signature()
        if sig.state == _BLACKLISTED:
            self.comm.run(kind, nbytes, on_complete, on_chunk)
        elif sig.state == _BYPASS:
            self._replay(sig, on_complete)
        else:
            self._observe(sig_key, sig, kind, nbytes, on_complete)

    def _eligible(self, on_chunk) -> bool:
        return (self.enabled
                and on_chunk is None
                and self.harness.fastpath_inflight == 0
                and self.harness.sim.pending() == 0
                and self.harness.network.quiescent())

    # -- Event-path observation (calibration + validation) -------------
    def _observe(self, sig_key, sig: _Signature, kind, nbytes,
                 on_complete) -> None:
        harness = self.harness
        sim = harness.sim
        links = harness.network.all_links()
        t0 = sim.now
        marks = [link.tracker.mark() for link in links]
        msg0 = _msg_ids.value
        ring0 = _ring_mod._run_ids.value
        nvls0 = _nvls_mod._run_ids.value
        events0 = sim.events_processed
        switches0 = [(sw.messages_handled, dict(sw.ops_seen))
                     for sw in harness.network.switches]
        started = self._runs_started
        harness.fastpath_inflight += 1

        def observed() -> None:
            harness.fastpath_inflight -= 1
            clean = (self._runs_started == started
                     and harness.network.quiescent())
            if not clean:
                # Another collective overlapped this one — the capture is
                # contaminated; try again on a later occurrence.
                on_complete()
                return
            if sig.state == _CALIBRATING:
                self._finish_calibration(
                    sig, kind, nbytes, t0, links, marks, msg0, ring0,
                    nvls0, events0, switches0)
            elif sig.state == _VALIDATING:
                self._finish_validation(sig, t0, msg0, ring0, nvls0)
            on_complete()

        self.comm.run(kind, nbytes, observed, None)

    def _finish_calibration(self, sig, kind, nbytes, t0, links, marks,
                            msg0, ring0, nvls0, events0, switches0) -> None:
        sim = self.harness.sim
        sig.duration = sim.now - t0
        sig.msg_delta = _msg_ids.value - msg0
        sig.ring_delta = _ring_mod._run_ids.value - ring0
        sig.nvls_delta = _nvls_mod._run_ids.value - nvls0
        sig.events_delta = sim.events_processed - events0
        sig.link_deltas = []
        for index, (link, mark) in enumerate(zip(links, marks)):
            delta = link.tracker.delta_since(mark, t0)
            if delta[0] or delta[1] or delta[2]:
                sig.link_deltas.append((index, delta))
        sig.switch_deltas = []
        for sw, (handled0, ops0) in zip(self.harness.network.switches,
                                        switches0):
            ops_delta = {op: count - ops0.get(op, 0)
                         for op, count in sw.ops_seen.items()
                         if count - ops0.get(op, 0)}
            sig.switch_deltas.append(
                (sw.messages_handled - handled0, ops_delta))
        estimate = phase_estimate(self.transport, kind, nbytes,
                                  self._chunk_bytes, self.harness.config)
        if sig.duration > 0:
            sig.analytic_rel_err = abs(estimate - sig.duration) / sig.duration
            if sig.analytic_rel_err > 0.25:
                self.analytic_disagreements += 1
        self.calibrations += 1
        sig.state = (_BYPASS if self.validate_occurrences <= 1
                     else _VALIDATING)

    def _finish_validation(self, sig, t0, msg0, ring0, nvls0) -> None:
        sim = self.harness.sim
        exact = (t0 + sig.duration == sim.now
                 and _msg_ids.value - msg0 == sig.msg_delta
                 and _ring_mod._run_ids.value - ring0 == sig.ring_delta
                 and _nvls_mod._run_ids.value - nvls0 == sig.nvls_delta)
        if not exact:
            sig.state = _BLACKLISTED
            self.blacklists += 1
            return
        self.validations += 1
        sig.validated += 1
        if sig.validated >= self.validate_occurrences - 1:
            sig.state = _BYPASS

    # -- Replay --------------------------------------------------------
    def _replay(self, sig: _Signature, on_complete) -> None:
        harness = self.harness
        sim = harness.sim
        t0 = sim.now
        harness.fastpath_inflight += 1
        self.analytic_ops += 1
        self.events_elided += sig.events_delta

        def complete() -> None:
            harness.fastpath_inflight -= 1
            _msg_ids.advance(sig.msg_delta)
            _ring_mod._run_ids.advance(sig.ring_delta)
            _nvls_mod._run_ids.advance(sig.nvls_delta)
            links = harness.network.all_links()
            for index, delta in sig.link_deltas:
                links[index].tracker.replay(delta, t0)
            for sw, (handled, ops) in zip(harness.network.switches,
                                          sig.switch_deltas):
                sw.messages_handled += handled
                for op, count in ops.items():
                    sw.ops_seen[op] += count
            on_complete()

        sim.schedule(sig.duration, complete)


def maybe_fastpath(harness, comm):
    """Wrap ``comm`` in a :class:`CollectiveFastPath` when the analytic
    layer could ever engage for it; otherwise return it unwrapped so
    disabled runs keep the exact seed call path."""
    if not fastpath.config().analytic_collectives:
        return comm
    if getattr(comm, "fastpath_transport", None) is None:
        return comm
    wrapper = CollectiveFastPath(harness, comm)
    return wrapper if wrapper.enabled else comm
