"""GPU-driven ring collectives (the NCCL-like non-NVLS transport).

Message-level simulation of the classic ring algorithms, with real
per-chunk pipelining:

* **ReduceScatter** — shard ``j`` starts at GPU ``(j+1) % K``, travels
  ``K-1`` hops accumulating each GPU's local contribution, and lands fully
  reduced at its home GPU ``j``.
* **AllGather** — shard ``j`` starts at its home ``j`` and travels ``K-1``
  hops, each GPU keeping a copy.
* **AllReduce** — ReduceScatter chained into AllGather per chunk (the
  bandwidth-optimal ``2(K-1)/K`` scheme).

Chunks of different shards flow concurrently, so the links pipeline exactly
as NCCL's ring does.  These transports serve the non-NVLS baselines
(CoCoNet, FuseLib, T3, LADM); per-chunk callbacks let overlap systems
trigger downstream work as chunks land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.errors import WorkloadError
from ..common.functional import combine_payloads
from ..faults.retry import RKEY_META
from ..gpu.gpu import Gpu
from ..interconnect.message import (CORRUPTED_META, Message, Op, gpu_node,
                                    is_corrupted)
from ..interconnect.network import Network
from ..obs import current_causality
from ..obs.causality import BARRIER_SYNC
from ..common.ids import IdAllocator

#: Run-id stream (staging addresses embed it); advanceable so the analytic
#: bypass leaves it exactly where the event path would have.
_run_ids = IdAllocator(1)

#: Ack-timeout stretch for ring hops: a chunk and its ack each cross two
#: links (GPU -> switch -> GPU) carrying ~256 KiB payloads through queues
#: that are deep at collective start, so the round trip dwarfs the
#: single-hop switch-ack path the base timeout is sized for.
RING_TIMEOUT_SCALE = 4.0

#: Per-chunk event callback: (shard, chunk, gpu) -> None.
ChunkCallback = Callable[[int, int, int], None]
#: Supplies a GPU's local contribution value for (shard, chunk).
LocalValueFn = Callable[[int, int, int], Any]


@dataclass
class _Run:
    kind: str
    chunk_bytes: int
    last_chunk_bytes: int
    chunks: int
    remaining: int
    on_complete: Callable[[], None]
    on_chunk: Optional[ChunkCallback]
    local_values: Optional[LocalValueFn]
    finish_time: float = -1.0


class RingCollective:
    """Driver executing ring collectives over the fabric."""

    def __init__(self, network: Network, gpus: List[Gpu],
                 chunk_bytes: int = 262144, fault_state=None):
        if chunk_bytes <= 0:
            raise WorkloadError(f"chunk_bytes must be positive")
        self.network = network
        self.gpus = gpus
        self.k = len(gpus)
        self.chunk_bytes = chunk_bytes
        self.sim = network.sim
        self._runs: Dict[int, _Run] = {}
        self._cz = current_causality()
        # Fault-injection state (repro.faults): when present, every chunk
        # hop is tracked by the ack/retransmit protocol — the receiver acks
        # each hop by rkey, deduplicates redeliveries, and discards
        # corrupted chunks unacknowledged so the sender retransmits.
        self._fault_state = fault_state
        for gpu in gpus:
            gpu.handlers.append(self._make_handler(gpu.index))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def reduce_scatter(self, nbytes: int, on_complete: Callable[[], None],
                       on_chunk: Optional[ChunkCallback] = None,
                       local_values: Optional[LocalValueFn] = None) -> int:
        """Start a ring ReduceScatter of a global ``nbytes`` tensor."""
        run_id, run = self._new_run("rs", nbytes, on_complete, on_chunk,
                                    local_values)
        run.remaining = self.k * run.chunks
        for shard in range(self.k):
            src = (shard + 1) % self.k
            for chunk in range(run.chunks):
                self._send(run_id, run, "rs", shard, chunk, step=0, src=src,
                           payload=self._local(run, src, shard, chunk))
        return run_id

    def all_gather(self, nbytes: int, on_complete: Callable[[], None],
                   on_chunk: Optional[ChunkCallback] = None,
                   local_values: Optional[LocalValueFn] = None) -> int:
        """Start a ring AllGather of a global ``nbytes`` tensor."""
        run_id, run = self._new_run("ag", nbytes, on_complete, on_chunk,
                                    local_values)
        run.remaining = self.k * run.chunks * (self.k - 1)
        for shard in range(self.k):
            for chunk in range(run.chunks):
                self._send(run_id, run, "ag", shard, chunk, step=0,
                           src=shard,
                           payload=self._local(run, shard, shard, chunk))
        return run_id

    def all_reduce(self, nbytes: int, on_complete: Callable[[], None],
                   on_chunk: Optional[ChunkCallback] = None,
                   local_values: Optional[LocalValueFn] = None) -> int:
        """Ring AllReduce: per-chunk ReduceScatter chained into AllGather."""
        run_id, run = self._new_run("ar", nbytes, on_complete, on_chunk,
                                    local_values)
        run.remaining = self.k * run.chunks * (self.k - 1)
        for shard in range(self.k):
            src = (shard + 1) % self.k
            for chunk in range(run.chunks):
                self._send(run_id, run, "rs", shard, chunk, step=0, src=src,
                           payload=self._local(run, src, shard, chunk))
        return run_id

    def finish_time(self, run_id: int) -> float:
        """Simulation time at which the run completed (-1 if running)."""
        return self._runs[run_id].finish_time

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_run(self, kind: str, nbytes: int, on_complete, on_chunk,
                 local_values) -> Tuple[int, _Run]:
        if nbytes <= 0 or nbytes % self.k:
            raise WorkloadError(
                f"collective size {nbytes} must be positive and divisible "
                f"by {self.k} GPUs")
        shard_bytes = nbytes // self.k
        chunks = -(-shard_bytes // self.chunk_bytes)
        last = shard_bytes - (chunks - 1) * self.chunk_bytes
        run = _Run(kind=kind, chunk_bytes=self.chunk_bytes,
                   last_chunk_bytes=last, chunks=chunks, remaining=0,
                   on_complete=on_complete, on_chunk=on_chunk,
                   local_values=local_values)
        run_id = _run_ids()
        self._runs[run_id] = run
        return run_id, run

    def _local(self, run: _Run, gpu: int, shard: int, chunk: int) -> Any:
        if run.local_values is None:
            return None
        return run.local_values(gpu, shard, chunk)

    def _bytes_of(self, run: _Run, chunk: int) -> int:
        return (run.last_chunk_bytes if chunk == run.chunks - 1
                else run.chunk_bytes)

    def _send(self, run_id: int, run: _Run, phase: str, shard: int,
              chunk: int, step: int, src: int, payload: Any) -> None:
        dst = (src + 1) % self.k
        meta = {"ring": run_id, "phase": phase, "shard": shard,
                "chunk": chunk, "step": step}
        state = self._fault_state
        if state is not None:
            key = ("ring", run_id, phase, shard, chunk, step)
            meta[RKEY_META] = key
        msg = Message(op=Op.STORE, src=gpu_node(src), dst=gpu_node(dst),
                      payload_bytes=self._bytes_of(run, chunk),
                      payload=payload, meta=meta)
        self.network.send_from_gpu(src, msg, stripe=chunk)
        if state is not None:
            def resend(attempt: int, meta=meta) -> None:
                # Fresh copy of the metadata: the original dict is shared
                # with the message on the wire, and the corruption fault
                # marks it in place — a retransmit must start clean or
                # every copy would be discarded on arrival too.
                clean = dict(meta, retry=attempt)
                clean.pop(CORRUPTED_META, None)
                copy = Message(op=Op.STORE, src=gpu_node(src),
                               dst=gpu_node(dst),
                               payload_bytes=self._bytes_of(run, chunk),
                               payload=payload, meta=clean)
                self.network.send_from_gpu(src, copy, stripe=chunk)

            state.retransmitter.track(key, resend,
                                      timeout_scale=RING_TIMEOUT_SCALE)

    def _make_handler(self, gpu_index: int) -> Callable[[Message], bool]:
        def handler(msg: Message) -> bool:
            state = self._fault_state
            if state is not None and msg.op is Op.CHUNK_ACK:
                key = msg.meta.get(RKEY_META)
                if isinstance(key, tuple) and key and key[0] == "ring":
                    state.retransmitter.ack(key)
                    return True
                return False
            if msg.op is not Op.STORE or "ring" not in msg.meta:
                return False
            if state is not None and RKEY_META in msg.meta:
                if is_corrupted(msg):
                    # Discard without acking: the sender's timer re-sends a
                    # clean copy of the same hop.
                    state.counters.bump("corrupt_discards")
                    return True
                key = msg.meta[RKEY_META]
                ack = Message(op=Op.CHUNK_ACK, src=gpu_node(gpu_index),
                              dst=msg.src, meta={RKEY_META: key})
                self.network.send_from_gpu(gpu_index, ack,
                                           stripe=msg.meta["chunk"])
                if not state.retransmitter.accept(("ring-rx",) + key):
                    return True          # duplicate delivery: re-acked only
            self._on_chunk(gpu_index, msg)
            return True
        return handler

    def _on_chunk(self, gpu: int, msg: Message) -> None:
        run_id = msg.meta["ring"]
        run = self._runs[run_id]
        phase, shard = msg.meta["phase"], msg.meta["shard"]
        chunk, step = msg.meta["chunk"], msg.meta["step"]
        if phase == "rs":
            acc = combine_payloads(msg.payload,
                                   self._local(run, gpu, shard, chunk))
            if step < self.k - 2:
                self._send(run_id, run, "rs", shard, chunk, step + 1,
                           src=gpu, payload=acc)
                return
            # Fully reduced at the shard's home GPU.
            if run.kind == "ar":
                # Chain straight into the AllGather phase (no barrier: the
                # home GPU keeps its reduced copy and starts circulating it).
                self._send(run_id, run, "ag", shard, chunk, step=0, src=gpu,
                           payload=acc)
                return
            self._finish_chunk(run, shard, chunk, gpu)
            return
        # AllGather hop: keep a copy, forward until the ring is covered.
        self._finish_chunk(run, shard, chunk, gpu)
        if step < self.k - 2:
            self._send(run_id, run, "ag", shard, chunk, step + 1, src=gpu,
                       payload=msg.payload)

    def _finish_chunk(self, run: _Run, shard: int, chunk: int,
                      gpu: int) -> None:
        if run.on_chunk is not None:
            run.on_chunk(shard, chunk, gpu)
        run.remaining -= 1
        if run.remaining == 0:
            run.finish_time = self.sim.now
            if self._cz.enabled:
                # Completion marker: the run finishes when its last chunk
                # lands — ambient cause is that delivery.
                now = self.sim.now
                self._cz.current = self._cz.node(
                    BARRIER_SYNC, now, now, f"ring {run.kind} complete",
                    parents=((self._cz.current, "dep"),))
            run.on_complete()
