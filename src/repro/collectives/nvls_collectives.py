"""NVLS-accelerated collectives (the paper's communication-centric baseline).

Built on the :class:`~repro.nvls.engine.NvlsEngine` switch primitives, these
drivers reproduce how NCCL uses NVLink SHARP:

* **ReduceScatter** — pull mode: the home GPU of each shard chunk issues a
  ``multimem.ld_reduce``; the switch gathers one contribution per peer,
  reduces in-flight, and returns one combined chunk.
* **AllGather** — push mode: each GPU ``multimem.st``-multicasts its shard
  chunks; the switch replicates to all peers.
* **AllReduce** — one-shot NVLS: each shard's home pulls the reduced chunk,
  then multicasts the result (ld_reduce chained into st per chunk).

Per-chunk callbacks let overlap systems (CoCoNet-NVLS, FuseLib-NVLS)
trigger downstream work as chunks land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.errors import WorkloadError
from ..common.functional import combine_payloads
from ..gpu.gpu import Gpu
from ..interconnect.message import Address, Message, Op, gpu_node
from ..interconnect.network import Network
from ..obs import current_causality
from ..obs.causality import BARRIER_SYNC
from ..common.ids import IdAllocator

#: Run-id stream (staging addresses embed it); advanceable so the analytic
#: bypass leaves it exactly where the event path would have.
_run_ids = IdAllocator(1)

#: Address-space region for collective staging buffers, disjoint from the
#: activation tensors allocated by repro.llm.tiling (tensor ids count up
#: from 1; collective runs count down from this base).
_COLLECTIVE_BASE = 1 << 55

ChunkCallback = Callable[[int, int, int], None]
LocalValueFn = Callable[[int, int, int], Any]


@dataclass
class _Run:
    kind: str
    chunk_bytes: int
    last_chunk_bytes: int
    chunks: int
    remaining: int
    on_complete: Callable[[], None]
    on_chunk: Optional[ChunkCallback]
    #: Per-shard chunk ids not yet pulled (in-flight window control).
    pending_pulls: Optional[Dict[int, List[int]]] = None
    finish_time: float = -1.0


class NvlsCollective:
    """Driver for NVLS multimem collectives."""

    def __init__(self, network: Network, gpus: List[Gpu],
                 chunk_bytes: int = 262144,
                 local_values: Optional[LocalValueFn] = None,
                 pull_window: int = 8):
        """``pull_window`` bounds in-flight ld_reduce chunks per shard so
        pull responses and the chained push traffic interleave on the links
        (NCCL keeps a similar FIFO depth in flight)."""
        if chunk_bytes <= 0:
            raise WorkloadError("chunk_bytes must be positive")
        if pull_window < 1:
            raise WorkloadError("pull_window must be >= 1")
        self.pull_window = pull_window
        self.network = network
        self.gpus = gpus
        self.k = len(gpus)
        self.chunk_bytes = chunk_bytes
        self.sim = network.sim
        self.local_values = local_values
        self._runs: Dict[int, _Run] = {}
        self._cz = current_causality()
        # Runs aborted by fault handling: late in-flight messages for them
        # are swallowed instead of crashing the run lookup.
        self._aborted: set = set()
        for gpu in gpus:
            gpu.handlers.append(self._make_handler(gpu.index))

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def abort(self, run_id: int) -> bool:
        """Abort an in-flight run cleanly (NVLS compute-unit fault).

        The run's completion callback never fires; whatever traffic is
        still in the fabric is discarded on arrival.  Returns False when
        the run already completed (nothing to abort).
        """
        run = self._runs.get(run_id)
        if run is None or run.remaining == 0:
            return False
        del self._runs[run_id]
        self._aborted.add(run_id)
        return True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def reduce_scatter(self, nbytes: int, on_complete: Callable[[], None],
                       on_chunk: Optional[ChunkCallback] = None) -> int:
        """Pull-mode NVLS ReduceScatter (multimem.ld_reduce per chunk)."""
        run_id, run = self._new_run("rs", nbytes, on_complete, on_chunk)
        run.remaining = self.k * run.chunks
        self._start_pulls(run_id, run)
        return run_id

    def all_gather(self, nbytes: int, on_complete: Callable[[], None],
                   on_chunk: Optional[ChunkCallback] = None) -> int:
        """Push-mode NVLS AllGather (multimem.st multicast per chunk)."""
        run_id, run = self._new_run("ag", nbytes, on_complete, on_chunk)
        run.remaining = self.k * run.chunks * (self.k - 1)
        for shard in range(self.k):
            for chunk in range(run.chunks):
                self._push(run_id, run, shard, chunk, payload=self._local(
                    shard, shard, chunk))
        return run_id

    def all_reduce(self, nbytes: int, on_complete: Callable[[], None],
                   on_chunk: Optional[ChunkCallback] = None) -> int:
        """One-shot NVLS AllReduce: ld_reduce chained into st per chunk."""
        run_id, run = self._new_run("ar", nbytes, on_complete, on_chunk)
        run.remaining = self.k * run.chunks * (self.k - 1)
        self._start_pulls(run_id, run)
        return run_id

    def _start_pulls(self, run_id: int, run: _Run) -> None:
        run.pending_pulls = {s: list(range(run.chunks))
                             for s in range(self.k)}
        for shard in range(self.k):
            for _ in range(min(self.pull_window, run.chunks)):
                self._pull_next(run_id, run, shard)

    def _pull_next(self, run_id: int, run: _Run, shard: int) -> None:
        pending = run.pending_pulls[shard]
        if pending:
            self._pull(run_id, run, shard, pending.pop(0))

    def finish_time(self, run_id: int) -> float:
        return self._runs[run_id].finish_time

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_run(self, kind: str, nbytes: int, on_complete,
                 on_chunk) -> Tuple[int, _Run]:
        if nbytes <= 0 or nbytes % self.k:
            raise WorkloadError(
                f"collective size {nbytes} must be positive and divisible "
                f"by {self.k} GPUs")
        shard_bytes = nbytes // self.k
        chunks = -(-shard_bytes // self.chunk_bytes)
        last = shard_bytes - (chunks - 1) * self.chunk_bytes
        run_id = _run_ids()
        run = _Run(kind=kind, chunk_bytes=self.chunk_bytes,
                   last_chunk_bytes=last, chunks=chunks, remaining=0,
                   on_complete=on_complete, on_chunk=on_chunk)
        self._runs[run_id] = run
        return run_id, run

    def _local(self, gpu: int, shard: int, chunk: int) -> Any:
        if self.local_values is None:
            return None
        return self.local_values(gpu, shard, chunk)

    def _bytes_of(self, run: _Run, chunk: int) -> int:
        return (run.last_chunk_bytes if chunk == run.chunks - 1
                else run.chunk_bytes)

    def _address(self, run_id: int, run: _Run, shard: int,
                 chunk: int) -> Address:
        """Staging-buffer address for a chunk, chosen so chunks stripe
        round-robin across switch planes (NCCL's per-channel striping —
        random hash placement would leave the busiest plane ~15% over
        average and stretch the collective by the same factor)."""
        from ..interconnect.routing import plane_for_address
        base = (_COLLECTIVE_BASE + run_id * (1 << 40) +
                (shard * run.chunks + chunk) * (run.chunk_bytes + (1 << 17)))
        planes = self.network.config.num_switches
        want = (shard * run.chunks + chunk) % planes
        for bump in range(64 * planes):
            addr = Address(shard, base + bump * 256)
            if plane_for_address(addr, planes) == want:
                return addr
        return Address(shard, base)   # pragma: no cover - hash is uniform

    def _pull(self, run_id: int, run: _Run, shard: int, chunk: int) -> None:
        """Home GPU of ``shard`` pulls the reduced chunk from its peers."""
        members = [g for g in range(self.k) if g != shard]
        msg = Message(op=Op.MULTIMEM_LD_REDUCE_REQ, src=gpu_node(shard),
                      dst=gpu_node(shard),
                      address=self._address(run_id, run, shard, chunk),
                      meta={"members": members,
                            "chunk_bytes": self._bytes_of(run, chunk),
                            "tag": ("nvls", run_id, shard, chunk)})
        self.network.send_from_gpu(shard, msg)

    def _push(self, run_id: int, run: _Run, shard: int, chunk: int,
              payload: Any) -> None:
        """Home GPU of ``shard`` multicasts a chunk to every peer."""
        msg = Message(op=Op.MULTIMEM_ST, src=gpu_node(shard),
                      dst=gpu_node(shard),
                      payload_bytes=self._bytes_of(run, chunk),
                      payload=payload,
                      address=self._address(run_id, run, shard, chunk),
                      meta={"members": list(range(self.k)),
                            "tag": ("nvls", run_id, shard, chunk)})
        self.network.send_from_gpu(shard, msg)

    def _make_handler(self, gpu_index: int) -> Callable[[Message], bool]:
        def handler(msg: Message) -> bool:
            tag = msg.meta.get("tag")
            if not (isinstance(tag, tuple) and tag and tag[0] == "nvls"):
                return False
            _, run_id, shard, chunk = tag
            run = self._runs.get(run_id)
            if run is None:
                if run_id in self._aborted:
                    return True          # stale traffic from an aborted run
                run = self._runs[run_id]  # unknown run: KeyError as before
            if msg.op is Op.MULTIMEM_LD_REDUCE_RESP:
                self._on_pulled(gpu_index, run_id, run, shard, chunk, msg)
                return True
            if msg.op is Op.STORE:
                self._finish_chunk(run, shard, chunk, gpu_index)
                return True
            return False
        return handler

    def _on_pulled(self, gpu: int, run_id: int, run: _Run, shard: int,
                   chunk: int, msg: Message) -> None:
        # The pulled value covers the peers; fold in the local partial.
        value = combine_payloads(msg.payload,
                                 self._local(gpu, shard, chunk))
        self._pull_next(run_id, run, shard)
        if run.kind == "ar":
            self._push(run_id, run, shard, chunk, payload=value)
            return
        self._finish_chunk(run, shard, chunk, gpu)

    def _finish_chunk(self, run: _Run, shard: int, chunk: int,
                      gpu: int) -> None:
        if run.on_chunk is not None:
            run.on_chunk(shard, chunk, gpu)
        run.remaining -= 1
        if run.remaining == 0:
            run.finish_time = self.sim.now
            if self._cz.enabled:
                # Completion marker: the run finishes when its last chunk
                # lands — ambient cause is that delivery.
                now = self.sim.now
                self._cz.current = self._cz.node(
                    BARRIER_SYNC, now, now, f"nvls {run.kind} complete",
                    parents=((self._cz.current, "dep"),))
            run.on_complete()
