"""Collective communication: ring (GPU-driven), NVLS, analytic references."""

from .nvls_collectives import NvlsCollective
from .reference import (
    nvls_allreduce_busbw_gbps,
    nvls_allreduce_time_ns,
    ring_all_gather_time_ns,
    ring_allreduce_time_ns,
    ring_reduce_scatter_time_ns,
)
from .ring import RingCollective

__all__ = [
    "NvlsCollective",
    "RingCollective",
    "nvls_allreduce_busbw_gbps",
    "nvls_allreduce_time_ns",
    "ring_all_gather_time_ns",
    "ring_allreduce_time_ns",
    "ring_reduce_scatter_time_ns",
]
