"""Named counters, gauges, and log-scale histograms.

A :class:`MetricsRegistry` hands out instrument objects that components
hold onto and update directly (no name lookup on the hot path).  Snapshots
are plain dicts with sorted keys, so two same-seed runs serialize to
byte-identical JSON.

The :class:`NullMetrics` registry returned when metrics are disabled hands
out a single shared no-op instrument; instrumented code additionally
guards hot-path updates with ``if registry.enabled:`` so a disabled run
does not even construct the update arguments.
"""

from __future__ import annotations

import json
import math
import warnings
from typing import Dict, Iterable, List, Optional


class EmptyDistributionWarning(RuntimeWarning):
    """A quantile was requested from an empty histogram or sketch.

    The query returns ``nan`` instead of raising so report pipelines keep
    running (an idle window legitimately has no samples); the warning names
    the instrument so a systematically-empty distribution is still visible.
    """


#: Instrument names that already warned about an empty quantile this
#: process.  Keyed by *name*, not instance — merge rollups rebuild fresh
#: ``Histogram`` objects per envelope (``from_state``/``merge``), so an
#: instance-keyed guard would still warn once per merged replica.
_EMPTY_WARNED: set = set()


def reset_empty_distribution_warnings() -> None:
    """Re-arm the one-warning-per-instrument guard (test isolation)."""
    _EMPTY_WARNED.clear()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Last-set value, with the peak retained."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.peak:
            self.peak = v


class Histogram:
    """Power-of-two bucketed distribution (log-scale).

    Bucket ``k`` counts observations with ``2^(k-1) < v <= 2^k`` (bucket 0
    holds ``v <= 1``).  Log-scale buckets span the nanosecond-to-millisecond
    range the simulator produces (merge waits, queueing delays, TB
    latencies) in ~40 buckets.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: Dict[int, int] = {}

    def record(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        k = 0 if v <= 1.0 else math.ceil(math.log2(v))
        self._buckets[k] = self._buckets.get(k, 0) + 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        Log2-bucket resolution (within 2x of the true value), which is
        enough for the p95-tail reporting the serving experiments do; the
        exact extremes are available as ``min``/``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            # Warn once per instrument name per process: many-replica
            # fleet rollups legitimately query rebuilt-empty windows by
            # the hundreds, and one line carries the same signal.
            if self.name not in _EMPTY_WARNED:
                _EMPTY_WARNED.add(self.name)
                warnings.warn(
                    f"quantile({q:g}) of empty histogram {self.name!r} "
                    f"is nan (further empty-quantile warnings for this "
                    f"instrument are suppressed)",
                    EmptyDistributionWarning, stacklevel=2)
            return math.nan
        rank = q * self.count
        seen = 0
        for k in sorted(self._buckets):
            seen += self._buckets[k]
            if seen >= rank:
                return min(float(2 ** k), self.max)
        return self.max

    def buckets(self) -> Dict[str, int]:
        """``{"le_2^k": count}`` with keys in ascending bucket order."""
        return {f"le_2^{k}": self._buckets[k]
                for k in sorted(self._buckets)}

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean(),
            "buckets": self.buckets(),
        }

    def state(self) -> Dict[str, object]:
        """Full mergeable state (raw bucket indices, JSON-serializable).

        Unlike :meth:`summary` — a human-facing projection — the state
        round-trips through :meth:`from_state` losslessly and two states
        combine associatively via :func:`merge_histogram_states`, which is
        what lets matrix workers ship distributions (not just scalar
        summaries) back across the process boundary.
        """
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): self._buckets[k]
                        for k in sorted(self._buckets)},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        """Rebuild a live histogram from :meth:`state` output."""
        h = cls(str(state["name"]))
        h.count = int(state["count"])
        h.total = float(state["sum"])
        if h.count:
            h.min = float(state["min"])
            h.max = float(state["max"])
        h._buckets = {int(k): int(n)
                      for k, n in dict(state["buckets"]).items()}
        return h


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    peak = 0.0
    count = 0

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def record(self, v: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, volatile: bool = False) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


class MetricsRegistry:
    """Live registry of named instruments (get-or-create semantics)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Names of wall-clock-dependent gauges (e.g. engine throughput in
        # events per *wall* second): queryable live, but excluded from
        # snapshots so same-seed runs stay byte-identical.
        self._volatile: set = set()

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str, volatile: bool = False) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        if volatile:
            self._volatile.add(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def histogram_states(self) -> List[Dict[str, object]]:
        """Full state of every histogram, sorted by name (see
        :meth:`Histogram.state`)."""
        return [self._histograms[n].state()
                for n in sorted(self._histograms)]

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serializable state of every instrument, keys sorted.

        Volatile (wall-clock-dependent) gauges are omitted: snapshots are
        part of the byte-identity contract between same-seed runs.
        """
        return {
            "counters": {n: self._counters[n].value
                         for n in sorted(self._counters)},
            "gauges": {n: {"value": g.value, "peak": g.peak}
                       for n, g in sorted(self._gauges.items())
                       if n not in self._volatile},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def merge_histogram_states(states: Iterable[Dict[str, object]]
                           ) -> Dict[str, object]:
    """Combine histogram states (:meth:`Histogram.state`) into one.

    Associative and commutative up to float-summation order on ``sum``
    (counts and buckets are integers, so they merge exactly); merging an
    empty iterable yields an empty unnamed state.  All inputs should
    describe the same logical instrument — the first non-empty name wins.
    """
    name = ""
    count = 0
    total = 0.0
    lo = math.inf
    hi = -math.inf
    buckets: Dict[int, int] = {}
    for state in states:
        if not name:
            name = str(state.get("name", ""))
        n = int(state["count"])
        if not n:
            continue
        count += n
        total += float(state["sum"])
        lo = min(lo, float(state["min"]))
        hi = max(hi, float(state["max"]))
        for k, c in dict(state["buckets"]).items():
            k = int(k)
            buckets[k] = buckets.get(k, 0) + int(c)
    return {
        "name": name,
        "count": count,
        "sum": total,
        "min": lo if count else None,
        "max": hi if count else None,
        "buckets": {str(k): buckets[k] for k in sorted(buckets)},
    }
