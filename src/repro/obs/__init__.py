"""Unified observability layer: tracing, metrics, self-profiling.

Three cooperating pieces, all off by default and zero-cost when off:

* :class:`Tracer` — structured spans/instants/counters on per-component
  tracks, exportable to Chrome/Perfetto JSON (:mod:`.perfetto`).
* :class:`MetricsRegistry` — named counters, gauges, and log-scale
  histograms with deterministic snapshots (:mod:`.metrics`).
* :class:`SimProfiler` — host-time hotspot profile of the simulator's own
  event loop (:mod:`.profiler`).

Components capture the *current* tracer/metrics at construction time via
:func:`current_tracer` / :func:`current_metrics`, so :func:`install` must
run before the harness is built (the CLI and tests do).  The defaults are
null objects whose ``enabled`` flag is False; instrumented hot paths guard
on that flag and therefore cost one attribute read when observability is
off — see DESIGN.md, "Observability".
"""

from __future__ import annotations

from typing import Optional

from .causality import CausalityRecorder, NullCausality
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NullMetrics)
from .profiler import SimProfiler
from .tracer import NullTracer, Tracer

__all__ = [
    "CausalityRecorder", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NullCausality", "NullMetrics", "NullTracer", "SimProfiler", "Tracer",
    "current_tracer", "current_metrics", "current_profiler",
    "current_causality", "install", "reset",
]

_NULL_TRACER = NullTracer()
_NULL_METRICS = NullMetrics()
_NULL_CAUSALITY = NullCausality()

_tracer: NullTracer = _NULL_TRACER
_metrics: NullMetrics = _NULL_METRICS
_profiler: Optional[SimProfiler] = None
_causality: NullCausality = _NULL_CAUSALITY


def current_tracer():
    """The installed tracer (a :class:`NullTracer` when tracing is off)."""
    return _tracer


def current_metrics():
    """The installed registry (a :class:`NullMetrics` when metrics are off)."""
    return _metrics


def current_profiler() -> Optional[SimProfiler]:
    """The installed profiler, or None when profiling is off."""
    return _profiler


def current_causality():
    """The installed causal recorder (:class:`NullCausality` when off)."""
    return _causality


def install(tracer=None, metrics=None, profiler=None,
            causality=None) -> None:
    """Install observability sinks; call *before* building a harness.

    Only the arguments given are replaced, so tracing can be enabled
    without metrics and vice versa.
    """
    global _tracer, _metrics, _profiler, _causality
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    if profiler is not None:
        _profiler = profiler
    if causality is not None:
        _causality = causality


def reset() -> None:
    """Restore the null defaults (used by tests and between CLI runs)."""
    global _tracer, _metrics, _profiler, _causality
    _tracer = _NULL_TRACER
    _metrics = _NULL_METRICS
    _profiler = None
    _causality = _NULL_CAUSALITY
