"""Unified observability layer: tracing, metrics, self-profiling.

Cooperating pieces, all off by default and zero-cost when off:

* :class:`Tracer` — structured spans/instants/counters on per-component
  tracks, exportable to Chrome/Perfetto JSON (:mod:`.perfetto`).
* :class:`MetricsRegistry` — named counters, gauges, and log-scale
  histograms with deterministic snapshots (:mod:`.metrics`).
* :class:`SimProfiler` — host-time hotspot profile of the simulator's own
  event loop (:mod:`.profiler`).
* :class:`CausalityRecorder` — causal event DAG behind ``repro explain``
  (:mod:`.causality`).
* :class:`TimeSeriesSink` — fixed sim-time windows of counters/gauges/
  quantile sketches for SLO reporting (:mod:`.timeseries`).
* :class:`RequestLog` — per-request span records for the serving
  workload (:mod:`.requests`).
* :class:`RunLedger` — append-only cross-run record of completed
  simulations behind ``repro ledger`` (:mod:`.ledger`).  Unlike the
  sinks above it is activated ambiently via the ``REPRO_LEDGER``
  environment variable (so matrix pool workers inherit it), not via
  :func:`install`.

Components capture the *current* sinks at construction time via the
``current_*`` accessors, so :func:`install` must run before the harness
is built (the CLI and tests do).  The defaults are null objects whose
``enabled`` flag is False; instrumented hot paths guard on that flag and
therefore cost one attribute read when observability is off — see
DESIGN.md, "Observability".
"""

from __future__ import annotations

from typing import Optional

from .causality import CausalityRecorder, NullCausality
from .ledger import LEDGER_ENV, LEDGER_SCHEMA, NullLedger, RunLedger, \
    ledger_from_env
from .metrics import (Counter, EmptyDistributionWarning, Gauge, Histogram,
                      MetricsRegistry, NullMetrics, merge_histogram_states,
                      reset_empty_distribution_warnings)
from .profiler import SimProfiler
from .requests import NullRequestLog, RequestLog
from .timeseries import NullTimeSeries, TimeSeriesSink
from .tracer import NullTracer, Tracer

__all__ = [
    "CausalityRecorder", "Counter", "EmptyDistributionWarning", "Gauge",
    "Histogram", "LEDGER_ENV", "LEDGER_SCHEMA", "MetricsRegistry",
    "NullCausality", "NullLedger", "NullMetrics", "NullRequestLog",
    "NullTimeSeries", "NullTracer", "RequestLog", "RunLedger",
    "SimProfiler", "TimeSeriesSink", "Tracer", "current_tracer",
    "current_metrics", "current_profiler", "current_causality",
    "current_timeseries", "current_request_log", "install",
    "ledger_from_env", "merge_histogram_states", "reset",
    "reset_empty_distribution_warnings",
]

_NULL_TRACER = NullTracer()
_NULL_METRICS = NullMetrics()
_NULL_CAUSALITY = NullCausality()
_NULL_TIMESERIES = NullTimeSeries()
_NULL_REQUEST_LOG = NullRequestLog()

_tracer: NullTracer = _NULL_TRACER
_metrics: NullMetrics = _NULL_METRICS
_profiler: Optional[SimProfiler] = None
_causality: NullCausality = _NULL_CAUSALITY
_timeseries: NullTimeSeries = _NULL_TIMESERIES
_request_log: NullRequestLog = _NULL_REQUEST_LOG


def current_tracer():
    """The installed tracer (a :class:`NullTracer` when tracing is off)."""
    return _tracer


def current_metrics():
    """The installed registry (a :class:`NullMetrics` when metrics are off)."""
    return _metrics


def current_profiler() -> Optional[SimProfiler]:
    """The installed profiler, or None when profiling is off."""
    return _profiler


def current_causality():
    """The installed causal recorder (:class:`NullCausality` when off)."""
    return _causality


def current_timeseries():
    """The installed windowed sink (:class:`NullTimeSeries` when off)."""
    return _timeseries


def current_request_log():
    """The installed request log (:class:`NullRequestLog` when off)."""
    return _request_log


def install(tracer=None, metrics=None, profiler=None, causality=None,
            timeseries=None, request_log=None) -> None:
    """Install observability sinks; call *before* building a harness.

    Only the arguments given are replaced, so tracing can be enabled
    without metrics and vice versa.
    """
    global _tracer, _metrics, _profiler, _causality, _timeseries, \
        _request_log
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    if profiler is not None:
        _profiler = profiler
    if causality is not None:
        _causality = causality
    if timeseries is not None:
        _timeseries = timeseries
    if request_log is not None:
        _request_log = request_log


def reset() -> None:
    """Restore the null defaults (used by tests and between CLI runs)."""
    global _tracer, _metrics, _profiler, _causality, _timeseries, \
        _request_log
    _tracer = _NULL_TRACER
    _metrics = _NULL_METRICS
    _profiler = None
    _causality = _NULL_CAUSALITY
    _timeseries = _NULL_TIMESERIES
    _request_log = _NULL_REQUEST_LOG
