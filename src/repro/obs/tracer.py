"""Structured event tracer with Chrome/Perfetto-compatible semantics.

The tracer records three shapes of data, all stamped with *simulation* time
(never wall-clock, so traces are byte-identical across same-seed runs):

* **spans** — ``begin``/``end`` pairs on a *track*; nested spans on one
  track must close in LIFO order (TB phases do).  Overlapping lifetimes on
  one track (merge-table entries, NVLS sessions) use **async spans**
  (``async_begin``/``async_end``) keyed by an id instead.
* **instants** — point events (a message enqueued, a switch dispatch).
* **counters** — sampled numeric series (queue depth over time).

A *track* is a (process, thread) pair registered once via :meth:`track`;
the export maps processes to Perfetto process rows (one per GPU, switch,
or fabric) and threads to the rows inside them (one per SM slot, switch
port, or merge-table bank).

Zero-cost-when-disabled contract: hot paths hold a reference to the
module-level tracer and guard every call with ``if tracer.enabled:`` — the
:class:`NullTracer` never allocates, so a disabled run pays one attribute
read per potential event (see DESIGN.md, "Observability").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class NullTracer:
    """No-op stand-in installed by default; every method does nothing.

    ``enabled`` is False so instrumented code can skip argument
    construction entirely instead of calling into the null object.
    """

    enabled = False
    __slots__ = ()

    def track(self, process: str, thread: str) -> int:
        return 0

    def begin(self, track: int, name: str, ts_ns: float,
              cat: str = "", args: Optional[dict] = None) -> int:
        return 0

    def end(self, handle: int, ts_ns: float) -> None:
        pass

    def instant(self, track: int, name: str, ts_ns: float,
                cat: str = "", args: Optional[dict] = None) -> None:
        pass

    def counter(self, track: int, name: str, ts_ns: float,
                value: float) -> None:
        pass

    def async_begin(self, track: int, name: str, aid: int, ts_ns: float,
                    cat: str = "", args: Optional[dict] = None) -> None:
        pass

    def async_end(self, track: int, name: str, aid: int, ts_ns: float,
                  cat: str = "", args: Optional[dict] = None) -> None:
        pass

    def flow_start(self, track: int, name: str, fid: int, ts_ns: float,
                   cat: str = "") -> None:
        pass

    def flow_end(self, track: int, name: str, fid: int, ts_ns: float,
                 cat: str = "") -> None:
        pass

    def flush(self, ts_ns: float) -> int:
        return 0


class Tracer:
    """Recording tracer; see the module docstring for the data model."""

    enabled = True

    def __init__(self) -> None:
        # (process, thread) -> track index; registration order fixes the
        # pid/tid numbering, which keeps exports deterministic.
        self._tracks: Dict[Tuple[str, str], int] = {}
        self._track_names: List[Tuple[str, str]] = []
        self._events: List[dict] = []
        # handle -> (track, name, cat, args, start_ns); insertion order is
        # open order, which flush() uses to report stragglers stably.
        self._open: Dict[int, Tuple[int, str, str, Optional[dict], float]] = {}
        self._next_handle = 0

    # ------------------------------------------------------------------
    # Track registry
    # ------------------------------------------------------------------
    def track(self, process: str, thread: str) -> int:
        """Register (or look up) the track for a process/thread pair."""
        key = (process, thread)
        idx = self._tracks.get(key)
        if idx is None:
            idx = len(self._track_names)
            self._tracks[key] = idx
            self._track_names.append(key)
        return idx

    def tracks(self) -> List[Tuple[str, str]]:
        """Registered (process, thread) pairs in registration order."""
        return list(self._track_names)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, track: int, name: str, ts_ns: float,
              cat: str = "", args: Optional[dict] = None) -> int:
        """Open a span; returns a handle for :meth:`end`."""
        handle = self._next_handle
        self._next_handle += 1
        self._open[handle] = (track, name, cat, args, ts_ns)
        return handle

    def end(self, handle: int, ts_ns: float) -> None:
        """Close a span opened by :meth:`begin` (emits one complete event).

        An unknown or already-closed handle is an instrumentation bug in
        the caller; name the handle and what *is* open instead of letting
        a bare ``KeyError`` escape with no context.
        """
        entry = self._open.pop(handle, None)
        if entry is None:
            open_names = sorted({rec[1] for rec in self._open.values()})
            raise ValueError(
                f"Tracer.end: handle {handle} is unknown or already "
                f"closed; open spans: {open_names or '(none)'}")
        track, name, cat, args, start = entry
        self._emit_complete(track, name, cat, args, start, ts_ns)

    def instant(self, track: int, name: str, ts_ns: float,
                cat: str = "", args: Optional[dict] = None) -> None:
        ev = {"ph": "i", "name": name, "ts": ts_ns / 1e3, "track": track,
              "s": "t"}
        if cat:
            ev["cat"] = cat
        if args:
            ev["args"] = args
        self._events.append(ev)

    def counter(self, track: int, name: str, ts_ns: float,
                value: float) -> None:
        self._events.append({"ph": "C", "name": name, "ts": ts_ns / 1e3,
                             "track": track, "args": {"value": value}})

    def async_begin(self, track: int, name: str, aid: int, ts_ns: float,
                    cat: str = "", args: Optional[dict] = None) -> None:
        ev = {"ph": "b", "name": name, "ts": ts_ns / 1e3, "track": track,
              "id": aid, "cat": cat or "async"}
        if args:
            ev["args"] = args
        self._events.append(ev)

    def async_end(self, track: int, name: str, aid: int, ts_ns: float,
                  cat: str = "", args: Optional[dict] = None) -> None:
        ev = {"ph": "e", "name": name, "ts": ts_ns / 1e3, "track": track,
              "id": aid, "cat": cat or "async"}
        if args:
            ev["args"] = args
        self._events.append(ev)

    def flow_start(self, track: int, name: str, fid: int, ts_ns: float,
                   cat: str = "") -> None:
        """Open a flow arrow (Perfetto renders it from here to the
        matching :meth:`flow_end` with the same id)."""
        self._events.append({"ph": "s", "name": name, "ts": ts_ns / 1e3,
                             "track": track, "id": fid,
                             "cat": cat or "flow"})

    def flow_end(self, track: int, name: str, fid: int, ts_ns: float,
                 cat: str = "") -> None:
        """Terminate a flow arrow started by :meth:`flow_start`."""
        self._events.append({"ph": "f", "name": name, "ts": ts_ns / 1e3,
                             "track": track, "id": fid, "bp": "e",
                             "cat": cat or "flow"})

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def flush(self, ts_ns: float) -> int:
        """Close every still-open span at ``ts_ns``, marked unterminated.

        Returns the number of spans flushed.  Mirrors
        :meth:`repro.metrics.timeline.Timeline.flush`: a run that tears
        down with work in flight keeps those spans in the trace instead of
        silently dropping them.
        """
        flushed = 0
        for handle in sorted(self._open):
            track, name, cat, args, start = self._open[handle]
            merged = dict(args) if args else {}
            merged["unterminated"] = True
            self._emit_complete(track, name, cat, merged, start,
                                max(ts_ns, start))
            flushed += 1
        self._open.clear()
        return flushed

    def open_spans(self) -> int:
        """Spans begun but not yet ended (0 after :meth:`flush`)."""
        return len(self._open)

    def events(self) -> List[dict]:
        """Recorded events (internal form; see :mod:`.perfetto` to export)."""
        return list(self._events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _emit_complete(self, track: int, name: str, cat: str,
                       args: Optional[dict], start_ns: float,
                       end_ns: float) -> None:
        ev = {"ph": "X", "name": name, "ts": start_ns / 1e3,
              "dur": (end_ns - start_ns) / 1e3, "track": track}
        if cat:
            ev["cat"] = cat
        if args:
            ev["args"] = args
        self._events.append(ev)
