"""Per-request span records for the serving workload.

A :class:`RequestRecord` partitions one request's lifetime — arrival to
completion — into contiguous, non-overlapping **phases**:

* ``queue``   — waiting for admission (including re-admission after an
  eviction); inserted automatically whenever the next recorded phase
  starts after the previous one ended.
* ``prefill`` — an iteration that (re-)processed the request's prompt
  chunk through the prefill path.
* ``decode``  — an iteration that emitted one decode token.

The phases tile ``[arrival_ns, finish_ns]`` exactly, so their durations
sum to the request's end-to-end latency — the invariant the per-request
Perfetto tracks and the report's drill-down tables rely on.

Each phase additionally carries a **category breakdown**: its wall time
attributed to the four coarse groups below, derived from the PR-4
causality categories (:mod:`repro.obs.causality`) of the causal nodes
recorded while the phase ran.  Queue phases are charged entirely to
``queue``; iteration phases split proportionally to the clipped busy
time per group (see :func:`category_shares`) — deterministic because the
causal DAG is.

Zero-cost contract: the default :class:`NullRequestLog` has
``enabled = False`` and hands out one shared no-op record; recording
creates no simulation events and draws no randomness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .causality import (BARRIER_SYNC, GEMM_COMPUTE, LINK_SERIALIZATION,
                        QUEUEING_WAIT, RETRANSMIT, SWITCH_MERGE,
                        VECTOR_COMPUTE)

#: Phase kinds, in report order.
PHASE_QUEUE = "queue"
PHASE_PREFILL = "prefill"
PHASE_DECODE = "decode"
PHASE_KINDS: Tuple[str, ...] = (PHASE_QUEUE, PHASE_PREFILL, PHASE_DECODE)

#: Coarse attribution groups, in report order.
GROUPS: Tuple[str, ...] = ("compute", "comm", "queue", "fault")

#: PR-4 causality category -> coarse group.
GROUP_OF_CATEGORY: Dict[str, str] = {
    GEMM_COMPUTE: "compute",
    VECTOR_COMPUTE: "compute",
    LINK_SERIALIZATION: "comm",
    SWITCH_MERGE: "comm",
    QUEUEING_WAIT: "queue",
    BARRIER_SYNC: "queue",
    RETRANSMIT: "fault",
}

#: Slack absorbing the ``schedule_at`` float round-trip (the batcher
#: releases arrivals with the same 1e-3 ns tolerance).
_EPS_NS = 1e-3


def category_shares(cz, start_index: int, lo_ns: float,
                    hi_ns: float) -> Dict[str, float]:
    """Attribute the wall interval ``[lo, hi]`` to the coarse groups.

    Walks the causal nodes recorded since ``start_index`` (the recorder's
    length when the interval began), clips each node to the interval, and
    splits the wall time proportionally to per-group busy time.  Nodes run
    in parallel across GPUs/links, so busy sums exceed wall time — the
    proportional split keeps the result an exact partition of ``hi - lo``.
    An interval with no attributable work (or causality disabled upstream)
    is charged entirely to ``queue``.
    """
    dur = hi_ns - lo_ns
    if dur <= 0:
        return {}
    busy = {g: 0.0 for g in GROUPS}
    for node in cz.nodes[start_index:]:
        overlap = min(node.end_ns, hi_ns) - max(node.start_ns, lo_ns)
        if overlap > 0:
            group = GROUP_OF_CATEGORY.get(node.category)
            if group is not None:
                busy[group] += overlap
    total = sum(busy.values())
    if total <= 0:
        return {"queue": dur}
    return {g: dur * busy[g] / total for g in GROUPS if busy[g] > 0}


class Phase:
    """One contiguous slice of a request's lifetime."""

    __slots__ = ("kind", "start_ns", "end_ns", "tokens", "categories")

    def __init__(self, kind: str, start_ns: float, end_ns: float,
                 tokens: int = 0,
                 categories: Optional[Dict[str, float]] = None):
        self.kind = kind
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.tokens = tokens
        self.categories = categories or {}

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Phase({self.kind} [{self.start_ns:.1f}, "
                f"{self.end_ns:.1f}] tokens={self.tokens})")


class RequestRecord:
    """Span record for one request; phases tile arrival -> finish."""

    __slots__ = ("rid", "arrival_ns", "prompt_len", "output_len", "phases",
                 "events", "evictions", "first_token_ns", "finish_ns",
                 "_cursor")

    def __init__(self, rid: int, arrival_ns: float, prompt_len: int,
                 output_len: int):
        self.rid = rid
        self.arrival_ns = arrival_ns
        self.prompt_len = prompt_len
        self.output_len = output_len
        self.phases: List[Phase] = []
        self.events: List[Tuple[str, float]] = []
        self.evictions = 0
        self.first_token_ns: Optional[float] = None
        self.finish_ns: Optional[float] = None
        self._cursor = arrival_ns

    # -- recording ------------------------------------------------------
    def phase(self, kind: str, start_ns: float, end_ns: float,
              tokens: int = 0,
              categories: Optional[Dict[str, float]] = None) -> None:
        """Append one phase; a gap before it becomes a ``queue`` phase.

        Starts may precede the cursor by at most the scheduler's float
        slack (clamped); anything larger is an instrumentation bug.
        """
        if start_ns < self._cursor - _EPS_NS:
            raise ValueError(
                f"request {self.rid}: phase {kind!r} starts at "
                f"{start_ns} before the recorded timeline reached "
                f"{self._cursor}")
        start_ns = max(start_ns, self._cursor)
        if end_ns < start_ns:
            raise ValueError(
                f"request {self.rid}: phase {kind!r} ends at {end_ns} "
                f"before it starts at {start_ns}")
        if start_ns > self._cursor:
            gap = start_ns - self._cursor
            self.phases.append(Phase(PHASE_QUEUE, self._cursor, start_ns,
                                     categories={"queue": gap}))
        self.phases.append(Phase(kind, start_ns, end_ns, tokens, categories))
        self._cursor = end_ns

    def event(self, name: str, t_ns: float) -> None:
        """Point event on this request's timeline (e.g. ``evicted``)."""
        self.events.append((name, t_ns))
        if name == "evicted":
            self.evictions += 1

    def close(self, finish_ns: float,
              first_token_ns: Optional[float],
              pad: bool = False) -> None:
        """Seal the record; the phases must have reached ``finish_ns``.

        ``pad=True`` fills any remaining tail with a ``queue`` phase
        first — for requests terminated *outside* an execution phase
        (shed by admission control, aborted over retry budget), whose
        timeline legitimately ends waiting.
        """
        if pad and finish_ns > self._cursor + _EPS_NS:
            gap = finish_ns - self._cursor
            self.phases.append(Phase(PHASE_QUEUE, self._cursor, finish_ns,
                                     categories={"queue": gap}))
            self._cursor = finish_ns
        if abs(finish_ns - self._cursor) > _EPS_NS:
            raise ValueError(
                f"request {self.rid}: closed at {finish_ns} but phases "
                f"end at {self._cursor}")
        self.finish_ns = finish_ns
        self.first_token_ns = first_token_ns

    # -- queries --------------------------------------------------------
    @property
    def e2e_ns(self) -> float:
        return (self.finish_ns - self.arrival_ns
                if self.finish_ns is not None else 0.0)

    def phase_total_ns(self, kind: str) -> float:
        return sum(p.duration_ns for p in self.phases if p.kind == kind)

    def category_total_ns(self, group: str) -> float:
        return sum(p.categories.get(group, 0.0) for p in self.phases)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (deterministic key order via sort)."""
        return {
            "rid": self.rid,
            "arrival_ns": self.arrival_ns,
            "prompt_len": self.prompt_len,
            "output_len": self.output_len,
            "first_token_ns": self.first_token_ns,
            "finish_ns": self.finish_ns,
            "evictions": self.evictions,
            "phases": [{
                "kind": p.kind,
                "start_ns": p.start_ns,
                "end_ns": p.end_ns,
                "tokens": p.tokens,
                "categories": {g: p.categories[g]
                               for g in sorted(p.categories)},
            } for p in self.phases],
            "events": [[name, t] for name, t in self.events],
        }


class _NullRecord:
    """Shared no-op record handed out by the disabled log."""

    __slots__ = ()
    phases: List[Phase] = []
    events: List[Tuple[str, float]] = []
    evictions = 0

    def phase(self, kind: str, start_ns: float, end_ns: float,
              tokens: int = 0, categories=None) -> None:
        pass

    def event(self, name: str, t_ns: float) -> None:
        pass

    def close(self, finish_ns: float, first_token_ns=None) -> None:
        pass


_NULL_RECORD = _NullRecord()


class NullRequestLog:
    """Disabled log: every record is the shared no-op."""

    enabled = False
    __slots__ = ()

    def open(self, rid: int, arrival_ns: float, prompt_len: int,
             output_len: int) -> _NullRecord:
        return _NULL_RECORD

    def get(self, rid: int) -> _NullRecord:
        return _NULL_RECORD

    def records(self) -> List[RequestRecord]:
        return []


class RequestLog:
    """Live per-request span log, keyed by request id."""

    enabled = True

    def __init__(self) -> None:
        self._records: Dict[int, RequestRecord] = {}

    def open(self, rid: int, arrival_ns: float, prompt_len: int,
             output_len: int) -> RequestRecord:
        if rid in self._records:
            raise ValueError(f"request {rid} already has an open record")
        rec = RequestRecord(rid, arrival_ns, prompt_len, output_len)
        self._records[rid] = rec
        return rec

    def get(self, rid: int) -> RequestRecord:
        return self._records[rid]

    def records(self) -> List[RequestRecord]:
        """All records, sorted by request id."""
        return [self._records[rid] for rid in sorted(self._records)]

    def snapshot(self) -> List[Dict[str, object]]:
        return [rec.to_dict() for rec in self.records()]
