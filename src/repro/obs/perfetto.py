"""Chrome ``trace_event`` JSON export — loadable in ``ui.perfetto.dev``.

The :class:`~.tracer.Tracer` records events against abstract *tracks*;
this module resolves tracks to (pid, tid) pairs, prepends the metadata
events that name them, and serializes the Chrome JSON object format:
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Determinism: pids/tids are assigned in track registration order, event
order is recording order, and serialization sorts keys — so two same-seed
runs write byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .tracer import Tracer

#: Phases the validator accepts (the subset the Tracer emits, plus
#: metadata).
_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "b", "e", "n", "M", "s", "f"}


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Resolve a Tracer's recording into a Chrome trace JSON object."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[dict] = []
    for process, thread in tracer.tracks():
        if process not in pids:
            pid = len(pids) + 1
            pids[process] = pid
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": process}})
        pid = pids[process]
        key = (process, thread)
        if key not in tids:
            tid = len(tids) + 1
            tids[key] = tid
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": thread}})

    track_ids = [(pids[p], tids[(p, t)]) for p, t in tracer.tracks()]
    for ev in tracer.events():
        out = dict(ev)
        pid, tid = track_ids[out.pop("track")]
        out["pid"] = pid
        out["tid"] = tid
        if out["ph"] in ("b", "e"):
            # Async ids are namespaced per process in the Chrome format.
            out["id"] = f"0x{out['id']:x}"
        elif out["ph"] in ("s", "f"):
            # Flow ids are global; hex form keeps them distinct from the
            # async id namespace when both appear in one trace.
            out["id"] = f"0x{out['id']:x}"
        events.append(out)
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Serialize ``tracer`` to ``path`` (deterministic byte output)."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer), fh, sort_keys=True,
                  separators=(",", ":"))


def validate_chrome_trace(obj: Any) -> List[str]:
    """Best-effort schema check; returns a list of problems (empty = ok).

    Used by the test suite and the CI smoke job to confirm an emitted
    trace is Perfetto-loadable without shipping the real schema.
    """
    problems: List[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing 'name'")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad 'ts' {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur' >= 0")
        if ph in ("b", "e", "s", "f") and "id" not in ev:
            problems.append(f"{where}: {ph!r} event needs 'id'")
        if ph == "C" and "args" not in ev:
            problems.append(f"{where}: counter event needs 'args'")
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Load ``path`` and run :func:`validate_chrome_trace` on it."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))
