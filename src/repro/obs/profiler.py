"""Simulator self-profiling: host time per callback owner.

The north star asks the simulator to run "as fast as the hardware allows";
optimizing that needs a hotspot profile of the *simulator itself*, not of
the simulated hardware.  :class:`SimProfiler` plugs into
:meth:`repro.common.events.Simulator.step` and accumulates host
``perf_counter`` time per callback owner (the class+method that handled
each event), reporting events/sec and the top-N hot components.

Wall-clock readings never feed traces or metric snapshots — those stay
deterministic; the profiler's report is a separate, human-facing artifact.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple


def owner_key(callback: Callable) -> str:
    """Stable attribution key: ``Class.method`` for bound methods,
    qualname otherwise."""
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{callback.__name__}"
    return getattr(callback, "__qualname__", repr(callback))


class SimProfiler:
    """Accumulates per-owner host time across every event fired."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._time_s: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self.events = 0
        self.wall_s = 0.0

    # ------------------------------------------------------------------
    # Hook (called by Simulator.step)
    # ------------------------------------------------------------------
    def timed(self, callback: Callable, args: tuple) -> None:
        """Run ``callback(*args)``, attributing its host time."""
        clock = self._clock
        t0 = clock()
        callback(*args)
        dt = clock() - t0
        key = owner_key(callback)
        self._time_s[key] = self._time_s.get(key, 0.0) + dt
        self._count[key] = self._count.get(key, 0) + 1
        self.events += 1
        self.wall_s += dt

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def top(self, n: int = 10) -> List[Tuple[str, float, int]]:
        """``(owner, seconds, events)`` rows, hottest first.

        Ties break on the owner name so the ordering is reproducible.
        """
        rows = [(k, self._time_s[k], self._count[k]) for k in self._time_s]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[:n]

    def summary(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec(),
            "top": [{"owner": k, "seconds": s, "events": c}
                    for k, s, c in self.top()],
        }

    def report(self, top: int = 10) -> str:
        """Human-readable hotspot table."""
        lines = [f"simulator profile: {self.events} events in "
                 f"{self.wall_s:.3f} s host time "
                 f"({self.events_per_sec():,.0f} events/sec)"]
        rows = self.top(top)
        if rows:
            width = max(len(k) for k, _, _ in rows)
            for key, seconds, count in rows:
                share = seconds / self.wall_s if self.wall_s > 0 else 0.0
                lines.append(f"  {key:<{width}}  {seconds * 1e3:9.2f} ms  "
                             f"{share:6.1%}  {count:>9} events")
        return "\n".join(lines)
