"""Windowed time-series sink: per-window counters, gauges, and sketches.

End-of-run aggregates (``serving.ttft_p95_ns`` and friends) answer "how
did the run go overall" but hide everything the SLO questions care about:
a burst, an eviction storm, or a fault window is invisible inside one
number.  This sink slices simulated time into fixed windows of
``window_ns`` and accumulates, per window:

* **counters** — monotone event counts (tokens emitted, retransmits);
* **gauges** — last-set value and per-window peak (KV occupancy,
  in-flight batch size);
* **sketches** — streaming log2-bucket distributions
  (:class:`~repro.obs.metrics.Histogram` per window) for quantile
  queries over TTFT/TPOT/iteration latency *inside* each window.

It also records **marks** — labelled ``[start, end)`` intervals such as
injected fault windows — so reports can overlay "what was broken when"
onto the per-window series, and :func:`annotate_windows` mirrors both the
window boundaries and the marks into a Perfetto trace.

Zero-cost contract (same as the rest of :mod:`repro.obs`): the default
:class:`NullTimeSeries` has ``enabled = False`` and hands out one shared
no-op instrument; instrumented hot paths guard on that flag.  Recording
creates no simulation events and draws no randomness, so an enabled run
is simulation-identical to a disabled one and the disabled path stays
byte-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .metrics import Histogram


class _TsCounter:
    """Per-window monotone count."""

    __slots__ = ("name", "_sink", "_windows")

    def __init__(self, name: str, sink: "TimeSeriesSink"):
        self.name = name
        self._sink = sink
        self._windows: Dict[int, float] = {}

    def add(self, t_ns: float, n: float = 1.0) -> None:
        w = self._sink.index(t_ns)
        self._windows[w] = self._windows.get(w, 0.0) + n

    def total(self) -> float:
        return sum(self._windows.values())


class _TsGauge:
    """Per-window last-set value with the window peak retained."""

    __slots__ = ("name", "_sink", "_windows")

    def __init__(self, name: str, sink: "TimeSeriesSink"):
        self.name = name
        self._sink = sink
        self._windows: Dict[int, Tuple[float, float]] = {}

    def set(self, t_ns: float, v: float) -> None:
        w = self._sink.index(t_ns)
        prev = self._windows.get(w)
        self._windows[w] = (v, v if prev is None else max(prev[1], v))


class _TsSketch:
    """Per-window streaming distribution (one log2 histogram per window)."""

    __slots__ = ("name", "_sink", "_windows")

    def __init__(self, name: str, sink: "TimeSeriesSink"):
        self.name = name
        self._sink = sink
        self._windows: Dict[int, Histogram] = {}

    def record(self, t_ns: float, v: float) -> None:
        w = self._sink.index(t_ns)
        h = self._windows.get(w)
        if h is None:
            h = self._windows[w] = Histogram(self.name)
        h.record(v)


class _NullTsInstrument:
    """Shared no-op counter/gauge/sketch."""

    __slots__ = ()

    def add(self, t_ns: float, n: float = 1.0) -> None:
        pass

    def set(self, t_ns: float, v: float) -> None:
        pass

    def record(self, t_ns: float, v: float) -> None:
        pass


_NULL_TS_INSTRUMENT = _NullTsInstrument()


class NullTimeSeries:
    """Disabled sink: every instrument is the shared no-op."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str) -> _NullTsInstrument:
        return _NULL_TS_INSTRUMENT

    def gauge(self, name: str) -> _NullTsInstrument:
        return _NULL_TS_INSTRUMENT

    def sketch(self, name: str) -> _NullTsInstrument:
        return _NULL_TS_INSTRUMENT

    def mark_window(self, start_ns: float, end_ns: Optional[float],
                    label: str) -> None:
        pass

    def marks(self) -> List[Tuple[float, Optional[float], str]]:
        return []

    def snapshot(self, makespan_ns: Optional[float] = None) -> Dict:
        return {"window_ns": 0.0, "windows": [], "marks": []}


class TimeSeriesSink:
    """Live windowed sink; see the module docstring for the data model."""

    enabled = True

    def __init__(self, window_ns: float = 100_000.0):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.window_ns = float(window_ns)
        self._counters: Dict[str, _TsCounter] = {}
        self._gauges: Dict[str, _TsGauge] = {}
        self._sketches: Dict[str, _TsSketch] = {}
        self._marks: List[Tuple[float, Optional[float], str]] = []

    # -- instruments ----------------------------------------------------
    def counter(self, name: str) -> _TsCounter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = _TsCounter(name, self)
        return inst

    def gauge(self, name: str) -> _TsGauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = _TsGauge(name, self)
        return inst

    def sketch(self, name: str) -> _TsSketch:
        inst = self._sketches.get(name)
        if inst is None:
            inst = self._sketches[name] = _TsSketch(name, self)
        return inst

    # -- windows --------------------------------------------------------
    def index(self, t_ns: float) -> int:
        """Window index holding simulated time ``t_ns``."""
        return int(t_ns // self.window_ns)

    def window_count(self, makespan_ns: float) -> int:
        """Windows needed to cover ``[0, makespan_ns]`` (at least one)."""
        if makespan_ns <= 0:
            return 1
        return max(1, int(math.ceil(makespan_ns / self.window_ns)))

    # -- marks ----------------------------------------------------------
    def mark_window(self, start_ns: float, end_ns: Optional[float],
                    label: str) -> None:
        """Record a labelled interval (``end_ns=None`` = open-ended, e.g.
        a permanent fault; reports clamp it to the makespan)."""
        self._marks.append((start_ns, end_ns, label))

    def marks(self) -> List[Tuple[float, Optional[float], str]]:
        return sorted(self._marks,
                      key=lambda m: (m[0], m[2], m[1] if m[1] is not None
                                     else math.inf))

    def window_marked(self, index: int,
                      makespan_ns: Optional[float] = None) -> List[str]:
        """Labels of marks overlapping window ``index`` (sorted)."""
        lo = index * self.window_ns
        hi = lo + self.window_ns
        out = []
        for start, end, label in self.marks():
            if end is None:
                end = makespan_ns if makespan_ns is not None else math.inf
            if start < hi and end > lo:
                out.append(label)
        return out

    # -- export ---------------------------------------------------------
    def snapshot(self, makespan_ns: Optional[float] = None) -> Dict:
        """JSON-serializable window-major view, deterministically ordered.

        With ``makespan_ns`` the series is dense — every window from 0 to
        the last one covering the makespan appears, empty or not — which
        is what report tables want; without it only touched windows
        appear.  Within a window, only instruments that recorded there are
        listed (sorted by name).
        """
        touched = set()
        for inst in self._counters.values():
            touched.update(inst._windows)
        for ginst in self._gauges.values():
            touched.update(ginst._windows)
        for sinst in self._sketches.values():
            touched.update(sinst._windows)
        if makespan_ns is not None:
            indices = list(range(self.window_count(makespan_ns)))
        else:
            indices = sorted(touched)
        windows = []
        for i in indices:
            entry: Dict[str, object] = {
                "index": i,
                "start_ns": i * self.window_ns,
                "end_ns": (i + 1) * self.window_ns,
            }
            counters = {n: c._windows[i]
                        for n, c in sorted(self._counters.items())
                        if i in c._windows}
            gauges = {n: {"last": g._windows[i][0], "peak": g._windows[i][1]}
                      for n, g in sorted(self._gauges.items())
                      if i in g._windows}
            sketches = {n: s._windows[i].state()
                        for n, s in sorted(self._sketches.items())
                        if i in s._windows}
            if counters:
                entry["counters"] = counters
            if gauges:
                entry["gauges"] = gauges
            if sketches:
                entry["sketches"] = sketches
            windows.append(entry)
        return {
            "window_ns": self.window_ns,
            "windows": windows,
            "marks": [{"start_ns": s, "end_ns": e, "label": label}
                      for s, e, label in self.marks()],
        }


def annotate_windows(tracer, sink: TimeSeriesSink,
                     makespan_ns: float) -> None:
    """Mirror window boundaries and marks into a Perfetto trace.

    Boundaries land as instants on an ``Obs/windows`` track; marks (fault
    windows) as async spans on ``Obs/marks``, open-ended ones clamped to
    the makespan.  Called at run teardown so the ids and order are a pure
    function of the recorded data.
    """
    if makespan_ns <= 0:
        return
    track = tracer.track("Obs", "windows")
    for i in range(sink.window_count(makespan_ns) + 1):
        tracer.instant(track, f"window {i}", i * sink.window_ns,
                       cat="obs-window")
    marks = sink.marks()
    if marks:
        mark_track = tracer.track("Obs", "marks")
        for aid, (start, end, label) in enumerate(marks):
            tracer.async_begin(mark_track, label, aid, start, cat="obs-mark")
            tracer.async_end(mark_track, label, aid,
                             end if end is not None else makespan_ns,
                             cat="obs-mark")
