"""Critical-path extraction and makespan attribution over the causal DAG.

Given a :class:`~.causality.CausalityRecorder` and the run's makespan,
:func:`extract_critical_path` walks the DAG backward from the
makespan-defining node (latest end; ties broken toward the
latest-created), at each step following the parent that finished last —
the straggler that actually gated progress.  The resulting chain is
rendered as a contiguous partition of ``[0, makespan]``:

* a node's own interval is charged to the node's **category**
  (``gemm_compute``, ``switch_merge``, ...);
* the gap between a parent's end and its child's start is charged to the
  **edge kind** joining them (see :data:`~.causality.EDGE_CATEGORY`) —
  e.g. a ``wire`` gap is propagation delay, a ``merge`` gap is the
  merge-unit waiting for a straggler contribution;
* the lead-in ``[0, first_node.start]`` is kernel-launch/host issue
  overhead (``barrier_sync``); the tail
  ``[last_node.end, makespan]`` is the final delivery's propagation
  (``link_serialization``).

Because segments are built with a single forward cursor they share
endpoints, so the signed endpoint sum telescopes *exactly* to the
makespan — :meth:`CriticalPath.verify` asserts this, making attribution
completeness a structural invariant rather than a float coincidence.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import SimulationError
from .causality import (CATEGORIES, EDGE_CATEGORY, LINK_SERIALIZATION,
                        BARRIER_SYNC, CausalNode, CausalityRecorder)

#: Edge kind used for the synthetic lead-in segment before the first node.
_ROOT_KIND = "launch"
#: Category for the tail between the last node's end and the makespan
#: (the final message's propagation to its consumer).
_TAIL_CATEGORY = LINK_SERIALIZATION


class Segment:
    """One contiguous slice of the critical path."""

    __slots__ = ("start_ns", "end_ns", "category", "kind", "label")

    def __init__(self, start_ns: float, end_ns: float, category: str,
                 kind: str, label: str):
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.category = category
        #: "node" for a path node's own interval, the edge kind for a
        #: causal gap, "root" for the lead-in, "tail" for the final
        #: propagation residue.
        self.kind = kind
        self.label = label

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Segment([{self.start_ns:.1f}, {self.end_ns:.1f}] "
                f"{self.category} {self.kind} {self.label!r})")


class CriticalPath:
    """The extracted path, its segment partition, and the attribution."""

    def __init__(self, nodes: Sequence[CausalNode],
                 segments: Sequence[Segment], makespan_ns: float):
        #: Path nodes in chronological order (root first).
        self.nodes = list(nodes)
        #: Contiguous partition of [0, makespan].
        self.segments = list(segments)
        self.makespan_ns = makespan_ns

    def attribution(self) -> Dict[str, float]:
        """Nanoseconds per category, every category present (0.0 if idle),
        in the fixed :data:`~.causality.CATEGORIES` order."""
        per_cat: Dict[str, List[float]] = {cat: [] for cat in CATEGORIES}
        for seg in self.segments:
            per_cat[seg.category].append(seg.duration_ns)
        return {cat: math.fsum(spans) for cat, spans in per_cat.items()}

    def verify(self) -> None:
        """Assert the attribution covers the makespan exactly.

        Checks the partition structurally (contiguous from 0 to makespan)
        and numerically (the signed endpoint sum, which telescopes without
        rounding, equals the makespan).  Raises SimulationError otherwise.
        """
        cursor = 0.0
        endpoints: List[float] = []
        for seg in self.segments:
            if seg.start_ns != cursor:
                raise SimulationError(
                    f"critical path not contiguous: segment starts at "
                    f"{seg.start_ns} ns, expected {cursor} ns")
            if seg.end_ns < seg.start_ns:
                raise SimulationError(
                    f"critical path segment has negative duration: {seg!r}")
            endpoints.append(seg.end_ns)
            endpoints.append(-seg.start_ns)
            cursor = seg.end_ns
        total = math.fsum(endpoints)
        if total != self.makespan_ns or cursor != self.makespan_ns:
            raise SimulationError(
                f"attribution does not sum to the makespan: "
                f"{total} ns != {self.makespan_ns} ns")


def extract_critical_path(recorder: CausalityRecorder,
                          makespan_ns: float) -> CriticalPath:
    """Walk the DAG backward from the makespan-defining node.

    Deterministic: the terminal is the max-(end, id) node, and every
    backward step follows the max-(end, id) parent — node ids are
    creation order, which is event order, which is seed-stable.
    """
    nodes = recorder.nodes
    if not nodes:
        segments = ([Segment(0.0, makespan_ns, BARRIER_SYNC, "root",
                             "no causal events")]
                    if makespan_ns > 0 else [])
        return CriticalPath([], segments, makespan_ns)

    terminal = max(nodes, key=lambda n: (n.end_ns, n.id))
    if terminal.end_ns > makespan_ns:
        raise SimulationError(
            f"causal node {terminal!r} ends after the makespan "
            f"({makespan_ns} ns)")

    # Backward walk; parents always have smaller ids (created earlier), so
    # this strictly descends and terminates.  Each chain entry pairs a
    # node with the edge kind joining it to its chosen (straggler) parent;
    # the root, having no parent, is charged as launch overhead.
    chain: List[Tuple[CausalNode, str]] = []
    node = terminal
    while True:
        if not node.parents:
            chain.append((node, _ROOT_KIND))
            break
        pid, kind = max(node.parents,
                        key=lambda pk: (nodes[pk[0]].end_ns, pk[0]))
        chain.append((node, kind))
        node = nodes[pid]
    chain.reverse()

    # Forward segment construction with a single cursor.  Overlapping
    # intervals (a child that started before its gating parent finished)
    # are clamped so the partition stays contiguous.
    segments: List[Segment] = []
    cursor = 0.0
    for node, kind in chain:
        if node.start_ns > cursor:
            segments.append(Segment(cursor, node.start_ns,
                                    EDGE_CATEGORY[kind], kind,
                                    node.label))
            cursor = node.start_ns
        if node.end_ns > cursor:
            segments.append(Segment(cursor, node.end_ns, node.category,
                                    "node", node.label))
            cursor = node.end_ns
    if makespan_ns > cursor:
        segments.append(Segment(cursor, makespan_ns, _TAIL_CATEGORY, "tail",
                                "final delivery"))

    path = CriticalPath([node for node, _ in chain], segments, makespan_ns)
    path.verify()
    return path


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def format_attribution_table(
        paths: Sequence[Tuple[str, CriticalPath]]) -> str:
    """Markdown table of per-category attribution, one column per system."""
    names = [name for name, _ in paths]
    atts = [cp.attribution() for _, cp in paths]
    lines = ["| category | " + " | ".join(names) + " |",
             "|---|" + "---|" * len(names)]
    for cat in CATEGORIES:
        cells = " | ".join(f"{att[cat]:.1f}" for att in atts)
        lines.append(f"| {cat} | {cells} |")
    totals = " | ".join(
        f"{math.fsum(att.values()):.1f}" for att in atts)
    makespans = " | ".join(f"{cp.makespan_ns:.1f}" for _, cp in paths)
    lines.append(f"| **total (ns)** | {totals} |")
    lines.append(f"| **makespan (ns)** | {makespans} |")
    return "\n".join(lines)


def format_report(name: str, path: CriticalPath, top: int = 10) -> str:
    """Deterministic single-system report: attribution + longest segments."""
    att = path.attribution()
    lines = [f"## Critical path — {name}",
             "",
             f"makespan: {path.makespan_ns:.1f} ns, "
             f"{len(path.nodes)} path nodes, "
             f"{len(path.segments)} segments",
             "",
             "| category | ns | share |",
             "|---|---|---|"]
    makespan = path.makespan_ns or 1.0
    for cat in CATEGORIES:
        lines.append(f"| {cat} | {att[cat]:.1f} | "
                     f"{100.0 * att[cat] / makespan:.2f}% |")
    lines.append(f"| **total** | {math.fsum(att.values()):.1f} | "
                 f"{100.0 * math.fsum(att.values()) / makespan:.2f}% |")
    longest = sorted(path.segments,
                     key=lambda s: (-s.duration_ns, s.start_ns))[:top]
    if longest:
        lines += ["", f"Longest segments (top {len(longest)}):", ""]
        for seg in longest:
            lines.append(f"- [{seg.start_ns:.1f}, {seg.end_ns:.1f}] "
                         f"{seg.duration_ns:.1f} ns {seg.category} "
                         f"({seg.kind}) {seg.label}")
    return "\n".join(lines)


def format_comparison(paths: Sequence[Tuple[str, CriticalPath]],
                      baseline: Optional[str] = None) -> str:
    """Cross-system comparison: joint table + per-category movement lines.

    ``baseline`` names the reference column (default: the first entry);
    every other system gets "X moved off/onto the critical path" lines.
    """
    if not paths:
        return "(no runs to compare)"
    base_name = baseline if baseline is not None else paths[0][0]
    base_att = dict(paths)[base_name].attribution()
    lines = ["## Attribution across systems", "",
             format_attribution_table(paths), ""]
    for name, cp in paths:
        if name == base_name:
            continue
        att = cp.attribution()
        for cat in CATEGORIES:
            delta = base_att[cat] - att[cat]
            if abs(delta) < 0.05:
                continue
            verb = ("moved off critical path" if delta > 0
                    else "moved onto critical path")
            lines.append(f"- {name} vs {base_name}: {cat} {verb}: "
                         f"{abs(delta):.1f} ns")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Perfetto surfacing
# ---------------------------------------------------------------------------

def annotate_tracer(tracer, path: CriticalPath,
                    process: str = "critical path") -> None:
    """Render the critical path into a trace as its own process row.

    Every segment becomes a complete slice (named by category) on a
    dedicated track, and consecutive path nodes are joined with Perfetto
    flow arrows (``ph: "s"``/``"f"``) so the causality renders in the UI.
    """
    if not tracer.enabled:
        return
    track = tracer.track(process, "segments")
    for seg in path.segments:
        handle = tracer.begin(track, seg.category, seg.start_ns,
                              cat="critical_path",
                              args={"kind": seg.kind, "label": seg.label})
        tracer.end(handle, seg.end_ns)
    for i in range(len(path.nodes) - 1):
        src, dst = path.nodes[i], path.nodes[i + 1]
        tracer.flow_start(track, "critical", i + 1, src.end_ns,
                          cat="critical_path")
        tracer.flow_end(track, "critical", i + 1,
                        max(dst.start_ns, src.end_ns), cat="critical_path")
