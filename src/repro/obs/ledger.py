"""Append-only cross-run ledger of completed simulations.

Per-run observability (traces, ``explain``, ``report``/``diff``) dies
with the process that produced it; the **run ledger** is the layer that
survives.  Every completed simulation — a direct ``python -m repro`` run
or one :class:`~repro.experiments.parallel.SimTask` of a matrix sweep —
appends exactly one canonical-JSON record to a schema-versioned JSONL
file under ``.repro_ledger/``, so the history of runs across working
sessions (and across PRs, in CI artifacts) becomes a queryable dataset:
``python -m repro ledger query/summarize/regress``.

Record model (``LEDGER_SCHEMA``-versioned)::

    {
      "schema": 1, "kind": "repro-run-record",
      "fingerprint": "<SimTask cache fingerprint, sha256 hex>",
      "spec":    {...}   # what ran: system/seed/scale/tiling/faults/...
      "metrics": {...}   # deterministic headline scalars (makespan, ...)
      "details": {...}   # deterministic run details (explain.*, faults.*)
      "volatile": {...}  # wall time, cache hit/miss, git rev, tools, pid
    }

Everything outside the ``volatile`` section is a pure function of the
simulation inputs, so two same-seed runs append **byte-identical stable
sections** (:func:`stable_line`) — the convention volatile gauges and
``report_to_json`` already follow (DESIGN.md §11/§13).  Wall-clock
quantities, the cache hit flag (an execution accident, not a property of
the run), the git revision, and tool versions are quarantined in
``volatile``.

Writes are atomic and concurrent-safe: one ``os.write`` of one complete
line on an ``O_APPEND`` descriptor, serialized by an ``flock`` where the
platform has one, so pool workers from
:func:`~repro.experiments.parallel.run_matrix` can append directly.
Like the simulation cache, the ledger is an observer, never a
correctness dependency — I/O failures warn and are swallowed, corrupt
lines are skipped on read.

Activation is ambient via the ``REPRO_LEDGER`` environment variable
(the CLIs' ``--ledger`` flag sets it), so worker processes inherit the
choice exactly like ``REPRO_NO_FASTPATH``; when unset,
:func:`ledger_from_env` returns the :class:`NullLedger` and nothing in
this module runs on any hot path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

try:                              # POSIX; Windows falls back to O_APPEND
    import fcntl
except ImportError:               # pragma: no cover - platform specific
    fcntl = None  # type: ignore[assignment]

#: Bump on any incompatible change to the record shape; old records stay
#: on disk under their own ``v<N>/`` directory and are never read again.
LEDGER_SCHEMA = 1

#: Environment variable naming the ledger root; set by ``--ledger`` so
#: that pool workers inherit it regardless of start method.
LEDGER_ENV = "REPRO_LEDGER"

RECORD_KIND = "repro-run-record"

#: The quarantined section: everything that may legitimately differ
#: between two same-seed runs of the same code.
VOLATILE_KEY = "volatile"

#: Keys every record must carry (``volatile`` included — a record with
#: no provenance is useless for auditing).
_REQUIRED = ("schema", "kind", "fingerprint", "spec", "metrics",
             "details", VOLATILE_KEY)


def _canonical_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def validate_record(record: Dict[str, Any]) -> None:
    """Structural check; raises ``ValueError`` naming the first problem."""
    if not isinstance(record, dict):
        raise ValueError("ledger record: not a JSON object")
    for key in _REQUIRED:
        if key not in record:
            raise ValueError(f"ledger record: missing {key!r}")
    if record["kind"] != RECORD_KIND:
        raise ValueError(f"ledger record: kind is {record['kind']!r}, "
                         f"expected {RECORD_KIND!r}")
    if record["schema"] != LEDGER_SCHEMA:
        raise ValueError(f"ledger record: schema {record['schema']!r} "
                         f"!= supported {LEDGER_SCHEMA}")
    fp = record["fingerprint"]
    if not (isinstance(fp, str) and len(fp) == 64
            and all(c in "0123456789abcdef" for c in fp)):
        raise ValueError(f"ledger record: fingerprint {fp!r} is not a "
                         f"sha256 hex digest")
    for key in ("spec", "metrics", "details", VOLATILE_KEY):
        if not isinstance(record[key], dict):
            raise ValueError(f"ledger record: {key!r} must be an object, "
                             f"got {type(record[key]).__name__}")
    metrics = record["metrics"]
    for key in ("makespan_ns", "events"):
        if not isinstance(metrics.get(key), (int, float)):
            raise ValueError(f"ledger record: metrics.{key} missing or "
                             f"non-numeric")
    vol = record[VOLATILE_KEY]
    if not isinstance(vol.get("cache_hit"), bool):
        raise ValueError("ledger record: volatile.cache_hit missing")
    if not isinstance(vol.get("wall_ms"), (int, float)):
        raise ValueError("ledger record: volatile.wall_ms missing")


def stable_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """The record without its ``volatile`` section — the part that must
    be byte-identical across same-seed re-runs."""
    return {k: v for k, v in record.items() if k != VOLATILE_KEY}


def stable_line(record: Dict[str, Any]) -> str:
    """Canonical one-line JSON of :func:`stable_view` (comparison key for
    the determinism gate and ``ledger regress``)."""
    return _canonical_json(stable_view(record))


_GIT_REV: Optional[str] = None


def git_rev() -> str:
    """Current git revision (memoized; ``"unknown"`` outside a checkout).

    Provenance only — it lives in the volatile section, so record
    identity never depends on it.
    """
    global _GIT_REV
    if _GIT_REV is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"], capture_output=True,
                text=True, timeout=5.0, check=False)
            _GIT_REV = out.stdout.strip() if out.returncode == 0 else \
                "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = "unknown"
    return _GIT_REV


def tool_versions() -> Dict[str, str]:
    """Interpreter/package versions recorded for provenance."""
    from .. import __version__
    return {
        "python": "%d.%d.%d" % sys.version_info[:3],
        "repro": __version__,
    }


def build_record(*, fingerprint: str, spec: Dict[str, Any],
                 metrics: Dict[str, Any],
                 details: Optional[Dict[str, Any]] = None,
                 cache_hit: bool, wall_ms: float) -> Dict[str, Any]:
    """Assemble one schema-valid record; the caller appends it.

    ``spec``/``metrics``/``details`` must already be deterministic
    JSON-serializable primitives (the caller owns the digest policy —
    see :func:`repro.experiments.ledger.record_for_task`); this function
    contributes only the envelope and the volatile provenance section.
    """
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": RECORD_KIND,
        "fingerprint": fingerprint,
        "spec": spec,
        "metrics": metrics,
        "details": dict(details or {}),
        VOLATILE_KEY: {
            "cache_hit": bool(cache_hit),
            "wall_ms": float(wall_ms),
            "recorded_unix": time.time(),
            "git_rev": git_rev(),
            "tools": tool_versions(),
            "pid": os.getpid(),
        },
    }
    validate_record(record)
    return record


class NullLedger:
    """Disabled stand-in (the default): every method is a no-op."""

    enabled = False
    __slots__ = ()

    def append(self, record: Dict[str, Any]) -> None:
        pass

    def records(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


class RunLedger:
    """Append-only JSONL store under ``root/v<LEDGER_SCHEMA>/runs.jsonl``."""

    enabled = True

    def __init__(self, root: str = ".repro_ledger"):
        self.root = Path(root)
        self.path = self.root / f"v{LEDGER_SCHEMA}" / "runs.jsonl"
        self._warned = False

    def append(self, record: Dict[str, Any]) -> None:
        """Validate and atomically append one record (one line).

        The write is a single ``os.write`` on an ``O_APPEND`` descriptor
        under an exclusive ``flock`` (where available), so concurrent
        pool workers interleave whole lines, never fragments.  I/O
        failures warn once and are swallowed — the ledger must never
        take a simulation down.
        """
        validate_record(record)
        data = (_canonical_json(record) + "\n").encode()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(self.path),
                         os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                os.write(fd, data)
            finally:
                if fcntl is not None:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_UN)
                    except OSError:
                        pass
                os.close(fd)
        except OSError as exc:
            if not self._warned:
                self._warned = True
                warnings.warn(f"run ledger at {self.path} is unwritable "
                              f"({exc}); records are being dropped",
                              RuntimeWarning, stacklevel=2)

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Parsed records in append order; corrupt/foreign lines skipped."""
        try:
            fh = open(self.path)
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    validate_record(record)
                except (ValueError, TypeError):
                    continue
                yield record

    def records(self) -> List[Dict[str, Any]]:
        return list(self.iter_records())

    def stale_schema_dirs(self) -> List[Path]:
        """Sibling ``v<N>/`` directories from older/newer schemas."""
        if not self.root.is_dir():
            return []
        keep = self.path.parent.name
        return sorted(p for p in self.root.iterdir()
                      if p.is_dir() and p.name != keep)

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())


_NULL_LEDGER = NullLedger()


def ledger_from_env():
    """The ambient ledger: a :class:`RunLedger` rooted at ``$REPRO_LEDGER``
    when that is set and non-empty, else the shared :class:`NullLedger`.

    Resolved per call (cheap: one ``getenv``) so tests and CLIs can flip
    the variable without process-lifetime caching surprises.
    """
    root = os.environ.get(LEDGER_ENV)
    if not root:
        return _NULL_LEDGER
    return RunLedger(root)
