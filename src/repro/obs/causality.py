"""Causal event DAG recording (the "why" behind a makespan).

During a simulation, instrumented components append :class:`CausalNode`
records — closed intervals of simulated work (a TB compute phase, a link
serialization, a switch hop, a merge completion) — each linked to the
nodes that *caused* it.  The resulting DAG is what
:mod:`repro.obs.critical_path` walks backward to extract the critical
path and attribute every nanosecond of the makespan.

Propagation model
-----------------
Threading an explicit ``cause_id`` through every callback chain would
touch every component signature, so causality rides the event engine
instead: the recorder exposes an *ambient* :attr:`CausalityRecorder.current`
node id; :meth:`repro.common.events.Simulator.schedule` stamps it onto
each event, and the run loop restores it before firing the callback.
Components only assign ``current`` where they create nodes (a link when a
message finishes serializing, a switch when it dispatches, a TB when a
phase ends) — everything scheduled downstream inherits the right cause
automatically, including HBM fill delays, sync releases, and collective
hop chains.

Edges carry a *kind* (``wire``, ``queue``, ``merge``, ...).  On the
critical path, the **gap** between a parent's end and its child's start
is attributed to the category the edge kind maps to (see
:data:`EDGE_CATEGORY`); the node's own interval is attributed to the
node's category.

Zero-cost contract: the default :class:`NullCausality` has
``enabled = False`` and ``current = NO_CAUSE`` as class attributes;
instrumented paths guard node creation with ``if cz.enabled:``, and a
disabled run pays one attribute read per scheduled event.  Recording
creates no simulation events and draws no randomness, so an enabled run
is simulation-identical to a disabled one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: Sentinel parent/ambient id meaning "no known cause".
NO_CAUSE = -1

# ---------------------------------------------------------------------------
# Attribution categories (the issue's fixed taxonomy)
# ---------------------------------------------------------------------------
GEMM_COMPUTE = "gemm_compute"
VECTOR_COMPUTE = "vector_compute"
LINK_SERIALIZATION = "link_serialization"
QUEUEING_WAIT = "queueing_wait"
SWITCH_MERGE = "switch_merge"
BARRIER_SYNC = "barrier_sync"
RETRANSMIT = "retransmit"

#: Every category, in the fixed order reports and snapshots use.
CATEGORIES: Tuple[str, ...] = (
    GEMM_COMPUTE, VECTOR_COMPUTE, LINK_SERIALIZATION, QUEUEING_WAIT,
    SWITCH_MERGE, BARRIER_SYNC, RETRANSMIT,
)

#: Edge kind -> category charged for the parent-end -> child-start gap.
#:
#: ``launch``   kernel launch overhead / host issue        -> barrier_sync
#: ``dispatch`` TB ready-queue wait                        -> queueing_wait
#: ``slot``     SM slot wait (scheduler pick)              -> queueing_wait
#: ``dep``      dependency/token wait (graph or when_all)  -> barrier_sync
#: ``queue``    link injection queue (HOL blocking)        -> queueing_wait
#: ``wire``     propagation after serialization / hop      -> link_serialization
#: ``merge``    merge-unit slot wait (straggler arrival)   -> switch_merge
#: ``sync``     group-sync barrier release                 -> barrier_sync
#: ``retry``    retransmission (ack timeout + resend)      -> retransmit
#: ``seq``      within-TB phase sequencing                 -> queueing_wait
EDGE_CATEGORY = {
    "launch": BARRIER_SYNC,
    "dispatch": QUEUEING_WAIT,
    "slot": QUEUEING_WAIT,
    "dep": BARRIER_SYNC,
    "queue": QUEUEING_WAIT,
    "wire": LINK_SERIALIZATION,
    "merge": SWITCH_MERGE,
    "sync": BARRIER_SYNC,
    "retry": RETRANSMIT,
    "seq": QUEUEING_WAIT,
}


class CausalNode:
    """One interval of simulated work plus the edges that caused it.

    ``parents`` is a sequence of ``(parent_id, edge_kind)`` pairs;
    ``NO_CAUSE`` parents are dropped at construction so walkers never
    chase the sentinel.
    """

    __slots__ = ("id", "category", "start_ns", "end_ns", "label", "parents")

    def __init__(self, node_id: int, category: str, start_ns: float,
                 end_ns: float, label: str,
                 parents: Sequence[Tuple[int, str]]):
        self.id = node_id
        self.category = category
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.label = label
        self.parents: List[Tuple[int, str]] = [
            (p, kind) for p, kind in parents if p != NO_CAUSE]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CausalNode(#{self.id} {self.category} "
                f"[{self.start_ns:.1f}, {self.end_ns:.1f}] {self.label!r} "
                f"<- {self.parents})")


class NullCausality:
    """No-op recorder installed by default.

    ``enabled``/``current`` are class attributes so the Simulator's
    per-event ``ev.cause = cz.current`` stamp is a constant read when
    causality is off.  ``__slots__`` is empty: accidentally assigning
    ``current`` on the null object raises instead of silently recording.
    """

    enabled = False
    current = NO_CAUSE
    __slots__ = ()

    def node(self, category: str, start_ns: float, end_ns: float,
             label: str = "",
             parents: Sequence[Tuple[int, str]] = ()) -> int:
        return NO_CAUSE


class CausalityRecorder:
    """Recording implementation; see the module docstring for the model."""

    enabled = True

    def __init__(self) -> None:
        self.nodes: List[CausalNode] = []
        #: Ambient cause: the node id whose effects are currently being
        #: simulated.  Stamped onto every scheduled event and restored by
        #: the run loop before each callback fires.
        self.current: int = NO_CAUSE

    def node(self, category: str, start_ns: float, end_ns: float,
             label: str = "",
             parents: Sequence[Tuple[int, str]] = ()) -> int:
        """Record one interval of work; returns its id (creation order).

        Ids are assigned in creation order, and event order is
        deterministic for a fixed seed, so the DAG — and everything
        derived from it — is byte-identical across same-seed runs.
        """
        if end_ns < start_ns:
            raise ValueError(
                f"causal node {label!r} ends before it starts: "
                f"[{start_ns}, {end_ns}]")
        node_id = len(self.nodes)
        self.nodes.append(
            CausalNode(node_id, category, start_ns, end_ns, label, parents))
        return node_id

    def __len__(self) -> int:
        return len(self.nodes)

    def get(self, node_id: int) -> Optional[CausalNode]:
        if 0 <= node_id < len(self.nodes):
            return self.nodes[node_id]
        return None
