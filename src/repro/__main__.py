"""Library command line: run one system on one workload and print a report.

Usage::

    python -m repro --system CAIS --model LLaMA-7B --workload L1
    python -m repro --system SP-NVLS --workload layer --training \\
        --scale 0.125 --seed 7
    python -m repro --list

The experiment harness (``python -m repro.experiments``) regenerates the
paper's tables/figures; this entry point is for ad-hoc single runs.
"""

from __future__ import annotations

import argparse
import sys

from .common.config import dgx_h100_config
from .experiments.runner import Scale, layer_graphs, sublayer_for
from .llm.models import TABLE_I, by_name
from .llm.tiling import TilingConfig
from .llm.tp import SUBLAYERS
from .metrics.report import format_run_report
from .systems import SYSTEM_CLASSES, make_system

WORKLOADS = tuple(SUBLAYERS) + ("layer",)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    parser.add_argument("--list", action="store_true",
                        help="list systems and models, then exit")
    parser.add_argument("--system", default="CAIS",
                        choices=sorted(SYSTEM_CLASSES))
    parser.add_argument("--model", default="LLaMA-7B",
                        choices=sorted(TABLE_I) + ["LLaMA-full"])
    parser.add_argument("--workload", default="L1", choices=WORKLOADS,
                        help="one Fig. 12 sub-layer or a full layer")
    parser.add_argument("--training", action="store_true",
                        help="forward + backward (layer workload only)")
    parser.add_argument("--scale", type=float, default=0.125,
                        help="fraction of the model's tokens to simulate")
    parser.add_argument("--gpus", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--no-gantt", action="store_true",
                        help="omit the kernel timeline from the report")
    args = parser.parse_args(argv)

    if args.list:
        print("systems:", ", ".join(sorted(SYSTEM_CLASSES)))
        print("models: ", ", ".join(sorted(TABLE_I) + ["LLaMA-full"]))
        print("workloads:", ", ".join(WORKLOADS))
        return 0

    config = dgx_h100_config(num_gpus=args.gpus, seed=args.seed)
    scale = Scale(tokens_fraction=args.scale,
                  tiling=TilingConfig(chunk_bytes=32768,
                                      red_chunk_bytes=8192))
    model = scale.apply(by_name(args.model))
    if args.workload == "layer":
        graphs = layer_graphs(model, args.gpus, args.system, args.training)
    else:
        graphs = [sublayer_for(model, args.gpus, args.system,
                               args.workload)]
    system = make_system(args.system, config, tiling=scale.tiling)
    result = system.run(graphs)
    print(format_run_report(result, gantt=not args.no_gantt))
    return 0


if __name__ == "__main__":
    sys.exit(main())
