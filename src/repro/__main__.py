"""Library command line: run one system on one workload and print a report.

Usage::

    python -m repro --system CAIS --model LLaMA-7B --workload L1
    python -m repro --system SP-NVLS --workload layer --training \\
        --scale 0.125 --seed 7
    python -m repro --system CAIS --workload L1 --trace out.json \\
        --metrics --profile
    python -m repro explain --workload L2 --systems CAIS TP-NVLS
    python -m repro report --faults --json faulted.json
    python -m repro diff clean.json faulted.json
    python -m repro ledger query --system CAIS
    python -m repro cache --gc
    python -m repro --list

The experiment harness (``python -m repro.experiments``) regenerates the
paper's tables/figures; this entry point is for ad-hoc single runs.

Observability flags (see README, "Observability"): ``--trace`` writes a
Chrome/Perfetto trace of the simulated hardware, ``--metrics`` /
``--metrics-out`` snapshot the counter/gauge/histogram registry, and
``--profile`` prints a host-time hotspot profile of the simulator itself.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

from . import obs
from .common import fastpath
from .common.config import FaultSpec, dgx_h100_config
from .experiments.runner import Scale, layer_graphs, sublayer_for
from .llm.models import TABLE_I, by_name
from .llm.tiling import TilingConfig
from .llm.tp import SUBLAYERS
from .metrics.report import format_run_report
from .systems import SYSTEM_CLASSES, make_system

WORKLOADS = tuple(SUBLAYERS) + ("layer", "serving", "fleet")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        # Subcommand: critical-path attribution comparison across systems
        # (repro.experiments.explain) — everything after `explain` is its.
        from .experiments.explain import main as explain_main
        return explain_main(argv[1:])
    if argv and argv[0] == "report":
        # Subcommand: SLO run report for the serving workload
        # (repro.experiments.report).
        from .experiments.report import main as report_main
        return report_main(argv[1:])
    if argv and argv[0] == "diff":
        # Subcommand: attribute metric movement between two run reports
        # (repro.experiments.diff).
        from .experiments.diff import main as diff_main
        return diff_main(argv[1:])
    if argv and argv[0] == "ledger":
        # Subcommand: query/summarize/regress the cross-run ledger
        # (repro.experiments.ledger).
        from .experiments.ledger import main as ledger_main
        return ledger_main(argv[1:])
    if argv and argv[0] == "cache":
        # Subcommand: inspect/garbage-collect the simulation cache
        # (repro.experiments.cache).
        from .experiments.cache import main as cache_main
        return cache_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro")
    parser.add_argument("--list", action="store_true",
                        help="list systems and models, then exit")
    parser.add_argument("--system", default="CAIS",
                        choices=sorted(SYSTEM_CLASSES))
    parser.add_argument("--model", default="LLaMA-7B",
                        choices=sorted(TABLE_I) + ["LLaMA-full"])
    parser.add_argument("--workload", default="L1", choices=WORKLOADS,
                        help="one Fig. 12 sub-layer, a full layer, the "
                             "continuous-batching serving stream, or a "
                             "multi-replica serving fleet")
    parser.add_argument("--training", action="store_true",
                        help="forward + backward (layer workload only)")
    parser.add_argument("--scale", type=float, default=0.125,
                        help="fraction of the model's tokens to simulate")
    parser.add_argument("--gpus", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--no-gantt", action="store_true",
                        help="omit the kernel timeline from the report")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome/Perfetto trace of the run "
                             "(open at ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics snapshot as JSON")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the metrics snapshot to PATH")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="force the reference event path everywhere "
                             "(disables every engine fast-path layer; "
                             "see DESIGN.md §11)")
    parser.add_argument("--profile", action="store_true",
                        help="print a host-time hotspot profile of the "
                             "simulator's event loop")
    parser.add_argument("--ledger", nargs="?", const=".repro_ledger",
                        default=None, metavar="DIR",
                        help="append this run's record to the cross-run "
                             "ledger (default when given bare: %(const)s; "
                             "see `python -m repro ledger`)")
    parser.add_argument("--faults", action="store_true",
                        help="inject a deterministic fault schedule into "
                             "the run (retries/fallbacks appear in the "
                             "report details)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="S",
                        help="fault-schedule seed (default: %(default)s)")
    parser.add_argument("--fault-intensity", type=float, default=1.0,
                        metavar="X",
                        help="fault intensity in [0,1] "
                             "(default: %(default)s)")
    parser.add_argument("--admission", default="none",
                        choices=("none", "shed", "defer"),
                        help="serving workload: SLO-aware admission "
                             "policy (default: %(default)s)")
    parser.add_argument("--slo-ttft-ms", type=float, default=None,
                        metavar="MS",
                        help="serving workload: TTFT SLO target driving "
                             "--admission and the attainment summary")
    parser.add_argument("--retry-budget", type=int, default=None,
                        metavar="N",
                        help="serving workload: per-request retransmit "
                             "budget before abort + re-prefill")
    parser.add_argument("--replicas", type=int, default=None, metavar="N",
                        help="fleet workload: TP-replica count "
                             "(default: the fig22 fleet size)")
    parser.add_argument("--fleet-policy", default="round-robin",
                        choices=("round-robin", "least-kv",
                                 "prefix-affinity"),
                        help="fleet workload: router load-balancing "
                             "policy (default: %(default)s)")
    parser.add_argument("--prefill-replicas", type=int, default=0,
                        metavar="P",
                        help="fleet workload: carve P replicas into a "
                             "prefill pool with KV handoff to the rest "
                             "(default: combined replicas)")
    args = parser.parse_args(argv)
    if args.admission != "none" and args.slo_ttft_ms is None:
        parser.error("--admission requires --slo-ttft-ms")

    if args.no_fastpath:
        os.environ["REPRO_NO_FASTPATH"] = "1"
        fastpath.disable_all()

    if args.list:
        print("systems:", ", ".join(sorted(SYSTEM_CLASSES)))
        print("models: ", ", ".join(sorted(TABLE_I) + ["LLaMA-full"]))
        print("workloads:", ", ".join(WORKLOADS))
        return 0

    # Observability sinks must be installed before the harness is built —
    # components capture the current tracer/registry at construction.
    tracer = obs.Tracer() if args.trace else None
    metrics = (obs.MetricsRegistry()
               if (args.metrics or args.metrics_out) else None)
    profiler = obs.SimProfiler() if args.profile else None
    # A trace gets the causal DAG recorded too, so the exported file
    # carries the critical-path row and its flow arrows.
    causality = obs.CausalityRecorder() if args.trace else None
    obs.install(tracer=tracer, metrics=metrics, profiler=profiler,
                causality=causality)

    config = dgx_h100_config(num_gpus=args.gpus, seed=args.seed)
    if args.faults:
        config = config.with_faults(FaultSpec(
            enabled=True, intensity=args.fault_intensity,
            fault_seed=args.fault_seed))
    scale = Scale(tokens_fraction=args.scale,
                  tiling=TilingConfig(chunk_bytes=32768,
                                      red_chunk_bytes=8192))
    model = scale.apply(by_name(args.model))
    system = make_system(args.system, config, tiling=scale.tiling)
    try:
        run_started = time.perf_counter()
        spec = None
        graphs = []
        if args.workload == "fleet":
            # The fleet path aggregates N independent replica runs; there
            # is no single RunResult to report, so it prints its own
            # summary and the shared flags (--ledger through the env var,
            # like the experiments CLI) apply per replica task.
            from .experiments.fig22_fleet import (fleet_spec_for,
                                                  format_fleet_summary,
                                                  run_fleet)
            fleet = fleet_spec_for(
                scale, 1.0, args.seed,
                replicas=(args.replicas if args.replicas is not None
                          else 4),
                policy=args.fleet_policy,
                prefill_replicas=args.prefill_replicas)
            fleet = dataclasses.replace(fleet, serving=dataclasses.replace(
                fleet.serving, model=args.model,
                retry_budget=args.retry_budget,
                **({"admission_policy": args.admission,
                    "slo_ttft_ms": args.slo_ttft_ms}
                   if args.admission != "none" else {})))
            if args.ledger:
                os.environ[obs.LEDGER_ENV] = args.ledger
            result = run_fleet(args.system, fleet, config=config,
                               scale=scale)
            print(format_fleet_summary(result))
            if args.ledger:
                from .obs.ledger import RunLedger
                ledger = RunLedger(args.ledger)
                print(f"ledger: {ledger.path} "
                      f"({len(ledger)} record(s))")
            return 0
        if args.workload == "serving":
            from .experiments.fig20_serving import spec_for
            from .experiments.runner import style_for
            from .llm.serving import simulate_serving
            spec = dataclasses.replace(spec_for(scale, seed=args.seed),
                                       model=args.model,
                                       admission_policy=args.admission,
                                       slo_ttft_ms=args.slo_ttft_ms,
                                       retry_budget=args.retry_budget)
            serving = simulate_serving(system, spec, model=by_name(
                args.model), style=style_for(args.system))
            result = serving.run
            hiccups = f"{serving.evictions} evictions"
            if serving.shed:
                hiccups += f", {len(serving.shed)} shed"
            if serving.aborts:
                hiccups += f", {serving.aborts} aborts"
            print(f"serving: {len(serving.stats)} requests, "
                  f"{serving.total_output_tokens} tokens in "
                  f"{serving.iterations} iterations "
                  f"({hiccups}) -> "
                  f"{serving.tokens_per_s:,.0f} tokens/s, "
                  f"TTFT mean {serving.mean_ttft_ns() / 1e6:.2f} ms / "
                  f"p95 {serving.ttft_quantile_ns(0.95) / 1e6:.2f} ms, "
                  f"TPOT mean {serving.mean_tpot_ns() / 1e6:.2f} ms")
            if args.slo_ttft_ms is not None:
                slo_ns = args.slo_ttft_ms * 1e6
                print(f"SLO (TTFT <= {args.slo_ttft_ms:g} ms): "
                      f"{serving.slo_attainment(slo_ns):.1%} attainment "
                      f"of {len(serving.stats) + len(serving.shed)} "
                      f"offered")
        else:
            if args.workload == "layer":
                graphs = layer_graphs(model, args.gpus, args.system,
                                      args.training)
            else:
                graphs = [sublayer_for(model, args.gpus, args.system,
                                       args.workload)]
            result = system.run(graphs)
        run_wall_ms = (time.perf_counter() - run_started) * 1e3
        print(format_run_report(result, gantt=not args.no_gantt))
        if args.ledger:
            # Describe the run as the SimTask it is equivalent to, so a
            # direct run and the identical matrix task share a ledger
            # fingerprint (see experiments/ledger.py).
            from .experiments.ledger import record_for_result
            from .experiments.parallel import SimTask
            from .obs.ledger import RunLedger
            task = SimTask(system=args.system, graphs=tuple(graphs),
                           config=config, scale=scale, serving=spec)
            ledger = RunLedger(args.ledger)
            ledger.append(record_for_result(task, result,
                                            wall_ms=run_wall_ms))
            print(f"ledger: {ledger.path} ({len(ledger)} record(s))")
        if tracer is not None:
            from .obs.perfetto import write_chrome_trace
            write_chrome_trace(tracer, args.trace)
            print(f"trace: {args.trace} ({len(tracer.events())} events; "
                  f"open at https://ui.perfetto.dev)")
        if metrics is not None:
            payload = metrics.to_json()
            if args.metrics_out:
                with open(args.metrics_out, "w") as fh:
                    fh.write(payload + "\n")
                print(f"metrics: {args.metrics_out}")
            if args.metrics:
                print(payload)
        if profiler is not None:
            print(profiler.report())
    finally:
        obs.reset()
    return 0


if __name__ == "__main__":
    sys.exit(main())
