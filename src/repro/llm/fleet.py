"""Cluster-scale fleet serving: replica routing and disaggregated pools.

One :class:`~repro.llm.serving.ServingSpec` describes what a *single* TP
group serves; production traffic is served by a fleet of such replicas
behind a router.  This module adds the fleet layer on top of the PR 5/8
serving machinery without touching the per-replica simulation:

* :class:`FleetSpec` — the fleet workload by value (replica count,
  routing policy, epoch granularity, optional prefill/decode
  disaggregation with explicit KV-handoff cost), frozen and built from
  primitives so it enters the experiment cache fingerprint verbatim.
* :class:`Router` — a deterministic, epoch-batched load balancer.
  Decisions are taken from *router-side bookkeeping only* (like a real
  L7 router, which never sees oracle replica state): round-robin,
  least-outstanding-KV against a decaying per-replica estimate, or
  prefix-affinity via seeded per-request prefix hashing.
* :func:`plan_fleet` / :func:`plan_decode` — split the offered stream
  into per-replica :class:`ReplicaSpec` runs.  Each replica then executes
  as one independent simulation (``SimTask.replica`` in
  :mod:`repro.experiments.parallel`), cacheable and byte-identical
  across ``--jobs`` settings; the router is the coarser-grained
  coordinator exchanging request batches at deterministic sim-time
  epochs.
* :func:`aggregate_fleet` — fold the per-replica outcomes back into
  fleet-level request stats, SLO attainment, goodput, and handoff
  traffic (:class:`FleetResult`).

Disaggregation model: with ``prefill_replicas = P > 0``, the first ``P``
replicas form the prefill pool (front door: admission control applies
here) and the rest the decode pool.  A request runs its prompt plus
first token on a prefill replica; its KV cache is then handed off as
explicit fabric traffic (``handoff_base_ns + bytes / handoff_gbps``) and
the remaining tokens decode *warm* on a decode replica (see
``Request.warm``).  Fidelity envelope and the epoch model are documented
in DESIGN.md §14.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import SimulationError, WorkloadError
from ..common.rng import RngPool
from .models import ModelConfig
from .serving import (
    Request,
    RequestStats,
    ServingSpec,
    generate_requests,
    kv_bytes_per_token,
    _exact_quantile,
)

#: Pluggable load-balancing policies (see :class:`Router`).
FLEET_POLICIES = ("round-robin", "least-kv", "prefix-affinity")

ROLE_REPLICA = "replica"
ROLE_PREFILL = "prefill"
ROLE_DECODE = "decode"


@dataclass(frozen=True)
class FleetSpec:
    """One fleet serving workload, fully described by value.

    ``serving`` is the *offered* stream plus the per-replica serving
    knobs (every replica is a full TP group with its own KV budget and
    batch limit); the fleet fields describe how the router splits that
    stream.  Frozen and primitive-valued, so it fingerprints canonically
    (cache schema v5).
    """

    serving: ServingSpec = field(default_factory=ServingSpec)
    replicas: int = 2
    policy: str = "round-robin"
    #: ``False`` bypasses the router entirely (the whole stream goes to
    #: replica 0 untouched) — the metamorphic anchor proving a 1-replica
    #: fleet is byte-identical to the single-session serving path.  Only
    #: meaningful (and only allowed) for an undisaggregated 1-replica
    #: fleet.
    routing: bool = True
    #: Router decision epoch in simulated milliseconds: assignments are
    #: committed in arrival-ordered batches at multiples of this
    #: interval, and the least-KV estimate decays once per epoch.
    epoch_ms: float = 0.25
    #: ``0`` = combined replicas; ``P > 0`` carves the fleet into ``P``
    #: prefill replicas and ``replicas - P`` decode replicas with KV
    #: handoff charged between the pools.
    prefill_replicas: int = 0
    #: Handoff fabric bandwidth (GB/s) and per-transfer base latency for
    #: shipping a request's KV cache from prefill to decode pool.
    handoff_gbps: float = 50.0
    handoff_base_ns: float = 2_000.0
    #: Prefix-affinity hash space: requests sharing a (seeded) prefix
    #: bucket land on the same replica absent degradation.
    prefix_buckets: int = 64
    #: least-kv: fraction of the router's outstanding-KV estimate that
    #: survives one epoch boundary (requests drain over time, and the
    #: router only ever sees its own accounting).
    router_decay: float = 0.5

    def __post_init__(self) -> None:
        def require(ok: bool, name: str, value, constraint: str) -> None:
            # ServingSpec's convention: name the offending field + value.
            if not ok:
                raise WorkloadError(
                    f"FleetSpec.{name}={value!r} {constraint}")

        require(self.replicas >= 1, "replicas", self.replicas,
                "must be >= 1")
        require(self.policy in FLEET_POLICIES, "policy", self.policy,
                f"must be one of {FLEET_POLICIES}")
        require(self.routing or (self.replicas == 1
                                 and self.prefill_replicas == 0),
                "routing", self.routing,
                "can only be disabled for a 1-replica fleet without "
                "disaggregation")
        require(self.epoch_ms > 0, "epoch_ms", self.epoch_ms,
                "must be > 0")
        require(0 <= self.prefill_replicas < self.replicas
                or self.prefill_replicas == 0,
                "prefill_replicas", self.prefill_replicas,
                f"needs 0 <= prefill_replicas < replicas={self.replicas} "
                f"(at least one decode replica must remain)")
        require(self.handoff_gbps > 0, "handoff_gbps", self.handoff_gbps,
                "must be > 0")
        require(self.handoff_base_ns >= 0, "handoff_base_ns",
                self.handoff_base_ns, "must be >= 0")
        require(self.prefix_buckets >= 1, "prefix_buckets",
                self.prefix_buckets, "must be >= 1")
        require(0.0 <= self.router_decay <= 1.0, "router_decay",
                self.router_decay, "must be in [0, 1]")

    @property
    def decode_replicas(self) -> int:
        """Decode-pool size (= ``replicas`` when not disaggregated)."""
        return self.replicas - self.prefill_replicas

    @property
    def disaggregated(self) -> bool:
        return self.prefill_replicas > 0

    def handoff_ns(self, kv_bytes: int) -> float:
        """Fabric latency of shipping ``kv_bytes`` of KV cache between
        the pools (base + serialization at ``handoff_gbps`` GB/s)."""
        return self.handoff_base_ns + kv_bytes / self.handoff_gbps


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

def prefix_bucket(seed: int, rid: int, buckets: int) -> int:
    """Seeded prefix hash of one request (stand-in for content hashing:
    the simulator carries no prompt text, so the bucket is drawn from
    the request's own RNG stream — deterministic per ``(seed, rid)`` and
    uniform across buckets)."""
    stream = RngPool(seed).stream(f"fleet.prefix.{rid}")
    return int(stream.integers(0, buckets))


class Router:
    """Deterministic epoch-batched router over one replica pool.

    Requests are processed in ``(arrival_ns, rid)`` order.  Before each
    decision the router advances to the request's epoch
    (``floor(arrival / epoch_ns)``), decaying its outstanding-KV
    estimates once per epoch crossed.  The decision then reads only
    router-side state — the round-robin cursor, the decayed KV
    estimates, or the request's prefix bucket — so routing is a pure
    function of the offered stream, never of simulated replica state.
    """

    def __init__(self, fleet: FleetSpec, pool: int, kvpt: int):
        if pool < 1:
            raise WorkloadError(f"router needs a pool >= 1, got {pool}")
        self.fleet = fleet
        self.pool = pool
        self.kvpt = kvpt
        self._epoch_ns = fleet.epoch_ms * 1e6
        self._cursor = 0
        self._epoch = 0
        #: Router-side outstanding-KV-bytes estimate per replica.
        self.outstanding: List[float] = [0.0] * pool

    def _advance_to(self, epoch: int) -> None:
        while self._epoch < epoch:
            decay = self.fleet.router_decay
            self.outstanding = [o * decay for o in self.outstanding]
            self._epoch += 1

    def route(self, request: Request, bucket: int) -> int:
        """Assign one request to a pool-local replica index."""
        self._advance_to(int(request.arrival_ns // self._epoch_ns))
        policy = self.fleet.policy
        if policy == "round-robin":
            idx = self._cursor % self.pool
            self._cursor += 1
        elif policy == "prefix-affinity":
            idx = bucket % self.pool
        else:   # least-kv: smallest estimate, lowest index breaks ties
            idx = min(range(self.pool),
                      key=lambda r: (self.outstanding[r], r))
        self.outstanding[idx] += (
            (request.prompt_len + request.output_len) * self.kvpt)
        return idx


# ---------------------------------------------------------------------------
# Per-replica run descriptions
# ---------------------------------------------------------------------------

#: Flat request encoding: (rid, arrival_ns, prompt_len, output_len, warm).
RequestTuple = Tuple[int, float, int, int, bool]


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's serving run, fully described by value.

    Picklable and canonical-JSON-friendly: it travels to pool workers as
    ``SimTask.replica`` and enters the v5 cache fingerprint verbatim
    (explicit request tuples included — two fleets routing differently
    never share replica cache entries).
    """

    role: str                                    # replica|prefill|decode
    index: int                                   # pool-local index
    spec: ServingSpec
    requests: Tuple[RequestTuple, ...]
    #: Embedded model for ad-hoc (non-Table-I) models, e.g. the tiny
    #: property-test model; ``None`` resolves ``spec.model`` by name in
    #: the worker.
    model: Optional[ModelConfig] = None

    def to_requests(self) -> List[Request]:
        return [Request(rid=int(r), arrival_ns=float(a),
                        prompt_len=int(p), output_len=int(o),
                        warm=bool(w))
                for r, a, p, o, w in self.requests]


def encode_requests(requests: Sequence[Request]
                    ) -> Tuple[RequestTuple, ...]:
    return tuple((r.rid, r.arrival_ns, r.prompt_len, r.output_len,
                  bool(r.warm)) for r in requests)


#: Flat per-request outcome encoding shipped back from workers in
#: ``RunSummary.request_stats``: (rid, arrival_ns, prompt_len,
#: output_len, first_token_ns|-1, finish_ns|-1, evictions, aborts, shed).
StatsTuple = Tuple[float, ...]


def encode_request_stats(serving) -> Tuple[StatsTuple, ...]:
    """Encode a :class:`ServingResult`'s per-request outcomes (finished
    and shed) as JSON-round-trippable flat tuples, sorted by rid."""
    rows: List[StatsTuple] = []
    for s in list(serving.stats) + list(serving.shed):
        rows.append((
            float(s.rid), float(s.arrival_ns), float(s.prompt_len),
            float(s.output_len),
            -1.0 if s.first_token_ns is None else float(s.first_token_ns),
            -1.0 if s.finish_ns is None else float(s.finish_ns),
            float(s.evictions), float(s.aborts), 1.0 if s.shed else 0.0))
    return tuple(sorted(rows, key=lambda r: r[0]))


def decode_request_stats(rows: Sequence[StatsTuple]) -> List[RequestStats]:
    """Rebuild :class:`RequestStats` from :func:`encode_request_stats`."""
    out: List[RequestStats] = []
    for rid, arrival, prompt, output, first, finish, ev, ab, shed in rows:
        out.append(RequestStats(
            rid=int(rid), arrival_ns=float(arrival),
            prompt_len=int(prompt), output_len=int(output),
            first_token_ns=None if first < 0 else float(first),
            finish_ns=None if finish < 0 else float(finish),
            evictions=int(ev), aborts=int(ab), shed=bool(shed)))
    return out


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

@dataclass
class FleetPlan:
    """The router's complete stage-1 decision for one fleet run."""

    fleet: FleetSpec
    model: ModelConfig
    #: The offered stream, in arrival order.
    requests: List[Request]
    #: rid -> pool-local stage-1 replica index (serve pool when combined,
    #: prefill pool when disaggregated).
    assignment: Dict[int, int]
    #: rid -> seeded prefix bucket (always computed — cheap, and the
    #: affinity property tests read it regardless of policy).
    buckets: Dict[int, int]
    #: One run per *non-empty* stage-1 replica (a replica that received
    #: no requests runs no simulation; aggregation fills in a zero row).
    stage1: List[ReplicaSpec]
    #: The ad-hoc model override passed to :func:`plan_fleet`, if any —
    #: re-embedded into stage-2 runs by :func:`plan_decode`.
    embedded: Optional[ModelConfig] = None
    #: Filled by :func:`plan_decode` for disaggregated fleets.
    decode_assignment: Dict[int, int] = field(default_factory=dict)
    #: rid -> (handoff_ns, handoff_bytes) charged between the pools.
    handoffs: Dict[int, Tuple[float, int]] = field(default_factory=dict)
    stage2: List[ReplicaSpec] = field(default_factory=list)


def _replica_specs(role: str, spec: ServingSpec,
                   model: Optional[ModelConfig], pool: int,
                   routed: Dict[int, List[Request]]) -> List[ReplicaSpec]:
    return [ReplicaSpec(role=role, index=idx, spec=spec,
                        requests=encode_requests(routed[idx]),
                        model=model)
            for idx in range(pool) if routed.get(idx)]


def plan_fleet(fleet: FleetSpec,
               model: Optional[ModelConfig] = None) -> FleetPlan:
    """Route the offered stream into per-replica stage-1 runs.

    ``model`` overrides the Table-I lookup of ``fleet.serving.model``
    (tests use ad-hoc tiny models); when given it is embedded in every
    :class:`ReplicaSpec` so pool workers need no registry lookup.
    """
    embedded = model
    if model is None:
        from .models import by_name
        model = by_name(fleet.serving.model)
    requests = generate_requests(fleet.serving)
    buckets = {r.rid: prefix_bucket(fleet.serving.seed, r.rid,
                                    fleet.prefix_buckets)
               for r in requests}

    if not fleet.routing:
        # Router bypassed: the stream reaches replica 0 untouched.
        plan = FleetPlan(fleet=fleet, model=model, requests=requests,
                         assignment={r.rid: 0 for r in requests},
                         buckets=buckets, stage1=[], embedded=embedded)
        plan.stage1 = _replica_specs(ROLE_REPLICA, fleet.serving, embedded,
                                     1, {0: requests})
        return plan

    if fleet.disaggregated:
        role, pool = ROLE_PREFILL, fleet.prefill_replicas
        # Prefill runs the prompt plus the first token; the rest of the
        # output decodes warm on the decode pool (or nowhere, for
        # 1-token requests).
        def stage1_request(r: Request) -> Request:
            return replace(r, output_len=1)
        spec1 = fleet.serving
    else:
        role, pool = ROLE_REPLICA, fleet.replicas

        def stage1_request(r: Request) -> Request:
            return r
        spec1 = fleet.serving

    router = Router(fleet, pool, kv_bytes_per_token(model))
    assignment: Dict[int, int] = {}
    routed: Dict[int, List[Request]] = {}
    for r in sorted(requests, key=lambda r: (r.arrival_ns, r.rid)):
        idx = router.route(r, buckets[r.rid])
        assignment[r.rid] = idx
        routed.setdefault(idx, []).append(stage1_request(r))
    return FleetPlan(fleet=fleet, model=model, requests=requests,
                     assignment=assignment, buckets=buckets,
                     stage1=_replica_specs(role, spec1, embedded, pool,
                                           routed),
                     embedded=embedded)


def plan_decode(plan: FleetPlan,
                prefill_stats: Sequence[RequestStats]) -> List[ReplicaSpec]:
    """Route prefill completions into warm decode runs (stage 2).

    ``prefill_stats`` is the union of every prefill replica's outcomes.
    Each finished multi-token request re-arrives at the decode pool at
    ``prefill_finish + handoff`` with its KV cache warm (prompt + first
    token) and its remaining ``output_len - 1`` tokens to decode; shed
    and 1-token requests never reach the pool.  Fills
    ``plan.decode_assignment`` / ``plan.handoffs`` / ``plan.stage2`` and
    returns the stage-2 replica runs.
    """
    fleet = plan.fleet
    if not fleet.disaggregated:
        raise WorkloadError(
            "plan_decode on an undisaggregated fleet "
            f"(prefill_replicas={fleet.prefill_replicas})")
    kvpt = kv_bytes_per_token(plan.model)
    originals = {r.rid: r for r in plan.requests}
    decode_requests: List[Request] = []
    for s in sorted(prefill_stats, key=lambda s: s.rid):
        if s.shed:
            continue
        orig = originals[s.rid]
        if orig.output_len <= 1:
            continue          # fully served at prefill, nothing to decode
        kv = (orig.prompt_len + 1) * kvpt
        handoff = fleet.handoff_ns(kv)
        plan.handoffs[s.rid] = (handoff, kv)
        decode_requests.append(Request(
            rid=s.rid, arrival_ns=s.finish_ns + handoff,
            prompt_len=orig.prompt_len + 1,
            output_len=orig.output_len - 1, warm=True))
    # Decode-pool spec: admission applied at the front door only — a warm
    # request carries sunk prefill *and* handoff work, so the decode pool
    # never sheds or defers it.
    spec2 = replace(fleet.serving, admission_policy="none")
    router = Router(fleet, fleet.decode_replicas, kvpt)
    routed: Dict[int, List[Request]] = {}
    for r in sorted(decode_requests, key=lambda r: (r.arrival_ns, r.rid)):
        idx = router.route(r, plan.buckets[r.rid])
        plan.decode_assignment[r.rid] = idx
        routed.setdefault(idx, []).append(r)
    plan.stage2 = _replica_specs(ROLE_DECODE, spec2, plan.embedded,
                                 fleet.decode_replicas, routed)
    return plan.stage2


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

@dataclass
class ReplicaOutcome:
    """One replica simulation's result, as the fleet coordinator sees it
    (decoded from a :class:`~repro.experiments.parallel.RunSummary`)."""

    role: str
    index: int
    makespan_ns: float
    details: Dict[str, float]
    stats: List[RequestStats]


@dataclass
class FleetRequestStats:
    """Fleet-level outcome of one offered request, stages combined."""

    rid: int
    arrival_ns: float
    prompt_len: int
    output_len: int
    replica: int                       # stage-1 (serve/prefill) replica
    decode_replica: Optional[int] = None
    first_token_ns: Optional[float] = None
    finish_ns: Optional[float] = None
    evictions: int = 0
    aborts: int = 0
    shed: bool = False
    handoff_ns: float = 0.0
    handoff_bytes: int = 0

    @property
    def ttft_ns(self) -> float:
        return self.first_token_ns - self.arrival_ns

    @property
    def e2e_ns(self) -> float:
        return self.finish_ns - self.arrival_ns


@dataclass
class FleetResult:
    """Outcome of one fleet serving run."""

    fleet: FleetSpec
    stats: List[FleetRequestStats]          # finished, sorted by rid
    shed: List[FleetRequestStats]           # rejected, sorted by rid
    per_replica: List[Dict[str, float]]     # one row per fleet slot
    makespan_ns: float
    handoff_bytes: int = 0
    handoff_ns_total: float = 0.0

    @property
    def offered(self) -> int:
        return len(self.stats) + len(self.shed)

    @property
    def total_output_tokens(self) -> int:
        return sum(s.output_len for s in self.stats)

    @property
    def tokens_per_s(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan_ns * 1e9

    def ttft_quantile_ns(self, q: float) -> float:
        return _exact_quantile([s.ttft_ns for s in self.stats], q)

    def slo_attainment(self, slo_ttft_ns: float) -> float:
        """Fraction of the offered stream finished within the TTFT SLO —
        shed requests count against attainment (same accounting as
        :meth:`ServingResult.slo_attainment`)."""
        if not self.offered:
            return 0.0
        ok = sum(1 for s in self.stats if s.ttft_ns <= slo_ttft_ns)
        return ok / self.offered

    def good_tokens(self, slo_ttft_ns: float) -> int:
        return sum(s.output_len for s in self.stats
                   if s.ttft_ns <= slo_ttft_ns)

    def goodput_tokens_per_s(self, slo_ttft_ns: float) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.good_tokens(slo_ttft_ns) / self.makespan_ns * 1e9

    def details(self) -> Dict[str, float]:
        """Flat fleet metrics (the figure/ledger projection)."""
        out = {
            "fleet.replicas": float(self.fleet.replicas),
            "fleet.prefill_replicas": float(self.fleet.prefill_replicas),
            "fleet.offered": float(self.offered),
            "fleet.finished": float(len(self.stats)),
            "fleet.shed": float(len(self.shed)),
            "fleet.tokens": float(self.total_output_tokens),
            "fleet.tokens_per_s": self.tokens_per_s,
            "fleet.makespan_ns": self.makespan_ns,
            "fleet.evictions": float(sum(s.evictions for s in self.stats)),
            "fleet.aborts": float(sum(s.aborts for s in self.stats)),
            "fleet.ttft_mean_ns":
                (sum(s.ttft_ns for s in self.stats) / len(self.stats)
                 if self.stats else 0.0),
            "fleet.ttft_p95_ns": self.ttft_quantile_ns(0.95),
            "fleet.handoff_bytes": float(self.handoff_bytes),
            "fleet.handoff_ns_total": self.handoff_ns_total,
        }
        if self.fleet.serving.slo_ttft_ms is not None:
            slo_ns = self.fleet.serving.slo_ttft_ms * 1e6
            out["fleet.slo_attainment"] = self.slo_attainment(slo_ns)
            out["fleet.goodput_tokens_per_s"] = \
                self.goodput_tokens_per_s(slo_ns)
        return out


def _zero_row(role: str, index: int) -> Dict[str, float]:
    return {"role": role, "index": float(index), "requests": 0.0,
            "shed": 0.0, "tokens": 0.0, "iterations": 0.0,
            "evictions": 0.0, "kv_peak_bytes": 0.0, "makespan_ns": 0.0}


def _replica_row(outcome: ReplicaOutcome) -> Dict[str, float]:
    d = outcome.details
    return {"role": outcome.role, "index": float(outcome.index),
            "requests": d.get("serving.requests", 0.0),
            "shed": d.get("serving.shed", 0.0),
            "tokens": d.get("serving.tokens", 0.0),
            "iterations": d.get("serving.iterations", 0.0),
            "evictions": d.get("serving.evictions", 0.0),
            "kv_peak_bytes": d.get("serving.kv_peak_bytes", 0.0),
            "makespan_ns": outcome.makespan_ns}


def aggregate_fleet(plan: FleetPlan,
                    outcomes: Sequence[ReplicaOutcome]) -> FleetResult:
    """Fold per-replica outcomes into the fleet-level result.

    Enforces request conservation while combining: every offered request
    must appear exactly once fleet-wide (finished or shed, stages
    joined), or the aggregation raises — the property the fleet
    invariant suite pins.
    """
    fleet = plan.fleet
    originals = {r.rid: r for r in plan.requests}
    stage1: Dict[int, RequestStats] = {}
    decode: Dict[int, RequestStats] = {}
    for outcome in outcomes:
        sink = decode if outcome.role == ROLE_DECODE else stage1
        for s in outcome.stats:
            if s.rid in sink:
                raise SimulationError(
                    f"fleet conservation violated: request {s.rid} "
                    f"reported twice by the {outcome.role} pool")
            sink[s.rid] = s

    finished: List[FleetRequestStats] = []
    shed: List[FleetRequestStats] = []
    handoff_bytes = 0
    handoff_ns_total = 0.0
    for rid in sorted(originals):
        orig = originals[rid]
        s1 = stage1.get(rid)
        if s1 is None:
            raise SimulationError(
                f"fleet conservation violated: request {rid} vanished "
                f"(never reported by its stage-1 replica)")
        combined = FleetRequestStats(
            rid=rid, arrival_ns=orig.arrival_ns,
            prompt_len=orig.prompt_len, output_len=orig.output_len,
            replica=plan.assignment[rid],
            first_token_ns=s1.first_token_ns, finish_ns=s1.finish_ns,
            evictions=s1.evictions, aborts=s1.aborts, shed=s1.shed)
        if s1.shed:
            shed.append(combined)
            continue
        if fleet.disaggregated and orig.output_len > 1:
            s2 = decode.get(rid)
            if s2 is None:
                raise SimulationError(
                    f"fleet conservation violated: request {rid} "
                    f"prefilled but never decoded")
            hand_ns, hand_bytes = plan.handoffs[rid]
            combined.decode_replica = plan.decode_assignment[rid]
            combined.finish_ns = s2.finish_ns
            combined.evictions += s2.evictions
            combined.aborts += s2.aborts
            combined.handoff_ns = hand_ns
            combined.handoff_bytes = hand_bytes
            handoff_bytes += hand_bytes
            handoff_ns_total += hand_ns
        finished.append(combined)
    extra = (set(stage1) | set(decode)) - set(originals)
    if extra:
        raise SimulationError(
            f"fleet conservation violated: replicas reported unknown "
            f"request(s) {sorted(extra)}")

    rows: Dict[Tuple[str, int], Dict[str, float]] = {}
    if fleet.disaggregated:
        for i in range(fleet.prefill_replicas):
            rows[(ROLE_PREFILL, i)] = _zero_row(ROLE_PREFILL, i)
        for i in range(fleet.decode_replicas):
            rows[(ROLE_DECODE, i)] = _zero_row(ROLE_DECODE, i)
    else:
        for i in range(fleet.replicas):
            rows[(ROLE_REPLICA, i)] = _zero_row(ROLE_REPLICA, i)
    for outcome in outcomes:
        rows[(outcome.role, outcome.index)] = _replica_row(outcome)
    order = {ROLE_REPLICA: 0, ROLE_PREFILL: 1, ROLE_DECODE: 2}
    per_replica = [rows[k] for k in sorted(
        rows, key=lambda k: (order.get(k[0], 9), k[1]))]
    makespan = max((o.makespan_ns for o in outcomes), default=0.0)
    return FleetResult(fleet=fleet, stats=finished, shed=shed,
                       per_replica=per_replica, makespan_ns=makespan,
                       handoff_bytes=handoff_bytes,
                       handoff_ns_total=handoff_ns_total)
