"""Model-level accounting for tensor-parallel transformers.

Aggregates the quantities the paper's background section leans on:
per-layer and per-model parameter counts, arithmetic work, communication
volume per TP style, and per-GPU activation memory — including the claim
that motivates TP+SP (Section II-A): *"TP with SP can partition more
operations (e.g., LayerNorm) and hence reduces memory consumption for
activations across GPUs."*
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import WorkloadError
from .graph import OpKind
from .models import ModelConfig
from .tp import basic_forward_layer, sp_forward_layer


def layer_parameters(model: ModelConfig) -> int:
    """Weights of one transformer layer (attention + FFN, no embeddings)."""
    h, f = model.hidden, model.ffn_hidden
    attention = 3 * h * h + h * h            # QKV + output projection
    ffn = 2 * h * f                          # up + down projections
    norms = 4 * h                            # two LayerNorms (scale+bias)
    return attention + ffn + norms


def model_parameters(model: ModelConfig) -> int:
    """Whole-model weight count (layers only)."""
    return model.layers * layer_parameters(model)


def layer_flops_per_gpu(model: ModelConfig, tp: int,
                        style: str = "sp") -> float:
    """Per-GPU arithmetic work of one forward layer."""
    graph = (sp_forward_layer(model, tp) if style == "sp"
             else basic_forward_layer(model, tp))
    return graph.total_flops()


def layer_comm_bytes(model: ModelConfig, tp: int, style: str = "sp") -> int:
    """Global bytes moved by one forward layer's collectives."""
    graph = (sp_forward_layer(model, tp) if style == "sp"
             else basic_forward_layer(model, tp))
    return graph.total_comm_bytes()


@dataclass(frozen=True)
class ActivationFootprint:
    """Per-GPU activation bytes of one layer under a TP style."""

    style: str
    sharded_bytes: int       # activations held at 1/tp (sequence-sharded)
    replicated_bytes: int    # activations held in full on every GPU

    @property
    def total_bytes(self) -> int:
        return self.sharded_bytes + self.replicated_bytes


def activation_footprint(model: ModelConfig, tp: int,
                         style: str = "sp") -> ActivationFootprint:
    """Per-GPU activation memory for one layer's saved tensors.

    Counted tensors: the layer input, the attention output (post
    projection), the FFN intermediate, and the layer output.  Under Basic
    TP the [tokens, hidden] tensors around LayerNorm/dropout are
    replicated on every GPU; under TP+SP they are sequence-sharded to
    1/tp — the memory saving the paper credits SP with.
    """
    if tp < 1:
        raise WorkloadError(f"tp must be >= 1, got {tp}")
    act = model.tokens * model.hidden * model.dtype_bytes
    ffn_mid = model.tokens * (model.ffn_hidden // tp) * model.dtype_bytes
    if style == "sp":
        # Input, attention output, layer output: all sequence-sharded.
        return ActivationFootprint(style="sp",
                                   sharded_bytes=3 * act // tp + ffn_mid,
                                   replicated_bytes=0)
    if style == "basic":
        # The same three [tokens, hidden] tensors live in full per GPU.
        return ActivationFootprint(style="basic",
                                   sharded_bytes=ffn_mid,
                                   replicated_bytes=3 * act)
    raise WorkloadError(f"unknown TP style {style!r}")


def sp_memory_saving(model: ModelConfig, tp: int) -> float:
    """Fraction of per-GPU activation memory TP+SP saves over Basic TP."""
    basic = activation_footprint(model, tp, "basic").total_bytes
    sp = activation_footprint(model, tp, "sp").total_bytes
    return 1.0 - sp / basic


#: Default arithmetic intensity of the graph builders' vector ops
#: (:attr:`repro.llm.graph.LogicalOp.flops_per_element`).
VECTOR_FLOPS_PER_ELEMENT = 8.0


def analytic_gemm_flops(model: ModelConfig, tp: int,
                        phase: str = "fwd") -> float:
    """Closed-form per-GPU GEMM work of one layer (style-independent).

    Both TP styles run the same six forward GEMMs (QKV, score, context,
    projection, FFN1, FFN2) and the same twelve backward dgrad/wgrad GEMMs;
    only the communication pattern around them differs.  These formulas are
    derived independently of the graph builders so the metamorphic tests
    can cross-check one against the other.
    """
    m, h, f, s = model.tokens, model.hidden, model.ffn_hidden, model.seq_len
    if phase == "fwd":
        # 2m(3h/tp)h + 2ms(h/tp) + 2m(h/tp)s + 2mh(h/tp) + 2m(f/tp)h
        # + 2mh(f/tp)
        return (2.0 * m / tp) * (4 * h * h + 2 * s * h + 2 * h * f)
    if phase == "bwd":
        # dgrad+wgrad pairs: FFN2, FFN1, projection, two attention products,
        # QKV — each pair costs twice its forward GEMM.
        return (4.0 * m / tp) * (4 * h * h + 2 * s * h + 2 * h * f)
    raise WorkloadError(f"unknown phase {phase!r}; expected 'fwd' or 'bwd'")


def analytic_vector_elements(model: ModelConfig, tp: int,
                             style: str = "sp", phase: str = "fwd") -> float:
    """Closed-form per-GPU vector-op element count of one layer.

    Under TP+SP the LayerNorm/dropout tensors are sequence-sharded to
    ``1/tp``; under Basic TP they are replicated in full.  The softmax and
    GeLU intermediates are head-/column-sharded in both styles.
    """
    m, h, f = model.tokens, model.hidden, model.ffn_hidden
    softmax = model.batch * (model.heads // tp) * model.seq_len ** 2
    if style not in ("sp", "basic"):
        raise WorkloadError(f"unknown TP style {style!r}")
    ln_scale = tp if style == "sp" else 1
    if phase == "fwd":
        # ln1 + dropadd1 + ln2 + dropadd2, softmax, gelu.
        return 4 * m * h / ln_scale + softmax + m * f / tp
    if phase == "bwd":
        # dropadd2_bwd + ln2_bwd + ln1_bwd, softmax_bwd, gelu_bwd.
        return 3 * m * h / ln_scale + softmax + m * f / tp
    raise WorkloadError(f"unknown phase {phase!r}; expected 'fwd' or 'bwd'")


def analytic_layer_flops(model: ModelConfig, tp: int, style: str = "sp",
                         phase: str = "fwd") -> float:
    """Closed-form per-GPU arithmetic work of one layer graph.

    Must equal ``graph.total_flops()`` of the corresponding
    :mod:`repro.llm.tp` builder exactly — the property suite holds the two
    derivations against each other.
    """
    return (analytic_gemm_flops(model, tp, phase) +
            VECTOR_FLOPS_PER_ELEMENT *
            analytic_vector_elements(model, tp, style, phase))


def communication_summary(model: ModelConfig, tp: int) -> dict:
    """Per-layer traffic/compute overview for both TP styles."""
    out = {}
    for style in ("basic", "sp"):
        out[style] = {
            "flops_per_gpu": layer_flops_per_gpu(model, tp, style),
            "comm_bytes": layer_comm_bytes(model, tp, style),
            "activation_bytes_per_gpu":
                activation_footprint(model, tp, style).total_bytes,
        }
    return out
