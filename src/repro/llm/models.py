"""LLM configurations (paper Table I plus the Table II full-scale variant).

The paper evaluates *scaled-down* variants: hidden and FFN dimensions at 50%
of the corresponding full-size models, matched with a 50%-SM GPU, which
preserves the computation-to-communication ratio (validated in Table II).
The configs below are the Table I numbers verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..common.errors import ConfigError


@dataclass(frozen=True)
class ModelConfig:
    """One transformer model as evaluated in the paper."""

    name: str
    hidden: int
    ffn_hidden: int
    heads: int
    seq_len: int
    batch: int
    layers: int = 32
    dtype_bytes: int = 2                 # bf16 activations/weights

    def __post_init__(self) -> None:
        for field_name in ("hidden", "ffn_hidden", "heads", "seq_len",
                           "batch", "layers", "dtype_bytes"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{self.name}: {field_name} must be "
                                  f"positive")

    @property
    def head_dim(self) -> int:
        # Table I's Mega-GPT-4B pairs hidden=2048 with 24 heads; follow the
        # paper and round down rather than reject the published config.
        return self.hidden // self.heads

    @property
    def tokens(self) -> int:
        """Row dimension M of the activation matrices (= seq * batch)."""
        return self.seq_len * self.batch

    def activation_bytes(self) -> int:
        """Size of one [tokens, hidden] activation tensor."""
        return self.tokens * self.hidden * self.dtype_bytes

    def scaled(self, tokens_fraction: float) -> "ModelConfig":
        """A copy with the token count scaled (simulation-budget knob).

        Scaling tokens preserves the computation-to-communication ratio of
        every per-layer operator (both are linear in M), so speedup *shapes*
        are unchanged while event counts drop proportionally.
        """
        if not 0 < tokens_fraction <= 1:
            raise ConfigError(
                f"tokens_fraction must be in (0, 1], got {tokens_fraction}")
        new_seq = max(128, int(self.seq_len * tokens_fraction))
        return replace(self, seq_len=new_seq)


MEGA_GPT_4B = ModelConfig(name="Mega-GPT-4B", hidden=2048, ffn_hidden=8192,
                          heads=24, seq_len=1024, batch=16, layers=32)
MEGA_GPT_8B = ModelConfig(name="Mega-GPT-8B", hidden=3072, ffn_hidden=12288,
                          heads=32, seq_len=1024, batch=12, layers=36)
LLAMA_7B = ModelConfig(name="LLaMA-7B", hidden=4096, ffn_hidden=11264,
                       heads=32, seq_len=3072, batch=3, layers=32)

#: The Table II validation pair: a full-size model on a full-scale GPU
#: versus its half configuration (LLaMA-7B above) on a half-scale GPU.
LLAMA_FULL = ModelConfig(name="LLaMA-full", hidden=8192, ffn_hidden=22528,
                         heads=64, seq_len=3072, batch=3, layers=32)

TABLE_I: Dict[str, ModelConfig] = {
    m.name: m for m in (MEGA_GPT_4B, MEGA_GPT_8B, LLAMA_7B)
}


def by_name(name: str) -> ModelConfig:
    """Look up a model by its Table I name."""
    if name in TABLE_I:
        return TABLE_I[name]
    if name == LLAMA_FULL.name:
        return LLAMA_FULL
    raise ConfigError(f"unknown model {name!r}; "
                      f"known: {sorted(TABLE_I) + [LLAMA_FULL.name]}")
