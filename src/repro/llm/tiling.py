"""Lowering logical ops to executable kernels (the CUTLASS stand-in).

This module turns :class:`~repro.llm.graph.LogicalOp` nodes into
:class:`~repro.gpu.kernels.KernelInstance` objects:

* plain compute kernels (GEMM tiles / vector ops) for barrier-style systems,
* **GEMM-RS** kernels whose TBs emit per-tile reduction requests as an
  epilogue (write semantics), and
* **AG-GEMM** kernels whose TBs read remote row blocks on demand
  (read semantics),

with the symbolic address expressions the CAIS compiler analyses attached,
so mergeability decisions really flow compiler -> ISA -> switch.

Activation addressing: every logical tensor gets a unique id; row block
``mb`` of a sequence-sharded tensor lives on GPU ``mb // blocks_per_shard``
at a deterministic offset.  Tiles and row-block chunks are the merge/cache
granularity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from ..cais import compiler as cc
from ..common.config import GpuSpec
from ..common.errors import WorkloadError
from ..gpu.kernels import KernelInstance
from ..gpu.remote_ops import RemoteOp, RemoteOpKind, Transport
from ..interconnect.message import Address
from .graph import GemmShape, LogicalOp, OpKind

#: Address-space stride separating logical tensors.
TENSOR_STRIDE = 1 << 40

_tensor_ids = itertools.count(1)


def reset_tensor_ids() -> None:
    """Restart tensor-id allocation (call once per simulation)."""
    global _tensor_ids
    _tensor_ids = itertools.count(1)


@dataclass(frozen=True)
class TilingConfig:
    """Lowering granularity knobs.

    ``red_chunk_bytes`` packetizes a tile's reduction epilogue: one output
    tile becomes several ``red.cais`` messages, which is closer to the
    hardware's 128 B packet merging and keeps individual merge sessions
    small (a whole 32 KB tile as one session would monopolize the 40 KB
    per-port table).
    """

    tile: int = 128                  # GEMM tile edge (CUTLASS-like)
    chunk_bytes: int = 65536         # AG streaming quantum per message
    red_chunk_bytes: int = 8192      # reduction packetization quantum
    vector_elems_per_tb: int = 262144

    def __post_init__(self) -> None:
        if (self.tile <= 0 or self.chunk_bytes <= 0 or
                self.red_chunk_bytes <= 0):
            raise WorkloadError(f"invalid tiling config {self}")


def reduction_sub_chunks(tile_bytes: int, red_chunk_bytes: int) -> Tuple[int, int]:
    """(count, bytes_per_sub_chunk) for a packetized tile reduction."""
    count = max(1, ceil_div(tile_bytes, red_chunk_bytes))
    return count, ceil_div(tile_bytes, count)


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

# Both cost functions are pure in their (hashable) arguments and the
# experiment matrix re-lowers the same handful of op shapes thousands of
# times — once per kernel per system per run — so the results are
# memoized (SimProfiler showed lowering as a repeated hot spot).
# ``GpuSpec`` is a frozen dataclass, hence hashable; distinct shapes per
# campaign number in the dozens, so the caches stay tiny.

@lru_cache(maxsize=None)
def gemm_tile_time_ns(tile_m: int, tile_n: int, k: int,
                      spec: GpuSpec) -> float:
    """Sustained time for one output tile on one resident-TB slot."""
    flops = 2.0 * tile_m * tile_n * k
    rate = (spec.tensor_flops_per_sm_cycle * spec.clock_ghz *
            spec.gemm_efficiency / spec.tb_slots_per_sm)
    return flops / rate


@lru_cache(maxsize=None)
def vector_tb_time_ns(elements: float, flops_per_element: float,
                      spec: GpuSpec) -> float:
    """Sustained time for ``elements`` of vector work on one TB slot."""
    rate = (spec.vector_flops_per_sm_cycle * spec.clock_ghz /
            spec.tb_slots_per_sm)
    return elements * flops_per_element / rate


# ---------------------------------------------------------------------------
# Activation layout
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ActivationLayout:
    """A [rows, cols] activation tensor sharded by rows across the TP group.

    Row blocks are assigned to GPUs contiguously; when the block count does
    not divide evenly, the first ``num_blocks % tp`` shards carry one extra
    block (the usual ragged contiguous partition).
    """

    tensor_id: int
    rows: int
    row_bytes: int
    tp: int
    row_block: int = 128

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.row_bytes <= 0 or self.tp < 1:
            raise WorkloadError(f"invalid layout {self}")
        if self.num_blocks < self.tp:
            raise WorkloadError(
                f"layout has {self.num_blocks} row blocks for {self.tp} "
                f"GPUs; shrink row_block or grow the tensor")

    @property
    def num_blocks(self) -> int:
        return ceil_div(self.rows, self.row_block)

    @property
    def _base(self) -> int:
        return self.num_blocks // self.tp

    @property
    def _extra(self) -> int:
        return self.num_blocks % self.tp

    @property
    def blocks_per_shard(self) -> int:
        """Largest shard size (shards differ by at most one block)."""
        return self._base + (1 if self._extra else 0)

    @property
    def block_bytes(self) -> int:
        return self.row_block * self.row_bytes

    def shard_blocks(self, gpu: int) -> int:
        """Number of row blocks homed on ``gpu``."""
        return self._base + (1 if gpu < self._extra else 0)

    def shard_start(self, gpu: int) -> int:
        """First row block homed on ``gpu``."""
        return gpu * self._base + min(gpu, self._extra)

    def home_of_block(self, mb: int) -> int:
        """The GPU owning row block ``mb`` (contiguous sharding)."""
        if not 0 <= mb < self.num_blocks:
            raise WorkloadError(f"row block {mb} out of range")
        boundary = self._extra * (self._base + 1)
        if mb < boundary:
            return mb // (self._base + 1)
        return self._extra + (mb - boundary) // self._base

    def address(self, mb: int, chunk: int, chunk_bytes: int) -> Address:
        """Fabric address of the ``chunk``-th quantum of row block ``mb``."""
        offset = (self.tensor_id * TENSOR_STRIDE +
                  mb * self.block_bytes + chunk * chunk_bytes)
        return Address(self.home_of_block(mb), offset)

    def chunks_per_block(self, chunk_bytes: int) -> int:
        return ceil_div(self.block_bytes, chunk_bytes)


def make_layout(rows: int, row_bytes: int, tp: int,
                row_block: int = 128) -> ActivationLayout:
    """Allocate a fresh tensor id and build its layout."""
    return ActivationLayout(tensor_id=next(_tensor_ids), rows=rows,
                            row_bytes=row_bytes, tp=tp, row_block=row_block)


# ---------------------------------------------------------------------------
# Plain compute kernels (barrier-style lowering)
# ---------------------------------------------------------------------------

def compute_kernel(op: LogicalOp, spec: GpuSpec,
                   tiling: Optional[TilingConfig] = None,
                   launch_overhead_ns: float = 0.0) -> KernelInstance:
    """Lower a GEMM or VECTOR op to a compute-only kernel."""
    tiling = tiling or TilingConfig()
    if op.kind is OpKind.GEMM:
        shape = op.gemm
        grid = (ceil_div(shape.m, tiling.tile), ceil_div(shape.n, tiling.tile))
        tb_ns = gemm_tile_time_ns(tiling.tile, tiling.tile, shape.k, spec)
        return KernelInstance(name=op.name, grid=grid, tb_pre_ns=tb_ns,
                              launch_overhead_ns=launch_overhead_ns)
    if op.kind is OpKind.VECTOR:
        blocks = max(1, ceil_div(op.elements, tiling.vector_elems_per_tb))
        per_tb = op.elements / blocks
        tb_ns = vector_tb_time_ns(per_tb, op.flops_per_element, spec)
        return KernelInstance(name=op.name, grid=(blocks,), tb_pre_ns=tb_ns,
                              launch_overhead_ns=launch_overhead_ns,
                              compute_class="vector")
    raise WorkloadError(f"cannot lower {op.kind} as a compute kernel")


# ---------------------------------------------------------------------------
# Fused GEMM-RS (reduction epilogue, write semantics)
# ---------------------------------------------------------------------------

def gemm_rs_kernel(op: LogicalOp, out_layout: ActivationLayout,
                   spec: GpuSpec, tiling: TilingConfig, tp: int,
                   transport: Transport = Transport.CAIS,
                   pool: str = "default",
                   launch_overhead_ns: float = 0.0) -> KernelInstance:
    """Row-parallel GEMM whose TBs push per-tile reduction requests.

    The output tensor is [m, n_global] reduced+scattered by row blocks; each
    TB ``(mb, nb)`` computes one partial tile and issues one reduction to
    the tile's home GPU.  Tiles homed locally contribute with a local add.
    """
    shape = op.gemm
    tile = tiling.tile
    grid = (ceil_div(shape.m, tile), ceil_div(shape.n, tile))
    tile_bytes = out_layout.block_bytes // grid[1]
    tb_ns = gemm_tile_time_ns(tile, tile, shape.k, spec)
    subs, sub_bytes = reduction_sub_chunks(tile_bytes, tiling.red_chunk_bytes)

    def reduces(gpu: int, bidx: Tuple[int, ...]) -> List[RemoteOp]:
        mb, nb = bidx
        base = out_layout.address(mb, nb, tile_bytes)
        return [RemoteOp(RemoteOpKind.REDUCE,
                         Address(base.home_gpu,
                                 base.offset + c * sub_bytes),
                         sub_bytes, transport=transport, expected=tp - 1)
                for c in range(subs)]

    # Symbolic form for the compiler: home = mb // blocks_per_shard,
    # offset = base + mb*block + nb*tile — no gpuId: mergeable.
    ir = cc.KernelIR(name=op.name, grid=grid, mem_instrs=(
        cc.MemInstr(cc.MemOpKind.REDUCE,
                    home_expr=cc.BlockIdx(0) // out_layout.blocks_per_shard,
                    offset_expr=(cc.Const(out_layout.tensor_id *
                                          TENSOR_STRIDE) +
                                 cc.BlockIdx(0) * out_layout.block_bytes +
                                 cc.BlockIdx(1) * tile_bytes),
                    chunk_bytes=tile_bytes),))
    compiled = cc.compile_kernel(ir)
    return KernelInstance(name=op.name, grid=grid, tb_pre_ns=tb_ns,
                          remote_reduces=reduces, compiled=compiled,
                          pool=pool, launch_overhead_ns=launch_overhead_ns,
                          block_order=home_rotated_order(out_layout, grid))


def home_rotated_order(layout: ActivationLayout,
                       grid: Tuple[int, int]) -> List[Tuple[int, int]]:
    """Merging-aware TB ordering for reduction-producing kernels.

    Row-major order sends an entire row block's tiles to one home GPU in a
    run; the home itself skips those sends and its stream drifts a whole
    region ahead of its peers.  Rotating across homes tile-by-tile keeps
    every GPU's send stream aligned to within one tile.
    """
    mb_count, nb_count = grid
    by_home: List[List[int]] = [[] for _ in range(layout.tp)]
    for mb in range(mb_count):
        by_home[layout.home_of_block(mb)].append(mb)
    order: List[Tuple[int, int]] = []
    depth = max((len(rows) for rows in by_home), default=0)
    for j in range(depth):
        for nb in range(nb_count):
            for home in range(layout.tp):
                if j < len(by_home[home]):
                    order.append((by_home[home][j], nb))
    return order


def rs_tokens(out_layout: ActivationLayout, num_col_tiles: int,
              mb: int) -> List[Tuple]:
    """Dependency tokens for row block ``mb`` of a GEMM-RS output."""
    return [("red", out_layout.tensor_id, mb, nb)
            for nb in range(num_col_tiles)]


# ---------------------------------------------------------------------------
# LayerNorm on the reduced shard
# ---------------------------------------------------------------------------

def ln_kernel(op: LogicalOp, in_layout: ActivationLayout,
              out_layout: ActivationLayout, num_col_tiles: int,
              spec: GpuSpec, tiling: TilingConfig,
              gated_on_rs: bool = True, pool: str = "default",
              launch_overhead_ns: float = 0.0) -> KernelInstance:
    """Per-row-block LayerNorm over the locally-homed shard.

    With ``gated_on_rs`` each TB waits for its row block's reduction tokens
    (fine-grained TB-level dependency, Fig. 9); completion signals
    ``("ln", out_tensor, mb)`` for downstream AG-GEMM TBs.
    """
    grid = (in_layout.blocks_per_shard,)
    row_elems = in_layout.block_bytes // 2        # dtype-agnostic enough
    tb_ns = vector_tb_time_ns(row_elems, op.flops_per_element, spec)

    def deps(gpu: int, bidx: Tuple[int, ...]) -> List[Tuple]:
        if not gated_on_rs or bidx[0] >= in_layout.shard_blocks(gpu):
            return []                 # padding TB on a short shard
        mb = in_layout.shard_start(gpu) + bidx[0]
        return rs_tokens(in_layout, num_col_tiles, mb)

    return KernelInstance(name=op.name, grid=grid, tb_pre_ns=tb_ns,
                          tb_deps=deps, pool=pool,
                          launch_overhead_ns=launch_overhead_ns,
                          compute_class="vector")


# ---------------------------------------------------------------------------
# Replicated vector op over an AllReduce result (AR-GEMM read semantics)
# ---------------------------------------------------------------------------

def replicated_vector_kernel(op: LogicalOp, in_layout: ActivationLayout,
                             num_col_tiles: int, spec: GpuSpec,
                             tiling: TilingConfig, tp: int,
                             transport: Transport = Transport.CAIS,
                             gated_on_rs: bool = True,
                             pool: str = "default",
                             launch_overhead_ns: float = 0.0
                             ) -> KernelInstance:
    """A vector op every GPU runs over the *full* AllReduce result.

    Basic TP replicates dropout/LayerNorm after each AllReduce: each GPU
    needs every row block.  Under CAIS the AllReduce dissolves — rows are
    reduced to their home (``red.cais`` epilogue of the producer GEMM) and
    each consumer TB pulls its row on demand with ``ld.cais`` (the paper's
    AR-GEMM read+write semantics, Fig. 1(c)).  TB ``(mb,)`` optionally
    gates on row ``mb``'s reduction tokens and loads it when remote.
    """
    grid = (in_layout.num_blocks,)
    row_elems = in_layout.block_bytes // 2
    tb_ns = vector_tb_time_ns(row_elems, op.flops_per_element, spec)
    chunks = in_layout.chunks_per_block(tiling.chunk_bytes)

    def loads(gpu: int, bidx: Tuple[int, ...]) -> List[RemoteOp]:
        mb = bidx[0]
        if in_layout.home_of_block(mb) == gpu:
            return []
        return [RemoteOp(RemoteOpKind.LOAD,
                         in_layout.address(mb, c, tiling.chunk_bytes),
                         tiling.chunk_bytes, transport=transport,
                         expected=tp - 1)
                for c in range(chunks)]

    def deps(gpu: int, bidx: Tuple[int, ...]) -> List[Tuple]:
        if not gated_on_rs:
            return []
        return rs_tokens(in_layout, num_col_tiles, bidx[0])

    ir = cc.KernelIR(name=op.name, grid=grid, mem_instrs=(
        cc.MemInstr(cc.MemOpKind.LOAD,
                    home_expr=cc.BlockIdx(0) // in_layout.blocks_per_shard,
                    offset_expr=(cc.Const(in_layout.tensor_id *
                                          TENSOR_STRIDE) +
                                 cc.BlockIdx(0) * in_layout.block_bytes),
                    chunk_bytes=tiling.chunk_bytes),))
    compiled = cc.compile_kernel(ir)
    return KernelInstance(name=op.name, grid=grid, tb_pre_ns=0.0,
                          tb_post_ns=tb_ns, remote_loads=loads,
                          tb_deps=deps, compiled=compiled, pool=pool,
                          launch_overhead_ns=launch_overhead_ns,
                          compute_class="vector")


def row_gated_gemm_kernel(op: LogicalOp, token_tag: str, tensor_id: int,
                          spec: GpuSpec, tiling: TilingConfig,
                          per_gpu_tokens: bool = True,
                          pool: str = "default",
                          launch_overhead_ns: float = 0.0
                          ) -> KernelInstance:
    """A plain-compute GEMM whose TBs gate on per-row readiness tokens.

    Consumers of a replicated AllReduce result have all data locally once
    the replicated vector TB for the row finished on their GPU; TB
    ``(mb, nb)`` waits for ``(token_tag, tensor_id, mb[, gpu])``.
    """
    shape = op.gemm
    tile = tiling.tile
    grid = (ceil_div(shape.m, tile), ceil_div(shape.n, tile))
    tb_ns = gemm_tile_time_ns(tile, tile, shape.k, spec)

    def deps(gpu: int, bidx: Tuple[int, ...]) -> List[Tuple]:
        if per_gpu_tokens:
            return [(token_tag, tensor_id, bidx[0], gpu)]
        return [(token_tag, tensor_id, bidx[0])]

    return KernelInstance(name=op.name, grid=grid, tb_pre_ns=tb_ns,
                          tb_deps=deps, pool=pool,
                          launch_overhead_ns=launch_overhead_ns)


# ---------------------------------------------------------------------------
# Fused AG-GEMM (on-demand remote reads, read semantics)
# ---------------------------------------------------------------------------

def ag_gemm_kernel(op: LogicalOp, in_layout: ActivationLayout,
                   spec: GpuSpec, tiling: TilingConfig, tp: int,
                   transport: Transport = Transport.CAIS,
                   gated_on_ln: bool = True, pool: str = "default",
                   launch_overhead_ns: float = 0.0) -> KernelInstance:
    """Column-parallel GEMM whose TBs pull remote row blocks on demand.

    TB ``(mb, nb)`` needs the full row block ``mb`` of the gathered input;
    when homed remotely it issues one load per chunk quantum (served once
    per GPU by the chunk cache, merged across GPUs by the switch).
    """
    shape = op.gemm
    tile = tiling.tile
    grid = (ceil_div(shape.m, tile), ceil_div(shape.n, tile))
    tb_ns = gemm_tile_time_ns(tile, tile, shape.k, spec)
    chunks = in_layout.chunks_per_block(tiling.chunk_bytes)

    def loads(gpu: int, bidx: Tuple[int, ...]) -> List[RemoteOp]:
        mb = bidx[0]
        if in_layout.home_of_block(mb) == gpu:
            return []
        return [RemoteOp(RemoteOpKind.LOAD,
                         in_layout.address(mb, c, tiling.chunk_bytes),
                         tiling.chunk_bytes, transport=transport,
                         expected=tp - 1)
                for c in range(chunks)]

    def deps(gpu: int, bidx: Tuple[int, ...]) -> List[Tuple]:
        if not gated_on_ln:
            return []
        return [("ln", in_layout.tensor_id, bidx[0])]

    ir = cc.KernelIR(name=op.name, grid=grid, mem_instrs=(
        cc.MemInstr(cc.MemOpKind.LOAD,
                    home_expr=cc.BlockIdx(0) // in_layout.blocks_per_shard,
                    offset_expr=(cc.Const(in_layout.tensor_id *
                                          TENSOR_STRIDE) +
                                 cc.BlockIdx(0) * in_layout.block_bytes),
                    chunk_bytes=tiling.chunk_bytes),))
    compiled = cc.compile_kernel(ir)
    return KernelInstance(name=op.name, grid=grid, tb_pre_ns=0.0,
                          tb_post_ns=tb_ns, remote_loads=loads,
                          tb_deps=deps, compiled=compiled, pool=pool,
                          launch_overhead_ns=launch_overhead_ns)
