"""Tensor-parallel layer graph builders (paper Fig. 1(a)(b)).

Two TP styles:

* **Basic TP** (Megatron [49]): column-parallel QKV / FFN1, row-parallel
  projection / FFN2, AllReduce after each row-parallel GEMM (``f``/``f̄``
  operators).  LayerNorm and dropout are replicated.
* **TP with Sequence Parallelism** (Korthikanti et al. [25]): activations
  are sharded along the sequence dimension outside the GEMMs; AllReduce
  splits into ReduceScatter + AllGather (``g``/``ḡ``), and LN/dropout run on
  1/K of the rows.

The backward graphs mirror the forward communication (AG <-> RS) and carry
both dgrad and wgrad GEMMs.  The Fig. 12 sub-layers (GEMM-RS + LN +
AG-GEMM chains) are available standalone through :func:`sublayer_graph`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..common.errors import WorkloadError
from .graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from .models import ModelConfig


def validate_tp_partition(model: ModelConfig, tp: int) -> None:
    """Check that ``model`` partitions exactly across a ``tp``-way group.

    Raises :class:`WorkloadError` (a :class:`ValueError`) naming the model
    and the TP degree.  Attention heads get a dedicated message: a head
    count that does not divide would otherwise silently mis-shape the
    per-GPU attention tiles (``heads // tp`` truncates), which corrupts the
    softmax element counts rather than failing loudly.
    """
    if tp < 2:
        raise WorkloadError(f"tensor parallelism needs tp >= 2, got {tp}")
    if model.heads % tp:
        raise WorkloadError(
            f"{model.name}: cannot partition {model.heads} attention heads "
            f"across tp={tp} GPUs (heads % tp == {model.heads % tp}); "
            f"pick a TP degree that divides the head count")
    for dim_name, dim in (("hidden", model.hidden),
                          ("ffn_hidden", model.ffn_hidden),
                          ("tokens", model.tokens)):
        if dim % tp:
            raise WorkloadError(
                f"{model.name}: {dim_name}={dim} not divisible by tp={tp}")


#: Backwards-compatible alias (the builders below predate the public name).
_check_divisible = validate_tp_partition


def _vector(name: str, elements: int, deps: Tuple[str, ...],
            sublayer: str = None) -> LogicalOp:
    return LogicalOp(name=name, kind=OpKind.VECTOR, deps=deps,
                     elements=elements, sublayer=sublayer)


def _gemm(name: str, m: int, n: int, k: int, deps: Tuple[str, ...],
          sublayer: str = None) -> LogicalOp:
    return LogicalOp(name=name, kind=OpKind.GEMM, deps=deps,
                     gemm=GemmShape(m, n, k), sublayer=sublayer)


def _comm(name: str, kind: CommKind, nbytes: int, deps: Tuple[str, ...],
          sublayer: str = None) -> LogicalOp:
    return LogicalOp(name=name, kind=OpKind.COMM, deps=deps, comm=kind,
                     comm_bytes=nbytes, sublayer=sublayer)


# ---------------------------------------------------------------------------
# Forward graphs
# ---------------------------------------------------------------------------

def sp_forward_layer(model: ModelConfig, tp: int) -> Graph:
    """One TP+SP transformer layer, forward pass."""
    _check_divisible(model, tp)
    m, h, f = model.tokens, model.hidden, model.ffn_hidden
    act = model.activation_bytes()
    g = Graph(f"{model.name}-sp-fwd-tp{tp}")
    g.add(_vector("ln1", m * h // tp, (), sublayer="L2"))
    g.add(_comm("ag1", CommKind.ALL_GATHER, act, ("ln1",), sublayer="L2"))
    g.add(_gemm("qkv", m, 3 * h // tp, h, ("ag1",), sublayer="L2"))
    g.add(_gemm("attn_score", m, model.seq_len, h // tp, ("qkv",)))
    g.add(_vector("softmax", model.batch * (model.heads // tp) *
                  model.seq_len ** 2, ("attn_score",)))
    g.add(_gemm("attn_ctx", m, h // tp, model.seq_len, ("softmax",)))
    g.add(_gemm("proj", m, h, h // tp, ("attn_ctx",), sublayer="L1"))
    g.add(_comm("rs1", CommKind.REDUCE_SCATTER, act, ("proj",),
                sublayer="L1"))
    g.add(_vector("dropadd1", m * h // tp, ("rs1",), sublayer="L1"))
    g.add(_vector("ln2", m * h // tp, ("dropadd1",), sublayer="L1"))
    g.add(_comm("ag2", CommKind.ALL_GATHER, act, ("ln2",), sublayer="L1"))
    g.add(_gemm("ffn1", m, f // tp, h, ("ag2",), sublayer="L1"))
    g.add(_vector("gelu", m * f // tp, ("ffn1",)))
    g.add(_gemm("ffn2", m, h, f // tp, ("gelu",), sublayer="L2"))
    g.add(_comm("rs2", CommKind.REDUCE_SCATTER, act, ("ffn2",),
                sublayer="L2"))
    g.add(_vector("dropadd2", m * h // tp, ("rs2",), sublayer="L2"))
    return g


def basic_forward_layer(model: ModelConfig, tp: int) -> Graph:
    """One Basic-TP transformer layer, forward pass (AllReduce variant)."""
    _check_divisible(model, tp)
    m, h, f = model.tokens, model.hidden, model.ffn_hidden
    act = model.activation_bytes()
    g = Graph(f"{model.name}-basic-fwd-tp{tp}")
    g.add(_vector("ln1", m * h, ()))
    g.add(_gemm("qkv", m, 3 * h // tp, h, ("ln1",)))
    g.add(_gemm("attn_score", m, model.seq_len, h // tp, ("qkv",)))
    g.add(_vector("softmax", model.batch * (model.heads // tp) *
                  model.seq_len ** 2, ("attn_score",)))
    g.add(_gemm("attn_ctx", m, h // tp, model.seq_len, ("softmax",)))
    g.add(_gemm("proj", m, h, h // tp, ("attn_ctx",)))
    g.add(_comm("ar1", CommKind.ALL_REDUCE, act, ("proj",)))
    g.add(_vector("dropadd1", m * h, ("ar1",)))
    g.add(_vector("ln2", m * h, ("dropadd1",)))
    g.add(_gemm("ffn1", m, f // tp, h, ("ln2",)))
    g.add(_vector("gelu", m * f // tp, ("ffn1",)))
    g.add(_gemm("ffn2", m, h, f // tp, ("gelu",)))
    g.add(_comm("ar2", CommKind.ALL_REDUCE, act, ("ffn2",)))
    g.add(_vector("dropadd2", m * h, ("ar2",)))
    return g


# ---------------------------------------------------------------------------
# Backward graphs
# ---------------------------------------------------------------------------

def sp_backward_layer(model: ModelConfig, tp: int) -> Graph:
    """One TP+SP layer, backward pass: mirrored comms, dgrad + wgrad."""
    _check_divisible(model, tp)
    m, h, f = model.tokens, model.hidden, model.ffn_hidden
    act = model.activation_bytes()
    g = Graph(f"{model.name}-sp-bwd-tp{tp}")
    g.add(_vector("dropadd2_bwd", m * h // tp, ()))
    # Backward of rs2 is an AllGather of the incoming gradient (ḡ).
    g.add(_comm("ag_rs2", CommKind.ALL_GATHER, act, ("dropadd2_bwd",),
                sublayer="L4"))
    g.add(_gemm("ffn2_dgrad", m, f // tp, h, ("ag_rs2",), sublayer="L4"))
    g.add(_gemm("ffn2_wgrad", f // tp, h, m, ("ag_rs2",)))
    g.add(_vector("gelu_bwd", m * f // tp, ("ffn2_dgrad",)))
    g.add(_gemm("ffn1_dgrad", m, h, f // tp, ("gelu_bwd",), sublayer="L3"))
    g.add(_gemm("ffn1_wgrad", h, f // tp, m, ("gelu_bwd",)))
    # Backward of ag2 is a ReduceScatter of the partial dX (g).
    g.add(_comm("rs_ag2", CommKind.REDUCE_SCATTER, act, ("ffn1_dgrad",),
                sublayer="L3"))
    g.add(_vector("ln2_bwd", m * h // tp, ("rs_ag2",), sublayer="L3"))
    g.add(_comm("ag_rs1", CommKind.ALL_GATHER, act, ("ln2_bwd",),
                sublayer="L3"))
    g.add(_gemm("proj_dgrad", m, h // tp, h, ("ag_rs1",), sublayer="L3"))
    g.add(_gemm("proj_wgrad", h // tp, h, m, ("ag_rs1",)))
    # Attention backward: two GEMMs per forward GEMM (dgrad w.r.t. each
    # operand of the score and context products).
    g.add(_gemm("attn_ctx_bwd_dp", m, model.seq_len, h // tp,
                ("proj_dgrad",)))
    g.add(_gemm("attn_ctx_bwd_dv", m, h // tp, model.seq_len,
                ("proj_dgrad",)))
    g.add(_vector("softmax_bwd", model.batch * (model.heads // tp) *
                  model.seq_len ** 2, ("attn_ctx_bwd_dp",)))
    g.add(_gemm("attn_score_bwd_dq", m, h // tp, model.seq_len,
                ("softmax_bwd",)))
    g.add(_gemm("attn_score_bwd_dk", m, h // tp, model.seq_len,
                ("softmax_bwd",)))
    g.add(_gemm("qkv_dgrad", m, h, 3 * h // tp,
                ("attn_score_bwd_dq", "attn_score_bwd_dk"),
                sublayer="L4"))
    g.add(_gemm("qkv_wgrad", 3 * h // tp, h, m, ("attn_score_bwd_dq",)))
    g.add(_comm("rs_ag1", CommKind.REDUCE_SCATTER, act, ("qkv_dgrad",),
                sublayer="L4"))
    g.add(_vector("ln1_bwd", m * h // tp, ("rs_ag1",), sublayer="L4"))
    return g


def basic_backward_layer(model: ModelConfig, tp: int) -> Graph:
    """One Basic-TP layer, backward pass (AllReduce on dgrads, f̄)."""
    _check_divisible(model, tp)
    m, h, f = model.tokens, model.hidden, model.ffn_hidden
    act = model.activation_bytes()
    g = Graph(f"{model.name}-basic-bwd-tp{tp}")
    g.add(_vector("dropadd2_bwd", m * h, ()))
    g.add(_gemm("ffn2_dgrad", m, f // tp, h, ("dropadd2_bwd",)))
    g.add(_gemm("ffn2_wgrad", f // tp, h, m, ("dropadd2_bwd",)))
    g.add(_vector("gelu_bwd", m * f // tp, ("ffn2_dgrad",)))
    g.add(_gemm("ffn1_dgrad", m, h, f // tp, ("gelu_bwd",)))
    g.add(_gemm("ffn1_wgrad", h, f // tp, m, ("gelu_bwd",)))
    g.add(_comm("ar_ffn", CommKind.ALL_REDUCE, act, ("ffn1_dgrad",)))
    g.add(_vector("ln2_bwd", m * h, ("ar_ffn",)))
    g.add(_gemm("proj_dgrad", m, h // tp, h, ("ln2_bwd",)))
    g.add(_gemm("proj_wgrad", h // tp, h, m, ("ln2_bwd",)))
    g.add(_gemm("attn_ctx_bwd_dp", m, model.seq_len, h // tp,
                ("proj_dgrad",)))
    g.add(_gemm("attn_ctx_bwd_dv", m, h // tp, model.seq_len,
                ("proj_dgrad",)))
    g.add(_vector("softmax_bwd", model.batch * (model.heads // tp) *
                  model.seq_len ** 2, ("attn_ctx_bwd_dp",)))
    g.add(_gemm("attn_score_bwd_dq", m, h // tp, model.seq_len,
                ("softmax_bwd",)))
    g.add(_gemm("attn_score_bwd_dk", m, h // tp, model.seq_len,
                ("softmax_bwd",)))
    g.add(_gemm("qkv_dgrad", m, h, 3 * h // tp,
                ("attn_score_bwd_dq", "attn_score_bwd_dk")))
    g.add(_gemm("qkv_wgrad", 3 * h // tp, h, m, ("attn_score_bwd_dq",)))
    g.add(_comm("ar_qkv", CommKind.ALL_REDUCE, act, ("qkv_dgrad",)))
    g.add(_vector("ln1_bwd", m * h, ("ar_qkv",)))
    return g


# ---------------------------------------------------------------------------
# Fig. 12 sub-layers
# ---------------------------------------------------------------------------

#: (gemm1 per-GPU shape fn, gemm2 per-GPU shape fn) for each sub-layer.
SUBLAYERS = ("L1", "L2", "L3", "L4")


def sublayer_graph(model: ModelConfig, tp: int, which: str,
                   style: str = "sp") -> Graph:
    """One of the paper's four GEMM-RS + LN + AG-GEMM chains.

    * L1 — output projection -> LN -> first FFN layer (forward)
    * L2 — second FFN layer -> LN -> input (QKV) projection (forward)
    * L3 — first FFN layer -> LN -> output projection (backward)
    * L4 — input projection -> LN -> second FFN layer (backward)

    ``style="basic"`` lowers the same chain the Basic-TP way (GEMM ->
    AllReduce -> replicated LN -> GEMM), which is how the AllReduce-based
    baselines execute it.
    """
    _check_divisible(model, tp)
    m, h, f = model.tokens, model.hidden, model.ffn_hidden
    shapes: Dict[str, Tuple[GemmShape, GemmShape]] = {
        "L1": (GemmShape(m, h, h // tp), GemmShape(m, f // tp, h)),
        "L2": (GemmShape(m, h, f // tp), GemmShape(m, 3 * h // tp, h)),
        "L3": (GemmShape(m, h, f // tp), GemmShape(m, h // tp, h)),
        "L4": (GemmShape(m, h, 3 * h // tp), GemmShape(m, f // tp, h)),
    }
    if which not in shapes:
        raise WorkloadError(f"unknown sub-layer {which!r}; "
                            f"expected one of {SUBLAYERS}")
    g1, g2 = shapes[which]
    act = model.activation_bytes()
    if style == "basic":
        g = Graph(f"{model.name}-{which}-basic-tp{tp}")
        g.add(LogicalOp(name="gemm1", kind=OpKind.GEMM, gemm=g1,
                        sublayer=which))
        g.add(_comm("ar", CommKind.ALL_REDUCE, act, ("gemm1",),
                    sublayer=which))
        g.add(_vector("ln", m * h, ("ar",), sublayer=which))
        g.add(LogicalOp(name="gemm2", kind=OpKind.GEMM, gemm=g2,
                        deps=("ln",), sublayer=which))
        return g
    if style != "sp":
        raise WorkloadError(f"unknown sub-layer style {style!r}")
    g = Graph(f"{model.name}-{which}-tp{tp}")
    g.add(LogicalOp(name="gemm1", kind=OpKind.GEMM, gemm=g1,
                    sublayer=which))
    g.add(_comm("rs", CommKind.REDUCE_SCATTER, act, ("gemm1",),
                sublayer=which))
    g.add(_vector("ln", m * h // tp, ("rs",), sublayer=which))
    g.add(_comm("ag", CommKind.ALL_GATHER, act, ("ln",), sublayer=which))
    g.add(LogicalOp(name="gemm2", kind=OpKind.GEMM, gemm=g2, deps=("ag",),
                    sublayer=which))
    return g


def training_graphs(model: ModelConfig, tp: int,
                    style: str = "sp") -> List[Graph]:
    """Forward + backward graphs for one layer (training step slice)."""
    if style == "sp":
        return [sp_forward_layer(model, tp), sp_backward_layer(model, tp)]
    if style == "basic":
        return [basic_forward_layer(model, tp),
                basic_backward_layer(model, tp)]
    raise WorkloadError(f"unknown TP style {style!r}")
