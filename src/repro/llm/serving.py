"""Inference-serving workload: prefill/decode under continuous batching.

The paper evaluates single-graph training/inference steps; this module
adds the *request-level* serving dimension on top of the same per-layer
graphs so the systems can be compared on serving metrics (TTFT, TPOT,
tokens/s) rather than lone-graph makespan:

* :func:`generate_requests` — a seeded Poisson arrival process with
  per-request prompt/output lengths.  Arrivals are *thinned* from a fixed
  maximum rate: candidates are generated at ``max_arrival_rate_rps`` and
  each is accepted with probability ``rate / max_rate`` from its own RNG
  stream, so raising the rate yields a strict superset of requests at
  identical arrival times — the structural property behind the
  "higher arrival rate never decreases makespan" invariant test.
* :class:`ContinuousBatcher` — Orca-style combined iterations: every
  scheduled request contributes either its (re-)prefill chunk or one
  decode token to each iteration and emits exactly one token per
  participation, under a KV-cache byte budget with LIFO eviction that
  never touches the oldest running request (guaranteeing progress).
* :func:`serving_iteration_graph` — one iteration's operator graph,
  mirroring the :mod:`repro.llm.tp` layer builders (same op names,
  shapes, and collective placement) with the token dimension replaced by
  the batch's padded token count and attention split per participant so
  each request pays for its own KV-cache span.
* :func:`simulate_serving` — the event-driven driver: it runs each
  iteration's graph through a :class:`~repro.systems.systems.Session`,
  re-plans the batch at every iteration boundary at *simulation* time,
  and reports per-request stats plus system throughput.

Fidelity envelope: one representative layer per iteration (like the rest
of the repo's per-layer methodology), no speculative decoding, no
chunked-prefill splitting, and KV reads are priced through the attention
GEMM's K dimension rather than a separate HBM channel — see DESIGN.md
section 9 for the comparison against trace-driven serving simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import SimulationError, WorkloadError
from ..common.rng import RngPool
from ..obs import (current_causality, current_metrics, current_request_log,
                   current_timeseries, current_tracer)
from ..obs.requests import PHASE_DECODE, PHASE_PREFILL, category_shares
from .graph import CommKind, Graph
from .models import ModelConfig
from .tiling import ceil_div
from .tp import _comm, _gemm, _vector, validate_tp_partition


def kv_bytes_per_token(model: ModelConfig) -> int:
    """KV-cache bytes one token occupies across all layers (K and V)."""
    return 2 * model.hidden * model.dtype_bytes * model.layers


# ---------------------------------------------------------------------------
# Workload specification and request generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ServingSpec:
    """One serving workload, fully described by value.

    Frozen and built from primitives only, so it enters the experiment
    cache fingerprint verbatim (see ``SimTask.payload``).  ``model`` is a
    Table-I name; callers with ad-hoc models pass a
    :class:`~repro.llm.models.ModelConfig` to :func:`simulate_serving`
    directly and the name is ignored.
    """

    model: str = "Mega-GPT-4B"
    seed: int = 2026
    #: Mean request arrival rate (requests per second of simulated time).
    arrival_rate_rps: float = 40000.0
    #: Thinning base rate; candidates are drawn at this rate and accepted
    #: with probability ``arrival_rate_rps / max_arrival_rate_rps``.
    #: ``None`` means "equal to the arrival rate" (no thinning).
    max_arrival_rate_rps: Optional[float] = None
    #: Arrival window in simulated milliseconds.  Requests only *arrive*
    #: inside the window; the run ends when the last one finishes.
    horizon_ms: float = 1.0
    prompt_min: int = 64
    prompt_max: int = 256
    output_min: int = 2
    output_max: int = 8
    #: KV-cache byte budget across all running requests; ``None`` derives
    #: a batch-limited default (every slot holding a worst-case request).
    kv_budget_bytes: Optional[int] = None
    max_batch_requests: int = 8

    def __post_init__(self) -> None:
        if self.arrival_rate_rps <= 0:
            raise WorkloadError(
                f"arrival_rate_rps must be positive, "
                f"got {self.arrival_rate_rps}")
        if self.max_arrival_rate_rps is not None and \
                self.max_arrival_rate_rps < self.arrival_rate_rps:
            raise WorkloadError(
                f"max_arrival_rate_rps={self.max_arrival_rate_rps} must be "
                f">= arrival_rate_rps={self.arrival_rate_rps}")
        if self.horizon_ms <= 0:
            raise WorkloadError(f"horizon_ms must be positive, "
                                f"got {self.horizon_ms}")
        for lo, hi, what in ((self.prompt_min, self.prompt_max, "prompt"),
                             (self.output_min, self.output_max, "output")):
            if not 1 <= lo <= hi:
                raise WorkloadError(
                    f"need 1 <= {what}_min <= {what}_max, got [{lo}, {hi}]")
        if self.max_batch_requests < 1:
            raise WorkloadError(f"max_batch_requests must be >= 1, "
                                f"got {self.max_batch_requests}")
        if self.kv_budget_bytes is not None and self.kv_budget_bytes <= 0:
            raise WorkloadError(f"kv_budget_bytes must be positive, "
                                f"got {self.kv_budget_bytes}")

    @property
    def effective_max_rate(self) -> float:
        return self.max_arrival_rate_rps or self.arrival_rate_rps


@dataclass(frozen=True)
class Request:
    """One inference request of the arrival process."""

    rid: int                 # candidate index — stable across arrival rates
    arrival_ns: float
    prompt_len: int
    output_len: int


@dataclass
class RequestStats:
    """Per-request serving outcome."""

    rid: int
    arrival_ns: float
    prompt_len: int
    output_len: int
    first_token_ns: Optional[float] = None
    finish_ns: Optional[float] = None
    evictions: int = 0

    @property
    def ttft_ns(self) -> float:
        """Time to first token: end of the prefill iteration - arrival."""
        return self.first_token_ns - self.arrival_ns

    @property
    def e2e_ns(self) -> float:
        return self.finish_ns - self.arrival_ns

    @property
    def tpot_ns(self) -> float:
        """Mean time per output token after the first (0 for 1-token)."""
        if self.output_len <= 1:
            return 0.0
        return (self.e2e_ns - self.ttft_ns) / (self.output_len - 1)


def generate_requests(spec: ServingSpec) -> List[Request]:
    """Sample the seeded arrival process described by ``spec``.

    Candidate arrivals are a Poisson process at ``effective_max_rate``
    from the ``serving.arrivals`` stream; acceptance and the length draws
    come from a per-candidate ``serving.request.<i>`` stream, so the
    accepted set at a lower rate is a subset of the set at any higher
    rate (same ``max_arrival_rate_rps``) with identical arrival times and
    lengths.  Candidate 0 is always accepted — a serving run needs at
    least one request — even when its arrival falls past the horizon.
    """
    pool = RngPool(spec.seed)
    gaps = pool.stream("serving.arrivals")
    mean_gap_ns = 1e9 / spec.effective_max_rate
    horizon_ns = spec.horizon_ms * 1e6
    requests: List[Request] = []
    t = 0.0
    i = 0
    while True:
        t += float(gaps.exponential(mean_gap_ns))
        if i > 0 and t > horizon_ns:
            break
        stream = pool.stream(f"serving.request.{i}")
        u = float(stream.uniform())
        if i == 0 or u * spec.effective_max_rate <= spec.arrival_rate_rps:
            requests.append(Request(
                rid=i, arrival_ns=t,
                prompt_len=int(stream.integers(spec.prompt_min,
                                               spec.prompt_max + 1)),
                output_len=int(stream.integers(spec.output_min,
                                               spec.output_max + 1))))
        i += 1
    return requests


# ---------------------------------------------------------------------------
# Continuous batching
# ---------------------------------------------------------------------------

@dataclass
class _Active:
    """Scheduler-side request state."""

    stats: RequestStats
    emitted: int = 0
    #: Tokens the next participation must (re-)process through the prefill
    #: path: the prompt on first admission, prompt + emitted after an
    #: eviction rebuilt from scratch.  0 once the KV cache is warm.
    prefill_pending: int = 0

    @property
    def done(self) -> bool:
        return self.emitted >= self.stats.output_len

    def kv_tokens_after_iteration(self) -> int:
        """KV tokens held once this request participates in one more
        iteration (context written so far plus the token it emits)."""
        return self.stats.prompt_len + self.emitted + 1


#: One iteration participant: (request state, tokens processed this
#: iteration, KV span its attention reads).
Participant = Tuple[_Active, int, int]


class ContinuousBatcher:
    """Iteration-level scheduler: admit, evict, plan, commit.

    Admission is head-of-line in arrival order (a request that does not
    fit blocks later ones — keeps the schedule a pure function of the
    arrived set).  Eviction is LIFO among the running requests and never
    evicts the oldest, so the head request always runs to completion and
    frees its KV bytes: combined with the single-request feasibility
    check in ``__init__`` this rules out eviction livelock.
    """

    def __init__(self, spec: ServingSpec, model: ModelConfig,
                 requests: Sequence[Request]):
        self.spec = spec
        self.kvpt = kv_bytes_per_token(model)
        worst = (spec.prompt_max + spec.output_max) * self.kvpt
        self.budget = (spec.kv_budget_bytes if spec.kv_budget_bytes
                       is not None else spec.max_batch_requests * worst)
        need = max((r.prompt_len + r.output_len) * self.kvpt
                   for r in requests)
        if need > self.budget:
            raise WorkloadError(
                f"kv_budget_bytes={self.budget} cannot hold one "
                f"worst-case request ({need} bytes = "
                f"(prompt+output) tokens x {self.kvpt} B/token); "
                f"no schedule can finish it")
        #: Not-yet-arrived, in arrival order.
        self.future: List[_Active] = [
            _Active(stats=RequestStats(rid=r.rid, arrival_ns=r.arrival_ns,
                                       prompt_len=r.prompt_len,
                                       output_len=r.output_len),
                    prefill_pending=r.prompt_len)
            for r in sorted(requests, key=lambda r: (r.arrival_ns, r.rid))]
        self.waiting: List[_Active] = []
        self.running: List[_Active] = []
        self.finished: List[_Active] = []
        self.evictions = 0
        self.peak_kv_bytes = 0
        self.kv_bytes_now = 0
        #: Observability hook, called as ``on_evict(active, now_ns)`` for
        #: every eviction; None (the default) costs one attribute read.
        self.on_evict: Optional[Callable] = None

    # -- queue maintenance ---------------------------------------------
    def release_arrivals(self, now_ns: float) -> None:
        """Move arrived requests into the waiting queue (1e-3 ns slack
        absorbs the float round-trip of ``schedule_at``)."""
        while self.future and \
                self.future[0].stats.arrival_ns <= now_ns + 1e-3:
            self.waiting.append(self.future.pop(0))

    def next_arrival_ns(self) -> Optional[float]:
        return self.future[0].stats.arrival_ns if self.future else None

    def all_done(self) -> bool:
        return not (self.future or self.waiting or self.running)

    # -- planning -------------------------------------------------------
    def _kv_after(self, group: Sequence[_Active]) -> int:
        return sum(a.kv_tokens_after_iteration() for a in group) * self.kvpt

    def plan_iteration(self, now_ns: float) -> List[Participant]:
        """Admit/evict for one iteration; return its participants."""
        self.release_arrivals(now_ns)
        while (self.waiting
               and len(self.running) < self.spec.max_batch_requests
               and self._kv_after(self.running + self.waiting[:1])
               <= self.budget):
            self.running.append(self.waiting.pop(0))
        while self._kv_after(self.running) > self.budget \
                and len(self.running) > 1:
            victim = self.running.pop()
            victim.stats.evictions += 1
            victim.prefill_pending = (victim.stats.prompt_len
                                      + victim.emitted)
            self.evictions += 1
            self.waiting.insert(0, victim)
            if self.on_evict is not None:
                self.on_evict(victim, now_ns)
        kv_now = self._kv_after(self.running)
        self.kv_bytes_now = kv_now
        if kv_now > self.peak_kv_bytes:
            self.peak_kv_bytes = kv_now
        plan: List[Participant] = []
        for active in self.running:
            if active.prefill_pending:
                tokens = active.prefill_pending
                span = tokens
            else:
                tokens = 1
                span = active.stats.prompt_len + active.emitted + 1
            plan.append((active, tokens, span))
        return plan

    # -- commit ---------------------------------------------------------
    def commit(self, plan: Sequence[Participant],
               end_ns: float) -> List[_Active]:
        """Account one finished iteration; returns requests that just
        completed (every participant emitted exactly one token)."""
        done_now: List[_Active] = []
        for active, _tokens, _span in plan:
            active.prefill_pending = 0
            active.emitted += 1
            if active.emitted > active.stats.output_len:
                raise SimulationError(
                    f"request {active.stats.rid} emitted "
                    f"{active.emitted} > output_len="
                    f"{active.stats.output_len} tokens")
            if active.stats.first_token_ns is None:
                active.stats.first_token_ns = end_ns
            if active.done:
                active.stats.finish_ns = end_ns
                done_now.append(active)
        for active in done_now:
            self.running.remove(active)
            self.finished.append(active)
        return done_now


# ---------------------------------------------------------------------------
# Iteration graphs
# ---------------------------------------------------------------------------

def serving_iteration_graph(model: ModelConfig, tp: int,
                            participants: Sequence[Tuple[int, int]],
                            tile: int, style: str = "sp",
                            name: str = "serve") -> Graph:
    """One combined prefill/decode iteration as a layer graph.

    ``participants`` is a list of ``(tokens, kv_span)`` pairs — prefill
    entries carry their chunk length, decode entries one token; the span
    is the KV context the request's attention reads.  The projection/FFN
    path runs over the *padded* batch token count ``M`` (rounded up to a
    multiple of ``tile * tp`` so every system — in particular the CAIS
    activation layout, which needs at least ``tp`` row blocks — sees the
    same workload), while attention is built per participant so each
    request pays exactly for its own growing KV cache.  Op names, GEMM
    shapes, and collective placement mirror
    :func:`repro.llm.tp.sp_forward_layer` /
    :func:`repro.llm.tp.basic_forward_layer`.
    """
    if not participants:
        raise WorkloadError("iteration with no participants")
    if style not in ("sp", "basic"):
        raise WorkloadError(f"unknown TP style {style!r}")
    for tokens, span in participants:
        if tokens < 1 or span < 1:
            raise WorkloadError(
                f"participant needs tokens >= 1 and kv_span >= 1, "
                f"got ({tokens}, {span})")
    h, f = model.hidden, model.ffn_hidden
    if h % tp or f % tp or model.heads % tp:
        # Same contract as the tp.py builders (tokens are padded here, so
        # only the width dimensions need checking).
        validate_tp_partition(model, tp)
    heads_tp = model.heads // tp
    block = tile * tp
    m = ceil_div(sum(t for t, _ in participants), block) * block
    act = m * h * model.dtype_bytes
    sp = style == "sp"
    ln_elems = m * h // tp if sp else m * h
    g = Graph(name)
    g.add(_vector("ln1", ln_elems, ()))
    qkv_dep = "ln1"
    if sp:
        g.add(_comm("ag1", CommKind.ALL_GATHER, act, ("ln1",)))
        qkv_dep = "ag1"
    g.add(_gemm("qkv", m, 3 * h // tp, h, (qkv_dep,)))
    ctx_names = []
    for j, (tokens, span) in enumerate(participants):
        g.add(_gemm(f"attn_score.{j}", tokens, span, h // tp, ("qkv",)))
        g.add(_vector(f"softmax.{j}", tokens * heads_tp * span,
                      (f"attn_score.{j}",)))
        g.add(_gemm(f"attn_ctx.{j}", tokens, h // tp, span,
                    (f"softmax.{j}",)))
        ctx_names.append(f"attn_ctx.{j}")
    g.add(_gemm("proj", m, h, h // tp, tuple(ctx_names), sublayer="L1"))
    if sp:
        g.add(_comm("rs1", CommKind.REDUCE_SCATTER, act, ("proj",),
                    sublayer="L1"))
    else:
        g.add(_comm("ar1", CommKind.ALL_REDUCE, act, ("proj",),
                    sublayer="L1"))
    first_coll = "rs1" if sp else "ar1"
    g.add(_vector("dropadd1", ln_elems, (first_coll,), sublayer="L1"))
    g.add(_vector("ln2", ln_elems, ("dropadd1",), sublayer="L1"))
    ffn1_dep = "ln2"
    if sp:
        g.add(_comm("ag2", CommKind.ALL_GATHER, act, ("ln2",),
                    sublayer="L1"))
        ffn1_dep = "ag2"
    g.add(_gemm("ffn1", m, f // tp, h, (ffn1_dep,), sublayer="L1"))
    g.add(_vector("gelu", m * f // tp, ("ffn1",)))
    g.add(_gemm("ffn2", m, h, f // tp, ("gelu",), sublayer="L2"))
    if sp:
        g.add(_comm("rs2", CommKind.REDUCE_SCATTER, act, ("ffn2",),
                    sublayer="L2"))
    else:
        g.add(_comm("ar2", CommKind.ALL_REDUCE, act, ("ffn2",),
                    sublayer="L2"))
    g.add(_vector("dropadd2", ln_elems, ("rs2" if sp else "ar2",),
                  sublayer="L2"))
    return g


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

@dataclass
class ServingResult:
    """Outcome of one serving simulation on one system."""

    run: object                      # systems.base.RunResult
    spec: ServingSpec
    stats: List[RequestStats] = field(default_factory=list)
    iterations: int = 0
    evictions: int = 0
    peak_kv_bytes: int = 0

    @property
    def makespan_ns(self) -> float:
        return self.run.makespan_ns

    @property
    def total_output_tokens(self) -> int:
        return sum(s.output_len for s in self.stats)

    @property
    def tokens_per_s(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan_ns * 1e9

    def ttft_quantile_ns(self, q: float) -> float:
        return _exact_quantile([s.ttft_ns for s in self.stats], q)

    def mean_ttft_ns(self) -> float:
        return sum(s.ttft_ns for s in self.stats) / len(self.stats)

    def mean_tpot_ns(self) -> float:
        multi = [s.tpot_ns for s in self.stats if s.output_len > 1]
        return sum(multi) / len(multi) if multi else 0.0

    def mean_e2e_ns(self) -> float:
        return sum(s.e2e_ns for s in self.stats) / len(self.stats)


def _exact_quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile over the exact sample (no bucketing)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def simulate_serving(system, spec: ServingSpec,
                     model: Optional[ModelConfig] = None,
                     style: str = "sp") -> ServingResult:
    """Serve ``spec``'s request stream on ``system`` to completion.

    ``model`` defaults to the Table-I model named by ``spec.model``;
    ``style`` picks the TP lowering the system executes (callers use
    :func:`repro.experiments.runner.style_for`).  The driver replans the
    batch at every iteration boundary *inside* the simulation: arrivals
    are simulator events, so admission order depends on simulated time,
    and two systems see identical request streams but batch them
    differently — exactly the continuous-batching dynamics the serving
    metrics measure.
    """
    if model is None:
        from .models import by_name
        model = by_name(spec.model)
    tp = system.config.num_gpus
    validate_tp_partition(model, tp)
    requests = generate_requests(spec)
    batcher = ContinuousBatcher(spec, model, requests)
    session = system.session()
    sim = session.harness.sim
    tracer = current_tracer()
    metrics = current_metrics()
    ts = current_timeseries()
    reqlog = current_request_log()
    cz = current_causality()
    tile = system.tiling.tile
    state = {"iterations": 0}
    max_iterations = sum(r.output_len for r in requests) + 16
    #: One flag for all per-iteration instrumentation below, so a run
    #: with every sink disabled takes exactly the pre-existing path.
    obs_iter = ts.enabled or reqlog.enabled
    if reqlog.enabled:
        for r in requests:
            reqlog.open(r.rid, r.arrival_ns, r.prompt_len, r.output_len)
    if obs_iter:
        def _on_evict(active: _Active, now_ns: float) -> None:
            if reqlog.enabled:
                reqlog.get(active.stats.rid).event("evicted", now_ns)
            if ts.enabled:
                ts.counter("serving.evictions").add(now_ns, 1)
        batcher.on_evict = _on_evict

    def record_finish(active: _Active, track_args: dict) -> None:
        s = active.stats
        if reqlog.enabled:
            reqlog.get(s.rid).close(s.finish_ns, s.first_token_ns)
        if tracer.enabled:
            track = tracer.track("serving", f"req{s.rid:04d}")
            handle = tracer.begin(track, "request", s.arrival_ns,
                                  cat="serving", args=track_args)
            if reqlog.enabled:
                # One span per phase, nested inside the request span; the
                # phases tile arrival -> finish, so their durations sum to
                # the request's e2e latency in the trace too.
                for ph in reqlog.get(s.rid).phases:
                    ph_handle = tracer.begin(track, ph.kind, ph.start_ns,
                                             cat="serving-phase",
                                             args={"tokens": ph.tokens})
                    tracer.end(ph_handle, ph.end_ns)
            tracer.instant(track, "first_token", s.first_token_ns,
                           cat="serving")
            tracer.end(handle, s.finish_ns)
        if metrics.enabled:
            metrics.counter("serving.requests_completed").inc()
            metrics.counter("serving.tokens_emitted").inc(s.output_len)
            metrics.histogram("serving.ttft_ns").record(s.ttft_ns)
            metrics.histogram("serving.e2e_ns").record(s.e2e_ns)
            if s.output_len > 1:
                metrics.histogram("serving.tpot_ns").record(s.tpot_ns)
        if ts.enabled:
            ts.counter("serving.requests_completed").add(s.finish_ns, 1)
            ts.sketch("serving.ttft_ns").record(s.finish_ns, s.ttft_ns)
            ts.sketch("serving.e2e_ns").record(s.finish_ns, s.e2e_ns)
            if s.output_len > 1:
                ts.sketch("serving.tpot_ns").record(s.finish_ns, s.tpot_ns)

    def step() -> None:
        now = sim.now
        plan = batcher.plan_iteration(now)
        if not plan:
            nxt = batcher.next_arrival_ns()
            if nxt is None:
                return                       # all requests finished
            sim.schedule(max(nxt - now, 0.0), step)
            return
        state["iterations"] += 1
        if state["iterations"] > max_iterations:
            raise SimulationError(
                f"{system.name}: serving exceeded {max_iterations} "
                f"iterations for {len(requests)} requests — "
                f"scheduler is not making progress")
        if metrics.enabled:
            metrics.gauge("serving.kv_bytes").set(batcher.peak_kv_bytes)
            metrics.counter("serving.iterations").inc()
        it_start = now
        if obs_iter:
            # Phase kinds must be read at plan time: commit() clears
            # prefill_pending before iteration_done sees it.
            kinds = [PHASE_PREFILL if a.prefill_pending else PHASE_DECODE
                     for a, _, _ in plan]
            kv_now = batcher.kv_bytes_now
            cz_mark = len(cz) if cz.enabled else 0
        graph = serving_iteration_graph(
            model, tp, [(tokens, span) for _, tokens, span in plan],
            tile=tile, style=style,
            name=f"serve-it{state['iterations']:04d}")

        def iteration_done() -> None:
            it_end = sim.now
            if obs_iter:
                shares = (category_shares(cz, cz_mark, it_start, it_end)
                          if cz.enabled else None)
                if ts.enabled:
                    ts.counter("serving.tokens").add(it_end, len(plan))
                    ts.counter("serving.iterations").add(it_end, 1)
                    ts.gauge("serving.kv_bytes").set(it_end, kv_now)
                    ts.gauge("serving.batch_requests").set(it_end,
                                                           len(plan))
                    ts.sketch("serving.iteration_ns").record(
                        it_end, it_end - it_start)
                if reqlog.enabled:
                    for (active, tokens, _span), kind in zip(plan, kinds):
                        reqlog.get(active.stats.rid).phase(
                            kind, it_start, it_end, tokens,
                            dict(shares) if shares else None)
            for active in batcher.commit(plan, sim.now):
                record_finish(active, {"prompt": active.stats.prompt_len,
                                       "output": active.stats.output_len,
                                       "evictions":
                                           active.stats.evictions})
            step()

        session.runner.run_graph(graph, on_done=iteration_done)

    sim.schedule(0.0, step)
    sim.run()
    if not batcher.all_done():
        raise SimulationError(
            f"{system.name}: serving run drained with "
            f"{len(batcher.running)} running / {len(batcher.waiting)} "
            f"waiting / {len(batcher.future)} future requests")
    stats = sorted((a.stats for a in batcher.finished),
                   key=lambda s: s.rid)
    partial = ServingResult(run=None, spec=spec, stats=stats,
                            iterations=state["iterations"],
                            evictions=batcher.evictions,
                            peak_kv_bytes=batcher.peak_kv_bytes)
    run = session.finish(
        **{"serving.requests": float(len(stats)),
           "serving.tokens": float(partial.total_output_tokens),
           "serving.iterations": float(partial.iterations),
           "serving.evictions": float(partial.evictions),
           "serving.kv_peak_bytes": float(partial.peak_kv_bytes),
           "serving.tokens_per_s":
               (partial.total_output_tokens / sim.now * 1e9
                if sim.now > 0 else 0.0),
           "serving.ttft_mean_ns": partial.mean_ttft_ns(),
           "serving.ttft_p95_ns": partial.ttft_quantile_ns(0.95),
           "serving.tpot_mean_ns": partial.mean_tpot_ns(),
           "serving.e2e_mean_ns": partial.mean_e2e_ns()})
    partial.run = run
    return partial
