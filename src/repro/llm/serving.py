"""Inference-serving workload: prefill/decode under continuous batching.

The paper evaluates single-graph training/inference steps; this module
adds the *request-level* serving dimension on top of the same per-layer
graphs so the systems can be compared on serving metrics (TTFT, TPOT,
tokens/s) rather than lone-graph makespan:

* :func:`generate_requests` — a seeded Poisson arrival process with
  per-request prompt/output lengths.  Arrivals are *thinned* from a fixed
  maximum rate: candidates are generated at ``max_arrival_rate_rps`` and
  each is accepted with probability ``rate / max_rate`` from its own RNG
  stream, so raising the rate yields a strict superset of requests at
  identical arrival times — the structural property behind the
  "higher arrival rate never decreases makespan" invariant test.
* :class:`ContinuousBatcher` — Orca-style combined iterations: every
  scheduled request contributes either its (re-)prefill chunk or one
  decode token to each iteration and emits exactly one token per
  participation, under a KV-cache byte budget with LIFO eviction that
  never touches the oldest running request (guaranteeing progress).
* :func:`serving_iteration_graph` — one iteration's operator graph,
  mirroring the :mod:`repro.llm.tp` layer builders (same op names,
  shapes, and collective placement) with the token dimension replaced by
  the batch's padded token count and attention split per participant so
  each request pays for its own KV-cache span.
* :func:`simulate_serving` — the event-driven driver: it runs each
  iteration's graph through a :class:`~repro.systems.systems.Session`,
  re-plans the batch at every iteration boundary at *simulation* time,
  and reports per-request stats plus system throughput.

Fidelity envelope: one representative layer per iteration (like the rest
of the repo's per-layer methodology), no speculative decoding, no
chunked-prefill splitting, and KV reads are priced through the attention
GEMM's K dimension rather than a separate HBM channel — see DESIGN.md
section 9 for the comparison against trace-driven serving simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import SimulationError, WorkloadError
from ..common.rng import RngPool
from ..faults.retry import RequestRetryBudget
from ..obs import (current_causality, current_metrics, current_request_log,
                   current_timeseries, current_tracer)
from ..obs.requests import PHASE_DECODE, PHASE_PREFILL, category_shares
from .graph import CommKind, Graph
from .models import ModelConfig
from .tiling import ceil_div
from .tp import _comm, _gemm, _vector, validate_tp_partition


def kv_bytes_per_token(model: ModelConfig) -> int:
    """KV-cache bytes one token occupies across all layers (K and V)."""
    return 2 * model.hidden * model.dtype_bytes * model.layers


# ---------------------------------------------------------------------------
# Workload specification and request generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ServingSpec:
    """One serving workload, fully described by value.

    Frozen and built from primitives only, so it enters the experiment
    cache fingerprint verbatim (see ``SimTask.payload``).  ``model`` is a
    Table-I name; callers with ad-hoc models pass a
    :class:`~repro.llm.models.ModelConfig` to :func:`simulate_serving`
    directly and the name is ignored.
    """

    model: str = "Mega-GPT-4B"
    seed: int = 2026
    #: Mean request arrival rate (requests per second of simulated time).
    arrival_rate_rps: float = 40000.0
    #: Thinning base rate; candidates are drawn at this rate and accepted
    #: with probability ``arrival_rate_rps / max_arrival_rate_rps``.
    #: ``None`` means "equal to the arrival rate" (no thinning).
    max_arrival_rate_rps: Optional[float] = None
    #: Arrival window in simulated milliseconds.  Requests only *arrive*
    #: inside the window; the run ends when the last one finishes.
    horizon_ms: float = 1.0
    prompt_min: int = 64
    prompt_max: int = 256
    output_min: int = 2
    output_max: int = 8
    #: KV-cache byte budget across all running requests; ``None`` derives
    #: a batch-limited default (every slot holding a worst-case request).
    kv_budget_bytes: Optional[int] = None
    max_batch_requests: int = 8
    #: SLO-aware admission control: ``"none"`` (inert default), ``"shed"``
    #: (reject fresh prefills while gated — they count against SLO
    #: attainment) or ``"defer"`` (hold them in the waiting queue).
    admission_policy: str = "none"
    #: TTFT SLO target in milliseconds.  Enables the admission controller
    #: (with a non-``"none"`` policy) and the SLO attainment / goodput
    #: result details.  ``None`` keeps both off.
    slo_ttft_ms: Optional[float] = None
    #: Sliding window (ms) of completions the controller measures p95 over.
    admission_window_ms: float = 1.0
    #: Hysteresis: a gated run resumes admitting once windowed TTFT p95
    #: falls to ``resume_fraction * slo_ttft_ms``.
    resume_fraction: float = 0.8
    #: Per-request retransmit charge bound under faults; exceeding it
    #: aborts the request (KV dropped, full re-prefill requeued).
    #: ``None`` disables abort accounting.
    retry_budget: Optional[int] = None

    def __post_init__(self) -> None:
        def require(ok: bool, name: str, value, constraint: str) -> None:
            # FaultSpec's convention: name the offending field and value.
            if not ok:
                raise WorkloadError(
                    f"ServingSpec.{name}={value!r} {constraint}")

        require(self.arrival_rate_rps > 0, "arrival_rate_rps",
                self.arrival_rate_rps, "must be > 0")
        require(self.max_arrival_rate_rps is None
                or self.max_arrival_rate_rps >= self.arrival_rate_rps,
                "max_arrival_rate_rps", self.max_arrival_rate_rps,
                f"must be >= arrival_rate_rps={self.arrival_rate_rps}")
        require(self.horizon_ms > 0, "horizon_ms", self.horizon_ms,
                "must be > 0")
        for lo, hi, what in ((self.prompt_min, self.prompt_max, "prompt"),
                             (self.output_min, self.output_max, "output")):
            require(1 <= lo <= hi, f"{what}_min..{what}_max",
                    (lo, hi), f"needs 1 <= {what}_min <= {what}_max")
        require(self.max_batch_requests >= 1, "max_batch_requests",
                self.max_batch_requests, "must be >= 1")
        require(self.kv_budget_bytes is None or self.kv_budget_bytes > 0,
                "kv_budget_bytes", self.kv_budget_bytes, "must be > 0")
        require(self.admission_policy in ("none", "shed", "defer"),
                "admission_policy", self.admission_policy,
                "must be one of 'none', 'shed', 'defer'")
        require(self.admission_policy == "none"
                or self.slo_ttft_ms is not None,
                "slo_ttft_ms", self.slo_ttft_ms,
                f"is required by "
                f"admission_policy={self.admission_policy!r}")
        require(self.slo_ttft_ms is None or self.slo_ttft_ms > 0,
                "slo_ttft_ms", self.slo_ttft_ms, "must be > 0")
        require(self.admission_window_ms > 0, "admission_window_ms",
                self.admission_window_ms, "must be > 0")
        require(0 < self.resume_fraction <= 1, "resume_fraction",
                self.resume_fraction, "must be in (0, 1]")
        require(self.retry_budget is None or self.retry_budget >= 1,
                "retry_budget", self.retry_budget, "must be >= 1")

    @property
    def effective_max_rate(self) -> float:
        return self.max_arrival_rate_rps or self.arrival_rate_rps


@dataclass(frozen=True)
class Request:
    """One inference request of the arrival process."""

    rid: int                 # candidate index — stable across arrival rates
    arrival_ns: float
    prompt_len: int
    output_len: int
    #: KV cache already resident on arrival (disaggregated prefill/decode
    #: handoff: the prompt's KV was computed elsewhere and shipped over
    #: the fabric), so the first participation decodes instead of
    #: prefilling.  Eviction still drops the cache and recomputes from
    #: scratch — handed-off bytes are not replayable.
    warm: bool = False


@dataclass
class RequestStats:
    """Per-request serving outcome."""

    rid: int
    arrival_ns: float
    prompt_len: int
    output_len: int
    first_token_ns: Optional[float] = None
    finish_ns: Optional[float] = None
    evictions: int = 0
    #: Retry-budget aborts this request survived (KV dropped, re-prefill).
    aborts: int = 0
    #: True when admission control rejected the request outright; its
    #: ``finish_ns`` is the shed time and no tokens were emitted.
    shed: bool = False

    @property
    def ttft_ns(self) -> float:
        """Time to first token: end of the prefill iteration - arrival."""
        return self.first_token_ns - self.arrival_ns

    @property
    def e2e_ns(self) -> float:
        return self.finish_ns - self.arrival_ns

    @property
    def tpot_ns(self) -> float:
        """Mean time per output token after the first (0 for 1-token)."""
        if self.output_len <= 1:
            return 0.0
        return (self.e2e_ns - self.ttft_ns) / (self.output_len - 1)


def generate_requests(spec: ServingSpec) -> List[Request]:
    """Sample the seeded arrival process described by ``spec``.

    Candidate arrivals are a Poisson process at ``effective_max_rate``
    from the ``serving.arrivals`` stream; acceptance and the length draws
    come from a per-candidate ``serving.request.<i>`` stream, so the
    accepted set at a lower rate is a subset of the set at any higher
    rate (same ``max_arrival_rate_rps``) with identical arrival times and
    lengths.  Candidate 0 is always accepted — a serving run needs at
    least one request — even when its arrival falls past the horizon.
    """
    pool = RngPool(spec.seed)
    gaps = pool.stream("serving.arrivals")
    mean_gap_ns = 1e9 / spec.effective_max_rate
    horizon_ns = spec.horizon_ms * 1e6
    requests: List[Request] = []
    t = 0.0
    i = 0
    while True:
        t += float(gaps.exponential(mean_gap_ns))
        if i > 0 and t > horizon_ns:
            break
        stream = pool.stream(f"serving.request.{i}")
        u = float(stream.uniform())
        if i == 0 or u * spec.effective_max_rate <= spec.arrival_rate_rps:
            requests.append(Request(
                rid=i, arrival_ns=t,
                prompt_len=int(stream.integers(spec.prompt_min,
                                               spec.prompt_max + 1)),
                output_len=int(stream.integers(spec.output_min,
                                               spec.output_max + 1))))
        i += 1
    return requests


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class AdmissionController:
    """SLO-aware admission gate, driven purely by simulated time.

    The controller watches TTFT of completions inside a sliding window.
    When the windowed p95 breaches the SLO target, the gate closes and
    new prefills are shed or deferred (per ``ServingSpec.admission_policy``)
    until the p95 recovers below ``resume_fraction * slo`` — hysteresis so
    a run hovering at the target does not flap admission every iteration.
    Everything is a pure function of completion times, so two identical
    runs gate identically; an empty window reads as p95 = 0 and reopens
    the gate, which is what guarantees liveness once the backlog drains.
    """

    def __init__(self, slo_ttft_ns: float, window_ns: float,
                 resume_fraction: float):
        self.slo_ttft_ns = slo_ttft_ns
        self.window_ns = window_ns
        self.resume_fraction = resume_fraction
        self.gated = False
        self.breaches = 0
        self.resumes = 0
        #: (finish_ns, ttft_ns) completions, ordered by finish time.
        self._samples: List[Tuple[float, float]] = []

    def record(self, finish_ns: float, ttft_ns: float) -> None:
        self._samples.append((finish_ns, ttft_ns))

    def _prune(self, now_ns: float) -> None:
        cutoff = now_ns - self.window_ns
        drop = 0
        while drop < len(self._samples) and \
                self._samples[drop][0] <= cutoff:
            drop += 1
        if drop:
            del self._samples[:drop]

    def windowed_p95_ns(self, now_ns: float) -> float:
        self._prune(now_ns)
        return _exact_quantile([t for _, t in self._samples], 0.95)

    def update(self, now_ns: float) -> bool:
        """Re-evaluate the gate; returns True while admission is gated."""
        p95 = self.windowed_p95_ns(now_ns)
        if not self.gated:
            if p95 > self.slo_ttft_ns:
                self.gated = True
                self.breaches += 1
        elif p95 <= self.resume_fraction * self.slo_ttft_ns:
            self.gated = False
            self.resumes += 1
        return self.gated

    def next_expiry_ns(self, now_ns: float) -> Optional[float]:
        """When the oldest in-window sample leaves the window — the
        driver's wake-up time when gated with nothing running (each
        expiry shrinks the window population, so the gate provably
        reopens in bounded sim time)."""
        self._prune(now_ns)
        if not self._samples:
            return None
        return self._samples[0][0] + self.window_ns


# ---------------------------------------------------------------------------
# Continuous batching
# ---------------------------------------------------------------------------

@dataclass
class _Active:
    """Scheduler-side request state."""

    stats: RequestStats
    emitted: int = 0
    #: Tokens the next participation must (re-)process through the prefill
    #: path: the prompt on first admission, prompt + emitted after an
    #: eviction rebuilt from scratch.  0 once the KV cache is warm.
    prefill_pending: int = 0

    @property
    def done(self) -> bool:
        return self.emitted >= self.stats.output_len

    def kv_tokens_after_iteration(self) -> int:
        """KV tokens held once this request participates in one more
        iteration (context written so far plus the token it emits)."""
        return self.stats.prompt_len + self.emitted + 1


#: One iteration participant: (request state, tokens processed this
#: iteration, KV span its attention reads).
Participant = Tuple[_Active, int, int]


class ContinuousBatcher:
    """Iteration-level scheduler: admit, evict, plan, commit.

    Admission is head-of-line in arrival order (a request that does not
    fit blocks later ones — keeps the schedule a pure function of the
    arrived set).  Eviction is LIFO among the running requests and never
    evicts the oldest, so the head request always runs to completion and
    frees its KV bytes: combined with the single-request feasibility
    check in ``__init__`` this rules out eviction livelock.
    """

    def __init__(self, spec: ServingSpec, model: ModelConfig,
                 requests: Sequence[Request]):
        self.spec = spec
        self.kvpt = kv_bytes_per_token(model)
        worst = (spec.prompt_max + spec.output_max) * self.kvpt
        self.budget = (spec.kv_budget_bytes if spec.kv_budget_bytes
                       is not None else spec.max_batch_requests * worst)
        if not requests:
            raise WorkloadError(
                "serving needs at least one request (an explicit request "
                "list was empty)")
        need = max((r.prompt_len + r.output_len) * self.kvpt
                   for r in requests)
        if need > self.budget:
            raise WorkloadError(
                f"kv_budget_bytes={self.budget} cannot hold one "
                f"worst-case request ({need} bytes = "
                f"(prompt+output) tokens x {self.kvpt} B/token); "
                f"no schedule can finish it")
        #: Not-yet-arrived, in arrival order.
        self.future: List[_Active] = [
            _Active(stats=RequestStats(rid=r.rid, arrival_ns=r.arrival_ns,
                                       prompt_len=r.prompt_len,
                                       output_len=r.output_len),
                    prefill_pending=0 if r.warm else r.prompt_len)
            for r in sorted(requests, key=lambda r: (r.arrival_ns, r.rid))]
        self.waiting: List[_Active] = []
        self.running: List[_Active] = []
        self.finished: List[_Active] = []
        self.shed: List[_Active] = []
        self.evictions = 0
        self.aborts = 0
        self.reprefill_tokens = 0
        self.peak_kv_bytes = 0
        self.kv_bytes_now = 0
        #: Fault-aware replanning state: fraction of nominal batch
        #: capacity still backed by live hardware, and how many times the
        #: plan had to adapt to a change in it.
        self.capacity_factor = 1.0
        self.replans = 0
        self.deferred_iterations = 0
        self.admission: Optional[AdmissionController] = None
        if spec.slo_ttft_ms is not None and spec.admission_policy != "none":
            self.admission = AdmissionController(
                slo_ttft_ns=spec.slo_ttft_ms * 1e6,
                window_ns=spec.admission_window_ms * 1e6,
                resume_fraction=spec.resume_fraction)
        #: Observability hooks, called as ``hook(active, now_ns)``; None
        #: (the default) costs one attribute read.
        self.on_evict: Optional[Callable] = None
        self.on_shed: Optional[Callable] = None
        self.on_abort: Optional[Callable] = None

    # -- queue maintenance ---------------------------------------------
    def release_arrivals(self, now_ns: float) -> None:
        """Move arrived requests into the waiting queue (1e-3 ns slack
        absorbs the float round-trip of ``schedule_at``)."""
        while self.future and \
                self.future[0].stats.arrival_ns <= now_ns + 1e-3:
            self.waiting.append(self.future.pop(0))

    def next_arrival_ns(self) -> Optional[float]:
        return self.future[0].stats.arrival_ns if self.future else None

    def all_done(self) -> bool:
        return not (self.future or self.waiting or self.running)

    # -- degradation ----------------------------------------------------
    def degrade_capacity(self, factor: float) -> None:
        """Fault-aware replanning: the fabric lost (or recovered) collective
        capacity; clamp the next iteration's batch to what survives."""
        factor = min(max(factor, 0.0), 1.0)
        if factor != self.capacity_factor:
            self.capacity_factor = factor
            self.replans += 1

    def effective_max_batch(self) -> int:
        return max(1, int(self.spec.max_batch_requests
                          * self.capacity_factor))

    def admission_wake_ns(self, now_ns: float) -> Optional[float]:
        """When gated with nothing running, the next sim time the gate
        can change state (oldest sample's window expiry, plus the same
        float slack ``release_arrivals`` uses so the re-evaluation lands
        strictly past the edge)."""
        if self.admission is None or not self.admission.gated:
            return None
        expiry = self.admission.next_expiry_ns(now_ns)
        return None if expiry is None else expiry + 1e-3

    # -- planning -------------------------------------------------------
    def _kv_after(self, group: Sequence[_Active]) -> int:
        return sum(a.kv_tokens_after_iteration() for a in group) * self.kvpt

    def _evict(self, now_ns: float) -> None:
        victim = self.running.pop()
        victim.stats.evictions += 1
        victim.prefill_pending = (victim.stats.prompt_len
                                  + victim.emitted)
        self.evictions += 1
        self.waiting.insert(0, victim)
        if self.on_evict is not None:
            self.on_evict(victim, now_ns)

    def _shed_fresh_waiting(self, now_ns: float) -> None:
        """Shed policy while gated: reject waiting requests that have no
        sunk work.  Requests with emitted tokens or (re-)prefill state
        from an eviction/abort already paid for compute the SLO math must
        keep, so they stay queued — as do warm (handed-off KV) requests,
        whose prefill was paid for on another replica."""
        kept: List[_Active] = []
        for active in self.waiting:
            if active.emitted == 0 and active.prefill_pending \
                    and active.stats.evictions == 0 \
                    and active.stats.aborts == 0:
                active.stats.shed = True
                active.stats.finish_ns = now_ns
                self.shed.append(active)
                if self.on_shed is not None:
                    self.on_shed(active, now_ns)
            else:
                kept.append(active)
        self.waiting = kept

    def plan_iteration(self, now_ns: float) -> List[Participant]:
        """Admit/evict for one iteration; return its participants."""
        self.release_arrivals(now_ns)
        gated = (self.admission is not None
                 and self.admission.update(now_ns))
        if gated and self.waiting:
            if self.spec.admission_policy == "shed":
                self._shed_fresh_waiting(now_ns)
            else:
                self.deferred_iterations += 1
        limit = self.effective_max_batch()
        if not gated:
            while (self.waiting
                   and len(self.running) < limit
                   and self._kv_after(self.running + self.waiting[:1])
                   <= self.budget):
                self.running.append(self.waiting.pop(0))
        while len(self.running) > limit and len(self.running) > 1:
            # Degraded capacity: spill the newest requests back (same
            # LIFO/never-oldest rule as KV eviction, same re-prefill cost).
            self._evict(now_ns)
        while self._kv_after(self.running) > self.budget \
                and len(self.running) > 1:
            self._evict(now_ns)
        kv_now = self._kv_after(self.running)
        self.kv_bytes_now = kv_now
        if kv_now > self.peak_kv_bytes:
            self.peak_kv_bytes = kv_now
        plan: List[Participant] = []
        for active in self.running:
            if active.prefill_pending:
                tokens = active.prefill_pending
                span = tokens
            else:
                tokens = 1
                span = active.stats.prompt_len + active.emitted + 1
            plan.append((active, tokens, span))
        return plan

    # -- commit ---------------------------------------------------------
    def commit(self, plan: Sequence[Participant],
               end_ns: float) -> List[_Active]:
        """Account one finished iteration; returns requests that just
        completed (every participant emitted exactly one token)."""
        done_now: List[_Active] = []
        for active, _tokens, _span in plan:
            active.prefill_pending = 0
            active.emitted += 1
            if active.emitted > active.stats.output_len:
                raise SimulationError(
                    f"request {active.stats.rid} emitted "
                    f"{active.emitted} > output_len="
                    f"{active.stats.output_len} tokens")
            if active.stats.first_token_ns is None:
                active.stats.first_token_ns = end_ns
            if active.done:
                active.stats.finish_ns = end_ns
                done_now.append(active)
        for active in done_now:
            self.running.remove(active)
            self.finished.append(active)
            if self.admission is not None:
                self.admission.record(active.stats.finish_ns,
                                      active.stats.ttft_ns)
        return done_now

    # -- aborts ---------------------------------------------------------
    def abort_request(self, rid: int, now_ns: float) -> bool:
        """Retry-budget exhaustion: drop the request's KV cache and
        requeue a full re-prefill at the back of the waiting queue.

        Same progress guarantee as eviction — the oldest running request
        is never aborted, so a retry storm cannot livelock the head of
        the line.  Returns whether the abort happened.
        """
        for idx, active in enumerate(self.running):
            if active.stats.rid != rid:
                continue
            if idx == 0:
                return False
            self.running.pop(idx)
            tokens = active.stats.prompt_len + active.emitted
            active.prefill_pending = tokens
            active.stats.aborts += 1
            self.aborts += 1
            self.reprefill_tokens += tokens
            self.waiting.append(active)
            if self.on_abort is not None:
                self.on_abort(active, now_ns)
            return True
        return False


# ---------------------------------------------------------------------------
# Iteration graphs
# ---------------------------------------------------------------------------

def serving_iteration_graph(model: ModelConfig, tp: int,
                            participants: Sequence[Tuple[int, int]],
                            tile: int, style: str = "sp",
                            name: str = "serve") -> Graph:
    """One combined prefill/decode iteration as a layer graph.

    ``participants`` is a list of ``(tokens, kv_span)`` pairs — prefill
    entries carry their chunk length, decode entries one token; the span
    is the KV context the request's attention reads.  The projection/FFN
    path runs over the *padded* batch token count ``M`` (rounded up to a
    multiple of ``tile * tp`` so every system — in particular the CAIS
    activation layout, which needs at least ``tp`` row blocks — sees the
    same workload), while attention is built per participant so each
    request pays exactly for its own growing KV cache.  Op names, GEMM
    shapes, and collective placement mirror
    :func:`repro.llm.tp.sp_forward_layer` /
    :func:`repro.llm.tp.basic_forward_layer`.
    """
    if not participants:
        raise WorkloadError("iteration with no participants")
    if style not in ("sp", "basic"):
        raise WorkloadError(f"unknown TP style {style!r}")
    for tokens, span in participants:
        if tokens < 1 or span < 1:
            raise WorkloadError(
                f"participant needs tokens >= 1 and kv_span >= 1, "
                f"got ({tokens}, {span})")
    h, f = model.hidden, model.ffn_hidden
    if h % tp or f % tp or model.heads % tp:
        # Same contract as the tp.py builders (tokens are padded here, so
        # only the width dimensions need checking).
        validate_tp_partition(model, tp)
    heads_tp = model.heads // tp
    block = tile * tp
    m = ceil_div(sum(t for t, _ in participants), block) * block
    act = m * h * model.dtype_bytes
    sp = style == "sp"
    ln_elems = m * h // tp if sp else m * h
    g = Graph(name)
    g.add(_vector("ln1", ln_elems, ()))
    qkv_dep = "ln1"
    if sp:
        g.add(_comm("ag1", CommKind.ALL_GATHER, act, ("ln1",)))
        qkv_dep = "ag1"
    g.add(_gemm("qkv", m, 3 * h // tp, h, (qkv_dep,)))
    ctx_names = []
    for j, (tokens, span) in enumerate(participants):
        g.add(_gemm(f"attn_score.{j}", tokens, span, h // tp, ("qkv",)))
        g.add(_vector(f"softmax.{j}", tokens * heads_tp * span,
                      (f"attn_score.{j}",)))
        g.add(_gemm(f"attn_ctx.{j}", tokens, h // tp, span,
                    (f"softmax.{j}",)))
        ctx_names.append(f"attn_ctx.{j}")
    g.add(_gemm("proj", m, h, h // tp, tuple(ctx_names), sublayer="L1"))
    if sp:
        g.add(_comm("rs1", CommKind.REDUCE_SCATTER, act, ("proj",),
                    sublayer="L1"))
    else:
        g.add(_comm("ar1", CommKind.ALL_REDUCE, act, ("proj",),
                    sublayer="L1"))
    first_coll = "rs1" if sp else "ar1"
    g.add(_vector("dropadd1", ln_elems, (first_coll,), sublayer="L1"))
    g.add(_vector("ln2", ln_elems, ("dropadd1",), sublayer="L1"))
    ffn1_dep = "ln2"
    if sp:
        g.add(_comm("ag2", CommKind.ALL_GATHER, act, ("ln2",),
                    sublayer="L1"))
        ffn1_dep = "ag2"
    g.add(_gemm("ffn1", m, f // tp, h, (ffn1_dep,), sublayer="L1"))
    g.add(_vector("gelu", m * f // tp, ("ffn1",)))
    g.add(_gemm("ffn2", m, h, f // tp, ("gelu",), sublayer="L2"))
    if sp:
        g.add(_comm("rs2", CommKind.REDUCE_SCATTER, act, ("ffn2",),
                    sublayer="L2"))
    else:
        g.add(_comm("ar2", CommKind.ALL_REDUCE, act, ("ffn2",),
                    sublayer="L2"))
    g.add(_vector("dropadd2", ln_elems, ("rs2" if sp else "ar2",),
                  sublayer="L2"))
    return g


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

@dataclass
class ServingResult:
    """Outcome of one serving simulation on one system."""

    run: object                      # systems.base.RunResult
    spec: ServingSpec
    stats: List[RequestStats] = field(default_factory=list)
    iterations: int = 0
    evictions: int = 0
    peak_kv_bytes: int = 0
    #: Requests rejected by admission control (never served).
    shed: List[RequestStats] = field(default_factory=list)
    aborts: int = 0
    reprefill_tokens: int = 0
    replans: int = 0
    capacity_factor: float = 1.0
    deferred_iterations: int = 0

    @property
    def makespan_ns(self) -> float:
        return self.run.makespan_ns

    @property
    def total_output_tokens(self) -> int:
        return sum(s.output_len for s in self.stats)

    @property
    def tokens_per_s(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan_ns * 1e9

    def ttft_quantile_ns(self, q: float) -> float:
        return _exact_quantile([s.ttft_ns for s in self.stats], q)

    def mean_ttft_ns(self) -> float:
        return sum(s.ttft_ns for s in self.stats) / len(self.stats)

    def mean_tpot_ns(self) -> float:
        multi = [s.tpot_ns for s in self.stats if s.output_len > 1]
        return sum(multi) / len(multi) if multi else 0.0

    def mean_e2e_ns(self) -> float:
        return sum(s.e2e_ns for s in self.stats) / len(self.stats)

    # -- SLO accounting -------------------------------------------------
    def slo_attainment(self, slo_ttft_ns: float) -> float:
        """Fraction of the *offered* stream finished with TTFT within the
        SLO — shed requests count against attainment."""
        offered = len(self.stats) + len(self.shed)
        if not offered:
            return 0.0
        ok = sum(1 for s in self.stats if s.ttft_ns <= slo_ttft_ns)
        return ok / offered

    def good_tokens(self, slo_ttft_ns: float) -> int:
        """Output tokens of requests that met the TTFT SLO."""
        return sum(s.output_len for s in self.stats
                   if s.ttft_ns <= slo_ttft_ns)


def _exact_quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile over the exact sample (no bucketing)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def simulate_serving(system, spec: ServingSpec,
                     model: Optional[ModelConfig] = None,
                     style: str = "sp",
                     requests: Optional[Sequence[Request]] = None,
                     ) -> ServingResult:
    """Serve ``spec``'s request stream on ``system`` to completion.

    ``model`` defaults to the Table-I model named by ``spec.model``;
    ``style`` picks the TP lowering the system executes (callers use
    :func:`repro.experiments.runner.style_for`).  ``requests`` overrides
    the generated stream with an explicit list (the fleet router's
    per-replica assignments, :mod:`repro.llm.fleet`); every code path
    after generation is shared, so a 1-replica fleet run is byte-identical
    to the default path on the same stream.  The driver replans the
    batch at every iteration boundary *inside* the simulation: arrivals
    are simulator events, so admission order depends on simulated time,
    and two systems see identical request streams but batch them
    differently — exactly the continuous-batching dynamics the serving
    metrics measure.
    """
    if model is None:
        from .models import by_name
        model = by_name(spec.model)
    tp = system.config.num_gpus
    validate_tp_partition(model, tp)
    if requests is None:
        requests = generate_requests(spec)
    else:
        requests = list(requests)
    batcher = ContinuousBatcher(spec, model, requests)
    session = system.session()
    sim = session.harness.sim
    fault_state = session.fault_state
    retry_budget: Optional[RequestRetryBudget] = None
    if fault_state is not None:
        # Faults fire mid-stream: replan the next iteration against the
        # surviving capacity instead of stalling on the nominal plan.
        def _replan() -> None:
            batcher.degrade_capacity(fault_state.capacity_factor())
        fault_state.on_degradation(_replan)
        if spec.retry_budget is not None:
            retry_budget = RequestRetryBudget(spec.retry_budget)
            fault_state.retransmitter.add_retry_listener(
                retry_budget.note_retry)
    tracer = current_tracer()
    metrics = current_metrics()
    ts = current_timeseries()
    reqlog = current_request_log()
    cz = current_causality()
    tile = system.tiling.tile
    state = {"iterations": 0}
    max_iterations = sum(r.output_len for r in requests) + 16
    #: One flag for all per-iteration instrumentation below, so a run
    #: with every sink disabled takes exactly the pre-existing path.
    obs_iter = ts.enabled or reqlog.enabled
    if reqlog.enabled:
        for r in requests:
            reqlog.open(r.rid, r.arrival_ns, r.prompt_len, r.output_len)
    if obs_iter:
        def _on_evict(active: _Active, now_ns: float) -> None:
            if reqlog.enabled:
                reqlog.get(active.stats.rid).event("evicted", now_ns)
            if ts.enabled:
                ts.counter("serving.evictions").add(now_ns, 1)
        batcher.on_evict = _on_evict

        def _on_shed(active: _Active, now_ns: float) -> None:
            if reqlog.enabled:
                rec = reqlog.get(active.stats.rid)
                rec.event("shed", now_ns)
                # Its whole lifetime was spent queued; pad and seal.
                rec.close(now_ns, None, pad=True)
            if ts.enabled:
                ts.counter("serving.shed").add(now_ns, 1)
        batcher.on_shed = _on_shed

        def _on_abort(active: _Active, now_ns: float) -> None:
            if reqlog.enabled:
                reqlog.get(active.stats.rid).event("aborted", now_ns)
            if ts.enabled:
                ts.counter("serving.aborts").add(now_ns, 1)
        batcher.on_abort = _on_abort
    if session.fault_injector is not None:
        def _serving_report() -> str:
            head = ", ".join(
                f"r{a.stats.rid}:{a.emitted}/{a.stats.output_len}"
                for a in batcher.running[:4])
            return (f"serving[iter={state['iterations']}"
                    f" running={len(batcher.running)}"
                    + (f" ({head})" if head else "")
                    + f" waiting={len(batcher.waiting)}"
                    f" future={len(batcher.future)}"
                    f" finished={len(batcher.finished)}"
                    f" shed={len(batcher.shed)}]")
        session.fault_injector.add_watch_reporter(_serving_report)

    def record_finish(active: _Active, track_args: dict) -> None:
        s = active.stats
        if reqlog.enabled:
            reqlog.get(s.rid).close(s.finish_ns, s.first_token_ns)
        if tracer.enabled:
            track = tracer.track("serving", f"req{s.rid:04d}")
            handle = tracer.begin(track, "request", s.arrival_ns,
                                  cat="serving", args=track_args)
            if reqlog.enabled:
                # One span per phase, nested inside the request span; the
                # phases tile arrival -> finish, so their durations sum to
                # the request's e2e latency in the trace too.
                for ph in reqlog.get(s.rid).phases:
                    ph_handle = tracer.begin(track, ph.kind, ph.start_ns,
                                             cat="serving-phase",
                                             args={"tokens": ph.tokens})
                    tracer.end(ph_handle, ph.end_ns)
            tracer.instant(track, "first_token", s.first_token_ns,
                           cat="serving")
            tracer.end(handle, s.finish_ns)
        if metrics.enabled:
            metrics.counter("serving.requests_completed").inc()
            metrics.counter("serving.tokens_emitted").inc(s.output_len)
            metrics.histogram("serving.ttft_ns").record(s.ttft_ns)
            metrics.histogram("serving.e2e_ns").record(s.e2e_ns)
            if s.output_len > 1:
                metrics.histogram("serving.tpot_ns").record(s.tpot_ns)
        if ts.enabled:
            ts.counter("serving.requests_completed").add(s.finish_ns, 1)
            ts.sketch("serving.ttft_ns").record(s.finish_ns, s.ttft_ns)
            ts.sketch("serving.e2e_ns").record(s.finish_ns, s.e2e_ns)
            if s.output_len > 1:
                ts.sketch("serving.tpot_ns").record(s.finish_ns, s.tpot_ns)

    def step() -> None:
        now = sim.now
        plan = batcher.plan_iteration(now)
        if not plan:
            # Wake at the next arrival or — when admission gated us with
            # nothing running — at the gate's next possible state change.
            wakes = [t for t in (batcher.next_arrival_ns(),
                                 batcher.admission_wake_ns(now))
                     if t is not None]
            if not wakes:
                return                       # all requests finished
            sim.schedule(max(min(wakes) - now, 0.0), step)
            return
        state["iterations"] += 1
        if state["iterations"] > max_iterations:
            raise SimulationError(
                f"{system.name}: serving exceeded {max_iterations} "
                f"iterations for {len(requests)} requests — "
                f"scheduler is not making progress")
        if metrics.enabled:
            metrics.gauge("serving.kv_bytes").set(batcher.peak_kv_bytes)
            metrics.counter("serving.iterations").inc()
        it_start = now
        if obs_iter:
            # Phase kinds must be read at plan time: commit() clears
            # prefill_pending before iteration_done sees it.
            kinds = [PHASE_PREFILL if a.prefill_pending else PHASE_DECODE
                     for a, _, _ in plan]
            kv_now = batcher.kv_bytes_now
            cz_mark = len(cz) if cz.enabled else 0
        graph = serving_iteration_graph(
            model, tp, [(tokens, span) for _, tokens, span in plan],
            tile=tile, style=style,
            name=f"serve-it{state['iterations']:04d}")

        def iteration_done() -> None:
            it_end = sim.now
            if obs_iter:
                shares = (category_shares(cz, cz_mark, it_start, it_end)
                          if cz.enabled else None)
                if ts.enabled:
                    ts.counter("serving.tokens").add(it_end, len(plan))
                    ts.counter("serving.iterations").add(it_end, 1)
                    ts.gauge("serving.kv_bytes").set(it_end, kv_now)
                    ts.gauge("serving.batch_requests").set(it_end,
                                                           len(plan))
                    ts.sketch("serving.iteration_ns").record(
                        it_end, it_end - it_start)
                if reqlog.enabled:
                    for (active, tokens, _span), kind in zip(plan, kinds):
                        reqlog.get(active.stats.rid).phase(
                            kind, it_start, it_end, tokens,
                            dict(shares) if shares else None)
            for active in batcher.commit(plan, sim.now):
                record_finish(active, {"prompt": active.stats.prompt_len,
                                       "output": active.stats.output_len,
                                       "evictions":
                                           active.stats.evictions})
                if retry_budget is not None:
                    retry_budget.reset(active.stats.rid)
            if retry_budget is not None:
                # Charge this iteration's retransmissions to its surviving
                # participants; over-budget requests are aborted to a full
                # re-prefill rather than dragging the whole batch's tail.
                over = retry_budget.settle(
                    [a.stats.rid for a, _, _ in plan if not a.done])
                for rid in over:
                    if batcher.abort_request(rid, sim.now):
                        retry_budget.reset(rid)
            step()

        session.runner.run_graph(graph, on_done=iteration_done)

    sim.schedule(0.0, step)
    sim.run()
    if not batcher.all_done():
        raise SimulationError(
            f"{system.name}: serving run drained with "
            f"{len(batcher.running)} running / {len(batcher.waiting)} "
            f"waiting / {len(batcher.future)} future requests")
    stats = sorted((a.stats for a in batcher.finished),
                   key=lambda s: s.rid)
    partial = ServingResult(run=None, spec=spec, stats=stats,
                            iterations=state["iterations"],
                            evictions=batcher.evictions,
                            peak_kv_bytes=batcher.peak_kv_bytes,
                            shed=sorted((a.stats for a in batcher.shed),
                                        key=lambda s: s.rid),
                            aborts=batcher.aborts,
                            reprefill_tokens=batcher.reprefill_tokens,
                            replans=batcher.replans,
                            capacity_factor=batcher.capacity_factor,
                            deferred_iterations=batcher.deferred_iterations)
    details = {
        "serving.requests": float(len(stats)),
        "serving.tokens": float(partial.total_output_tokens),
        "serving.iterations": float(partial.iterations),
        "serving.evictions": float(partial.evictions),
        "serving.kv_peak_bytes": float(partial.peak_kv_bytes),
        "serving.tokens_per_s":
            (partial.total_output_tokens / sim.now * 1e9
             if sim.now > 0 else 0.0),
        "serving.ttft_mean_ns": partial.mean_ttft_ns(),
        "serving.ttft_p95_ns": partial.ttft_quantile_ns(0.95),
        "serving.tpot_mean_ns": partial.mean_tpot_ns(),
        "serving.e2e_mean_ns": partial.mean_e2e_ns(),
    }
    # Resilience details are gated on the mechanisms that produce them so
    # fault-free runs (fig20) stay byte-identical.
    if batcher.admission is not None:
        details["serving.shed"] = float(len(partial.shed))
        details["serving.admission_breaches"] = \
            float(batcher.admission.breaches)
        details["serving.admission_resumes"] = \
            float(batcher.admission.resumes)
        details["serving.deferred_iterations"] = \
            float(partial.deferred_iterations)
    if retry_budget is not None:
        details["serving.aborts"] = float(partial.aborts)
        details["serving.reprefill_tokens"] = \
            float(partial.reprefill_tokens)
    if spec.slo_ttft_ms is not None:
        slo_ns = spec.slo_ttft_ms * 1e6
        details["serving.slo_attainment"] = partial.slo_attainment(slo_ns)
        details["serving.goodput_tokens_per_s"] = \
            (partial.good_tokens(slo_ns) / sim.now * 1e9
             if sim.now > 0 else 0.0)
    if fault_state is not None:
        details["serving.capacity_factor"] = batcher.capacity_factor
        details["serving.replans"] = float(partial.replans)
        spans = (session.fault_schedule.windows()
                 if session.fault_schedule is not None else [])

        def _degraded(s: RequestStats) -> bool:
            # A request is degraded iff its lifetime overlaps any fault's
            # active span (permanent faults stay active to the end).
            return any(s.finish_ns >= start
                       and (end is None or s.arrival_ns <= end)
                       for start, end in spans)

        clean = [s for s in stats if not _degraded(s)]
        degraded = [s for s in stats if _degraded(s)]
        details["serving.degraded_requests"] = float(len(degraded))
        details["serving.ttft_p95_clean_ns"] = _exact_quantile(
            [s.ttft_ns for s in clean], 0.95)
        details["serving.ttft_p95_degraded_ns"] = _exact_quantile(
            [s.ttft_ns for s in degraded], 0.95)
        details["serving.tpot_p95_clean_ns"] = _exact_quantile(
            [s.tpot_ns for s in clean if s.output_len > 1], 0.95)
        details["serving.tpot_p95_degraded_ns"] = _exact_quantile(
            [s.tpot_ns for s in degraded if s.output_len > 1], 0.95)
    run = session.finish(**details)
    partial.run = run
    return partial
