"""Logical operator graphs for tensor-parallel transformer layers.

A :class:`Graph` is the *system-independent* description of the work: GEMMs
with their per-GPU shapes, vector ops (LayerNorm, GeLU, dropout+add,
attention-softmax), and collective ops (AllReduce / ReduceScatter /
AllGather) with their global tensor sizes.  Every system under test lowers
the same graph differently — kernel-level barriers, chunked software
pipelines, or CAIS's fused TB-level dataflow — which is exactly the paper's
comparison axis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..common.errors import WorkloadError


class OpKind(enum.Enum):
    GEMM = "gemm"
    VECTOR = "vector"                    # LN / GeLU / dropout+add / softmax
    COMM = "comm"


class CommKind(enum.Enum):
    ALL_REDUCE = "allreduce"
    REDUCE_SCATTER = "reducescatter"
    ALL_GATHER = "allgather"


@dataclass(frozen=True)
class GemmShape:
    """Per-GPU GEMM operand shapes: C[m, n] += A[m, k] @ B[k, n]."""

    m: int
    n: int
    k: int

    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


@dataclass
class LogicalOp:
    """One node of the layer graph."""

    name: str
    kind: OpKind
    deps: Tuple[str, ...] = ()
    gemm: Optional[GemmShape] = None
    #: VECTOR ops: number of elements and arithmetic intensity.
    elements: int = 0
    flops_per_element: float = 8.0
    #: COMM ops: collective kind and the *global* tensor size in bytes.
    comm: Optional[CommKind] = None
    comm_bytes: int = 0
    #: Fig. 12 sub-layer tag (L1..L4) when the op belongs to one.
    sublayer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.GEMM and self.gemm is None:
            raise WorkloadError(f"GEMM op {self.name} needs shapes")
        if self.kind is OpKind.COMM and (self.comm is None or
                                         self.comm_bytes <= 0):
            raise WorkloadError(f"COMM op {self.name} needs kind and bytes")
        if self.kind is OpKind.VECTOR and self.elements <= 0:
            raise WorkloadError(f"VECTOR op {self.name} needs elements")

    def flops(self) -> float:
        """Per-GPU arithmetic work of this op (0 for pure communication)."""
        if self.kind is OpKind.GEMM:
            return float(self.gemm.flops())
        if self.kind is OpKind.VECTOR:
            return self.elements * self.flops_per_element
        return 0.0


class Graph:
    """A small DAG of logical ops with explicit name-based dependencies."""

    def __init__(self, name: str):
        self.name = name
        self._ops: Dict[str, LogicalOp] = {}

    def add(self, op: LogicalOp) -> LogicalOp:
        if op.name in self._ops:
            raise WorkloadError(f"duplicate op name {op.name!r}")
        for dep in op.deps:
            if dep not in self._ops:
                raise WorkloadError(
                    f"op {op.name!r} depends on unknown {dep!r} "
                    f"(add producers before consumers)")
        self._ops[op.name] = op
        return op

    def __getitem__(self, name: str) -> LogicalOp:
        return self._ops[name]

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def ops(self) -> List[LogicalOp]:
        """Ops in insertion order (a valid topological order)."""
        return list(self._ops.values())

    def topo_order(self) -> List[LogicalOp]:
        """Kahn topological order; raises on cycles."""
        indegree = {name: len(op.deps) for name, op in self._ops.items()}
        consumers: Dict[str, List[str]] = {n: [] for n in self._ops}
        for op in self._ops.values():
            for dep in op.deps:
                consumers[dep].append(op.name)
        frontier = [n for n, d in indegree.items() if d == 0]
        order: List[LogicalOp] = []
        while frontier:
            name = frontier.pop(0)
            order.append(self._ops[name])
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    frontier.append(consumer)
        if len(order) != len(self._ops):
            raise WorkloadError(f"graph {self.name} has a cycle")
        return order

    def consumers_of(self, name: str) -> List[LogicalOp]:
        return [op for op in self._ops.values() if name in op.deps]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        """Per-GPU arithmetic work across the graph."""
        return sum(op.flops() for op in self._ops.values())

    def total_comm_bytes(self) -> int:
        """Sum of global tensor bytes moved by collective ops."""
        return sum(op.comm_bytes for op in self._ops.values()
                   if op.kind is OpKind.COMM)

    def comm_ops(self) -> List[LogicalOp]:
        return [op for op in self._ops.values() if op.kind is OpKind.COMM]

    def sublayer_ops(self, tag: str) -> List[LogicalOp]:
        return [op for op in self._ops.values() if op.sublayer == tag]
