"""Human-readable run reports.

``format_run_report`` turns a :class:`~repro.systems.base.RunResult` into a
compact text block — makespan, utilizations, merge statistics and a
Gantt-style kernel timeline — used by the examples and handy in a REPL.
"""

from __future__ import annotations

from typing import List


def format_run_report(result, gantt: bool = True, width: int = 48) -> str:
    """A multi-line summary of one system run."""
    lines: List[str] = [
        f"system: {result.system}",
        f"makespan: {result.makespan_ns / 1e3:.1f} us "
        f"({result.tbs_completed} TBs, {result.events} events)",
        f"link utilization (avg, both directions): "
        f"{result.average_bandwidth_utilization():.1%}",
        f"GPU SM-slot utilization: {result.gpu_utilization:.1%}",
    ]
    fp = {k[len("fastpath."):]: v for k, v in result.details.items()
          if k.startswith("fastpath.")}
    if fp:
        elided = fp.get("events_elided", 0.0)
        parts = [f"{int(elided):,} events elided"]
        if fp.get("link_windows"):
            parts.append(f"{int(fp['link_windows']):,} link windows")
        if fp.get("analytic_ops"):
            parts.append(f"{int(fp['analytic_ops']):,} analytic collectives")
        if fp.get("kernel_launches"):
            parts.append(f"{int(fp['kernel_launches']):,} analytic kernels")
        lines.append("engine fast-path: " + ", ".join(parts))
    if result.merge_stats is not None:
        m = result.merge_stats.summary()
        lines.append(
            f"in-switch merging: {m['sessions_completed']:.0f} sessions, "
            f"{m['requests_merged']:.0f} merged, "
            f"{m['lru_evictions'] + m['timeout_evictions']:.0f} evicted, "
            f"avg wait {m['average_wait_us']:.1f} us")
    if gantt and result.timeline is not None and result.timeline.spans():
        lines.append("kernel timeline:")
        lines.append(result.timeline.render(width=width))
    return "\n".join(lines)
