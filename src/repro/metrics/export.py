"""JSON export of run results.

Serializes a :class:`~repro.systems.base.RunResult` — headline numbers,
merge statistics, per-kernel timeline spans, and per-link utilization — to
a plain-JSON structure for downstream analysis (pandas, plotting, CI
dashboards).  Everything is derived data; no simulator objects leak out.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional


def run_result_to_dict(result, time_series_windows: int = 0) -> Dict[str, Any]:
    """Flatten a RunResult into JSON-serializable primitives.

    ``time_series_windows`` > 0 adds a fabric-wide utilization time series
    with that many windows (0 skips it — it is the bulkiest field).
    """
    out: Dict[str, Any] = {
        "system": result.system,
        "makespan_ns": result.makespan_ns,
        "compute_ns": result.compute_ns,
        "tbs_completed": result.tbs_completed,
        "events": result.events,
        "gpu_utilization": result.gpu_utilization,
        "link_utilization": result.average_bandwidth_utilization(),
        "details": dict(result.details),
    }
    if result.merge_stats is not None:
        out["merge"] = {k: float(v)
                        for k, v in result.merge_stats.summary().items()}
    if result.timeline is not None:
        kernels = []
        for s in result.timeline.spans():
            entry = {"name": s.name, "start_ns": s.start_ns,
                     "end_ns": s.end_ns}
            if not s.complete:
                # Flushed at teardown, never actually finished.
                entry["unterminated"] = True
            kernels.append(entry)
        out["kernels"] = kernels
    metrics = getattr(result, "metrics", None)
    if metrics is not None and metrics.enabled:
        out["metrics"] = metrics.snapshot()
    if result.network is not None:
        out["bytes_on_fabric"] = sum(
            l.tracker.bytes_transferred for l in result.network.all_links())
        if time_series_windows > 0 and result.makespan_ns > 0:
            links = result.network.all_links()
            window = result.makespan_ns / time_series_windows
            series = []
            # Iterate window *indices*: accumulating t += window drifts in
            # float and could emit a duplicate or truncated final window.
            for i in range(time_series_windows):
                lo = i * window
                hi = (result.makespan_ns if i == time_series_windows - 1
                      else (i + 1) * window)
                util = sum(l.tracker.utilization(lo, hi)
                           for l in links) / len(links)
                series.append({"t_ns": (lo + hi) / 2, "utilization": util})
            out["utilization_series"] = series
    return out


def dump_run_result(result, path: str,
                    time_series_windows: int = 0) -> None:
    """Write a RunResult to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(run_result_to_dict(result, time_series_windows), fh,
                  indent=2)


def load_run_summary(path: str) -> Dict[str, Any]:
    """Read back a previously dumped run summary."""
    with open(path) as fh:
        return json.load(fh)
