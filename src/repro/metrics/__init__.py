"""Measurement: bandwidth utilization, merge statistics, run reports."""

from .bandwidth import BandwidthTracker
from .export import dump_run_result, load_run_summary, run_result_to_dict
from .merge_stats import MergeStats
from .report import format_run_report
from .timeline import Span, Timeline

__all__ = ["BandwidthTracker", "MergeStats", "Span", "Timeline",
           "dump_run_result", "format_run_report", "load_run_summary",
           "run_result_to_dict"]
