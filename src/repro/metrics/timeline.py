"""Per-kernel execution timeline.

Records (kernel name, launch time, completion time) for every kernel the
executor launches, giving runs a Gantt-style breakdown: which operators
overlapped, where the critical path sat, how much of the makespan each
stage covered.  Used by the run reports and the fusion-study example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """One kernel's lifetime.

    ``complete`` is False for spans that were still open when the run tore
    down and were closed by :meth:`Timeline.flush` — their ``end_ns`` is
    the flush time, not a real completion.
    """

    name: str
    start_ns: float
    end_ns: float
    complete: bool = True

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def overlaps(self, other: "Span") -> bool:
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns


class Timeline:
    """Ordered record of kernel spans."""

    def __init__(self) -> None:
        self._open: Dict[int, Tuple[str, float]] = {}
        self._spans: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Recording (driven by the executor)
    # ------------------------------------------------------------------
    def begin(self, name: str, time_ns: float) -> int:
        """Open a span; returns a handle for :meth:`end`."""
        handle = self._next_id
        self._next_id += 1
        self._open[handle] = (name, time_ns)
        return handle

    def end(self, handle: int, time_ns: float) -> None:
        name, start = self._open.pop(handle)
        self._spans.append(Span(name, start, time_ns))

    def flush(self, time_ns: float) -> List[Span]:
        """Close every still-open span at ``time_ns``.

        Spans a run abandoned (deadlock, ``until=`` cutoff, crash during
        teardown) used to vanish silently from reports; now they are
        recorded with ``complete=False`` so exports can flag them.
        Returns the flushed spans, in handle (open) order.
        """
        flushed = [Span(name, start, max(time_ns, start), complete=False)
                   for _, (name, start) in sorted(self._open.items())]
        self._open.clear()
        self._spans.extend(flushed)
        return flushed

    def open_spans(self) -> List[Tuple[str, float]]:
        """(name, start_ns) of spans begun but not yet ended."""
        return [self._open[h] for h in sorted(self._open)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Completed spans in completion order (flushed ones included,
        marked ``complete=False``)."""
        return list(self._spans)

    def span_for(self, name: str) -> Optional[Span]:
        """The first completed span with this name (None if absent)."""
        for span in self._spans:
            if span.name == name:
                return span
        return None

    def overlap_ns(self, a: str, b: str) -> float:
        """Wall-clock overlap between the first spans named ``a`` and ``b``."""
        sa, sb = self.span_for(a), self.span_for(b)
        if sa is None or sb is None:
            return 0.0
        lo = max(sa.start_ns, sb.start_ns)
        hi = min(sa.end_ns, sb.end_ns)
        return max(0.0, hi - lo)

    def critical_span(self) -> Optional[Span]:
        """The span that finished last."""
        if not self._spans:
            return None
        return max(self._spans, key=lambda s: s.end_ns)

    def render(self, width: int = 48) -> str:
        """ASCII Gantt chart of the completed spans."""
        if not self._spans:
            return "(empty timeline)"
        t1 = max(s.end_ns for s in self._spans)
        if t1 <= 0:
            return "(empty timeline)"
        name_w = max(len(s.name) for s in self._spans)
        lines = []
        for span in sorted(self._spans, key=lambda s: s.start_ns):
            lo = int(span.start_ns / t1 * width)
            hi = max(lo + 1, int(span.end_ns / t1 * width))
            bar = " " * lo + "#" * (hi - lo)
            lines.append(f"{span.name:<{name_w}} |{bar:<{width}}| "
                         f"{span.start_ns / 1e3:9.1f} -> "
                         f"{span.end_ns / 1e3:9.1f} us")
        return "\n".join(lines)
