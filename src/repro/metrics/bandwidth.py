"""Link bandwidth accounting.

Every simulated link owns a :class:`BandwidthTracker` that records the time
intervals during which the link was serializing data.  From those intervals
we derive the utilization metrics of the paper's Figures 15 and 16:

* average utilization over the busy span of a run (Fig. 15), and
* a windowed utilization time series (Fig. 16).
"""

from __future__ import annotations

from typing import List, Tuple


class BandwidthTracker:
    """Busy-interval recorder for one link direction.

    Intervals are appended in non-decreasing start order (the link serializes
    messages back to back), and adjacent/overlapping intervals are merged on
    the fly so memory stays proportional to the number of idle gaps.
    """

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []
        self.bytes_transferred: int = 0
        self.messages: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, start: float, end: float, nbytes: int) -> None:
        """Record a serialization interval ``[start, end)`` of ``nbytes``."""
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        self.bytes_transferred += nbytes
        self.messages += 1
        if self._intervals and start <= self._intervals[-1][1]:
            prev_start, prev_end = self._intervals[-1]
            if start < prev_start:
                raise ValueError("busy intervals must be recorded in order")
            self._intervals[-1] = (prev_start, max(prev_end, end))
        else:
            self._intervals.append((start, end))

    # ------------------------------------------------------------------
    # Delta capture / replay (analytic collective bypass, DESIGN.md §11)
    # ------------------------------------------------------------------
    def mark(self) -> Tuple[int, float, int, int]:
        """Opaque watermark for :meth:`delta_since`."""
        last_end = self._intervals[-1][1] if self._intervals else 0.0
        return (len(self._intervals), last_end,
                self.bytes_transferred, self.messages)

    def delta_since(self, mark: Tuple[int, float, int, int],
                    t0: float) -> Tuple[List[Tuple[float, float]], int, int]:
        """What :meth:`record` added since ``mark``, relative to ``t0``.

        Returns ``(intervals, nbytes, messages)`` with interval endpoints
        shifted by ``-t0``.  A merge that extended the pre-mark tail
        interval is captured as its extension piece, so replaying the
        delta reproduces the post-mark busy time exactly.
        """
        n, last_end, prev_bytes, prev_msgs = mark
        rel: List[Tuple[float, float]] = []
        if n and self._intervals[n - 1][1] > last_end:
            rel.append((last_end - t0, self._intervals[n - 1][1] - t0))
        rel.extend((s - t0, e - t0) for s, e in self._intervals[n:])
        return (rel, self.bytes_transferred - prev_bytes,
                self.messages - prev_msgs)

    def replay(self, delta: Tuple[List[Tuple[float, float]], int, int],
               t0: float) -> None:
        """Apply a captured delta as if the traffic had run again at ``t0``.

        Busy intervals land at ``t0 + relative`` (merging with existing
        tail intervals as :meth:`record` would); byte and message counts
        are added wholesale rather than per message.
        """
        rel, nbytes, messages = delta
        for s, e in rel:
            self.record(t0 + s, t0 + e, 0)
        self.bytes_transferred += nbytes
        self.messages += messages - len(rel)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> List[Tuple[float, float]]:
        """The merged busy intervals recorded so far."""
        return list(self._intervals)

    def busy_time(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Total busy time overlapping the window ``[t0, t1]``."""
        total = 0.0
        for start, end in self._intervals:
            lo = max(start, t0)
            hi = min(end, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, t0: float, t1: float) -> float:
        """Fraction of ``[t0, t1]`` the link spent serializing data."""
        if t1 <= t0:
            raise ValueError(f"empty window {t0}..{t1}")
        return self.busy_time(t0, t1) / (t1 - t0)

    def first_activity(self) -> float:
        """Start of the first busy interval (inf if the link never fired)."""
        return self._intervals[0][0] if self._intervals else float("inf")

    def last_activity(self) -> float:
        """End of the last busy interval (0 if the link never fired)."""
        return self._intervals[-1][1] if self._intervals else 0.0

    def time_series(self, t0: float, t1: float,
                    window: float) -> List[Tuple[float, float]]:
        """Windowed utilization samples ``[(window_center, utilization), ...]``.

        Used to regenerate the Fig. 16 bandwidth-over-time traces.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        samples = []
        t = t0
        while t < t1:
            hi = min(t + window, t1)
            samples.append(((t + hi) / 2.0, self.utilization(t, hi)))
            t += window
        return samples
