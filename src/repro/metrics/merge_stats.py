"""Statistics collected by the CAIS merge unit.

Feeds three of the paper's analyses:

* **Fig. 13(b)** — average *waiting time*: the delay between the earliest and
  latest request targeting the same address, the paper's temporal-locality
  metric (35 us uncoordinated, < 3 us with full coordination).
* **Fig. 13(a)** — *minimal required merge-table size*: the high-water mark
  of table occupancy when capacity is unbounded.
* **Fig. 14** — merged/bypassed/evicted request counts under constrained
  table sizes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class MergeStats:
    """Aggregated counters and traces for one run (all ports, all planes)."""

    def __init__(self) -> None:
        self.sessions_completed = 0
        self.requests_merged = 0          # requests that hit an open session
        self.requests_started = 0         # requests that opened a session
        self.bypasses = 0                 # forwarded unmerged (table full)
        self.lru_evictions = 0
        self.timeout_evictions = 0
        self.partial_reductions_emitted = 0
        self._session_waits_ns: List[float] = []
        # Occupancy in capacity units (128 B entries), per (plane, port).
        self._occupancy: Dict[Tuple[int, int], int] = {}
        self._peak_entries: Dict[Tuple[int, int], int] = {}
        self._occupancy_trace: List[Tuple[float, int]] = []
        self._total_entries = 0

    # ------------------------------------------------------------------
    # Waiting time (Fig. 13b)
    # ------------------------------------------------------------------
    def record_session_wait(self, first_arrival: float,
                            last_arrival: float) -> None:
        """Record the first-to-last request spread of a completed session."""
        if last_arrival < first_arrival:
            raise ValueError("session completed before it started")
        self._session_waits_ns.append(last_arrival - first_arrival)

    @property
    def session_waits_ns(self) -> List[float]:
        return list(self._session_waits_ns)

    def average_wait_ns(self) -> float:
        """Mean first-to-last request spread (0 if no sessions merged)."""
        if not self._session_waits_ns:
            return 0.0
        return sum(self._session_waits_ns) / len(self._session_waits_ns)

    def max_wait_ns(self) -> float:
        return max(self._session_waits_ns, default=0.0)

    # ------------------------------------------------------------------
    # Table occupancy (Fig. 13a / Fig. 14)
    # ------------------------------------------------------------------
    def occupancy_change(self, time: float, plane: int, port: int,
                         delta_entries: int) -> None:
        """Adjust the live entry count for one port by ``delta_entries``."""
        key = (plane, port)
        used = self._occupancy.get(key, 0) + delta_entries
        if used < 0:
            raise ValueError(f"occupancy for {key} went negative")
        self._occupancy[key] = used
        if used > self._peak_entries.get(key, 0):
            self._peak_entries[key] = used
        self._total_entries += delta_entries
        self._occupancy_trace.append((time, self._total_entries))

    def peak_entries_per_port(self) -> int:
        """Worst-case live entries on any single port (Fig. 13a metric)."""
        return max(self._peak_entries.values(), default=0)

    def peak_bytes_per_port(self, entry_bytes: int = 128) -> int:
        """Fig. 13a's 'minimal required Merge Table size' in bytes."""
        return self.peak_entries_per_port() * entry_bytes

    def occupancy_trace(self) -> List[Tuple[float, int]]:
        """(time, total live entries) transitions, fabric-wide."""
        return list(self._occupancy_trace)

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def merge_rate(self) -> float:
        """Fraction of mergeable requests that actually merged or started a
        session (1.0 means no bypasses)."""
        total = self.requests_merged + self.requests_started + self.bypasses
        if total == 0:
            return 1.0
        return (self.requests_merged + self.requests_started) / total

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers, for reports and tests."""
        return {
            "sessions_completed": self.sessions_completed,
            "requests_merged": self.requests_merged,
            "requests_started": self.requests_started,
            "bypasses": self.bypasses,
            "lru_evictions": self.lru_evictions,
            "timeout_evictions": self.timeout_evictions,
            "partial_reductions_emitted": self.partial_reductions_emitted,
            "average_wait_us": self.average_wait_ns() / 1e3,
            "peak_entries_per_port": self.peak_entries_per_port(),
            "merge_rate": self.merge_rate(),
        }
