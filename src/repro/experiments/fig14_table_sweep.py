"""Fig. 14 — performance sensitivity to Merge Table size.

LLaMA-7B with merge-table capacities swept from a few entries up to the
shipping 320-entry (40 KB) configuration, for CAIS with and without
merging-aware TB coordination.  The paper's claim: the coordinated system
holds its performance down to small tables while the uncoordinated one
degrades rapidly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, run_system, sublayer_for

CAPACITIES = (16, 32, 64, 128, 320)


def run(scale: Scale = DEFAULT, model_name: str = "LLaMA-7B",
        which: str = "L1",
        capacities: Sequence[int] = CAPACITIES,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[int, float]]:
    """Returns {system: {entries: makespan_us}}."""
    cfg = dgx_h100_config()
    model = scale.apply(TABLE_I[model_name])
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for system in ("CAIS", "CAIS-w/o-Coord"):
        for entries in capacities:
            graph = sublayer_for(model, cfg.num_gpus, system, which)
            tasks.append(SimTask(
                system=system, graphs=(graph,),
                config=cfg.with_merge_entries(entries), scale=scale))
            keys.append((system, entries))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[int, float]] = {}
    for (system, entries), res in zip(keys, summaries):
        out.setdefault(system, {})[entries] = res.makespan_ns / 1e3
    return out


def normalized(results: Dict[str, Dict[int, float]]) -> Dict[str, Dict[int, float]]:
    """Performance (1/time) normalized to coordinated CAIS at max size."""
    best = min(results["CAIS"].values())
    return {system: {entries: best / t for entries, t in row.items()}
            for system, row in results.items()}


def format_table(results: Dict[str, Dict[int, float]]) -> str:
    norm = normalized(results)
    capacities = sorted(next(iter(results.values())))
    headers = ["system"] + [f"{e} entries ({e * 128 // 1024} KB)"
                            for e in capacities]
    rows = [[system] + [norm[system][e] for e in capacities]
            for system in results]
    return ("### Fig. 14: normalized performance vs merge-table size\n" +
            markdown_table(headers, rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
