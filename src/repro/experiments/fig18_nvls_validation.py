"""Fig. 18 — validation of the simulated NVLS.

The paper measures NCCL AllReduce with NVLS on real DGX-H100 hardware and
compares its simulator across 1-16 GB messages, reporting a 3.87% average
error.  Without hardware, the reference series is the analytic alpha-beta
model of one-shot NVLS AllReduce (:mod:`repro.collectives.reference`) —
the experiment preserves the validation *structure*: the event-driven
switch/link simulation must independently land on the same curve.

Message sizes are scaled down (tens of MB to ~1 GB instead of 1-16 GB) to
keep chunk-granular event counts tractable; both series are in their
bandwidth-saturated regime, like the paper's.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..collectives.nvls_collectives import NvlsCollective
from ..collectives.reference import nvls_allreduce_time_ns
from ..common.config import dgx_h100_config
from ..common.events import Simulator
from ..gpu.executor import Executor
from ..interconnect.network import Network
from ..nvls.engine import NvlsEngine
from .runner import markdown_table

SIZES_MB = (64, 128, 256, 512, 1024)


def simulate_allreduce_ns(nbytes: int, chunk_bytes: int = 1 << 17) -> float:
    cfg = dgx_h100_config()
    sim = Simulator()
    net = Network(sim, cfg)
    ex = Executor(sim, cfg, net, jitter_enabled=False)
    for sw in net.switches:
        sw.attach_engine(NvlsEngine())
    coll = NvlsCollective(net, ex.gpus, chunk_bytes=chunk_bytes)
    rid = coll.all_reduce(nbytes, on_complete=lambda: None)
    sim.run()
    return coll.finish_time(rid)


def run(sizes_mb: Sequence[int] = SIZES_MB) -> Dict[int, Dict[str, float]]:
    """Returns {MB: {simulated_us, reference_us, error_%}}."""
    cfg = dgx_h100_config()
    out: Dict[int, Dict[str, float]] = {}
    for mb in sizes_mb:
        nbytes = mb << 20
        simulated = simulate_allreduce_ns(nbytes)
        reference = nvls_allreduce_time_ns(nbytes, cfg)
        out[mb] = {
            "simulated_us": simulated / 1e3,
            "reference_us": reference / 1e3,
            "error_%": abs(simulated - reference) / reference * 100.0,
        }
    return out


def average_error(results: Dict[int, Dict[str, float]]) -> float:
    return sum(r["error_%"] for r in results.values()) / len(results)


def format_table(results: Dict[int, Dict[str, float]]) -> str:
    rows = [[f"{mb} MB", row["simulated_us"], row["reference_us"],
             row["error_%"]] for mb, row in sorted(results.items())]
    rows.append(["average error", "", "", average_error(results)])
    return ("### Fig. 18: simulated NVLS AllReduce vs analytic reference\n" +
            markdown_table(["size", "simulated (us)", "reference (us)",
                            "error (%)"], rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
