"""Fig. 12 — sub-layer performance speedup (L1-L4).

The four communication-intensive GEMM-RS + LN + AG-GEMM chains of a
transformer layer (Section V-A-2), run under every system; CAIS's speedup
over each baseline is reported per sub-layer per model plus geomeans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from ..llm.tp import SUBLAYERS
from .parallel import ExecContext, SimTask, run_matrix
from .runner import (
    BASELINES,
    DEFAULT,
    Scale,
    geomean,
    markdown_table,
    run_system,
    sublayer_for,
)

REPORTED = BASELINES + ("CAIS-Base", "CAIS")


def run(scale: Scale = DEFAULT,
        models: Optional[Sequence[str]] = None,
        sublayers: Sequence[str] = SUBLAYERS,
        systems: Sequence[str] = REPORTED,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[str, Dict]]:
    """Returns {model: {sublayer: {system: makespan_us}}}."""
    cfg = dgx_h100_config()
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for model_name in (models or list(TABLE_I)):
        model = scale.apply(TABLE_I[model_name])
        for which in sublayers:
            for system in systems:
                graph = sublayer_for(model, cfg.num_gpus, system, which)
                tasks.append(SimTask(system=system, graphs=(graph,),
                                     config=cfg, scale=scale))
                keys.append((model_name, which, system))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[str, Dict]] = {}
    for (model_name, which, system), res in zip(keys, summaries):
        out.setdefault(model_name, {}).setdefault(which, {})[system] = \
            res.makespan_ns / 1e3
    return out


def format_table(results: Dict[str, Dict[str, Dict]]) -> str:
    headers = ["model/sub-layer"] + [s for s in REPORTED if s != "CAIS"]
    rows: List[List[object]] = []
    per_system: Dict[str, List[float]] = {}
    for model_name, subs in results.items():
        for which, systems in subs.items():
            cais = systems["CAIS"]
            row: List[object] = [f"{model_name} {which}"]
            for system in REPORTED:
                if system == "CAIS" or system not in systems:
                    continue
                speedup = systems[system] / cais
                per_system.setdefault(system, []).append(speedup)
                row.append(speedup)
            rows.append(row)
    rows.append(["geomean"] + [geomean(per_system[s])
                               for s in REPORTED if s in per_system])
    return ("### Fig. 12: CAIS speedup over each baseline, per sub-layer\n" +
            markdown_table(headers, rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
