"""``python -m repro explain`` — makespan attribution across systems.

Runs the same workload under two or more systems with a causal recorder
installed, extracts each run's critical path
(:mod:`repro.obs.critical_path`), and prints a deterministic report:
per-system attribution tables, the longest path segments, and a
cross-system comparison ("switch_merge moved off critical path: N ns").

The report is a pure function of (model, workload, systems, gpus, seed,
scale): same arguments, same seed — byte-identical output.  Runs are
executed directly (never through the experiment cache), because the cache
stores summaries, not causal DAGs.

Usage::

    python -m repro explain --workload L2 --systems CAIS TP-NVLS SP-NVLS
    python -m repro explain --model LLaMA-7B --gpus 4 --out explain.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Tuple

from .. import obs
from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I, by_name
from ..llm.tiling import TilingConfig
from ..llm.tp import SUBLAYERS
from ..obs.critical_path import (CriticalPath, format_comparison,
                                 format_report)
from ..systems import SYSTEM_CLASSES, make_system
from .runner import Scale, sublayer_for

DEFAULT_SYSTEMS = ("CAIS", "TP-NVLS", "SP-NVLS")


def explain_runs(model_name: str, workload: str, systems: List[str],
                 gpus: int, seed: int,
                 scale: float) -> List[Tuple[str, CriticalPath]]:
    """Run each system on the workload and extract its critical path.

    Each run gets a fresh :class:`~repro.obs.causality.CausalityRecorder`,
    installed before the harness is built (components capture the recorder
    at construction) and uninstalled afterwards.
    """
    config = dgx_h100_config(num_gpus=gpus, seed=seed)
    run_scale = Scale(tokens_fraction=scale,
                      tiling=TilingConfig(chunk_bytes=32768,
                                          red_chunk_bytes=8192))
    model = run_scale.apply(by_name(model_name))
    paths: List[Tuple[str, CriticalPath]] = []
    for system in systems:
        graphs = [sublayer_for(model, gpus, system, workload)]
        recorder = obs.CausalityRecorder()
        obs.install(causality=recorder)
        try:
            result = make_system(system, config,
                                 tiling=run_scale.tiling).run(graphs)
        finally:
            obs.reset()
        if result.critical_path is None:
            raise RuntimeError(
                f"{system}: run produced no critical path (recorder "
                f"was installed — this is a bug)")
        paths.append((system, result.critical_path))
    return paths


def format_explain_report(model_name: str, workload: str, gpus: int,
                          seed: int, scale: float,
                          paths: List[Tuple[str, CriticalPath]],
                          top: int = 10) -> str:
    """The full deterministic report for one explain invocation."""
    lines = [f"# repro explain — {model_name} {workload}, "
             f"{gpus} GPUs, seed={seed}, scale={scale:g}", ""]
    for name, path in paths:
        lines += [format_report(name, path, top=top), ""]
    if len(paths) > 1:
        lines += [format_comparison(paths), ""]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="critical-path attribution comparison across systems")
    parser.add_argument("--model", default="LLaMA-7B",
                        choices=sorted(TABLE_I))
    parser.add_argument("--workload", default="L2", choices=SUBLAYERS,
                        help="one Fig. 12 sub-layer")
    parser.add_argument("--systems", nargs="+",
                        default=list(DEFAULT_SYSTEMS),
                        choices=sorted(SYSTEM_CLASSES), metavar="SYSTEM",
                        help="systems to compare; the first is the "
                             "comparison baseline (default: %(default)s)")
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--scale", type=float, default=0.125,
                        help="fraction of the model's tokens to simulate")
    parser.add_argument("--top", type=int, default=10,
                        help="longest segments listed per system")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="also write the report to PATH")
    args = parser.parse_args(argv)

    paths = explain_runs(args.model, args.workload, args.systems,
                         args.gpus, args.seed, args.scale)
    report = format_explain_report(args.model, args.workload, args.gpus,
                                   args.seed, args.scale, paths,
                                   top=args.top)
    print(report, end="")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"report: {args.out}")
    return 0


if __name__ == "__main__":   # pragma: no cover - module CLI
    sys.exit(main())
