"""Fig. 2 — computation vs. communication time when scaling up.

The paper runs LLaMA-7B on the simulated fabric and shows communication
time overtaking computation beyond 4-8 GPUs (about 1.6x computation at 8
GPUs).  We measure the same two quantities per transformer layer: the
makespan of the layer's compute kernels alone, and the duration of its
collective operations alone (GPU-driven ring transport, as in the
motivational setup that predates the in-switch optimizations).
"""

from __future__ import annotations

from typing import Dict, List

from ..common.config import dgx_h100_config
from ..common.events import Simulator
from ..collectives.ring import RingCollective
from ..gpu.executor import Executor
from ..interconnect.network import Network
from ..llm.graph import CommKind, OpKind
from ..llm.models import LLAMA_7B
from ..llm.tiling import compute_kernel, reset_tensor_ids
from ..llm.tp import sp_forward_layer
from .runner import DEFAULT, Scale, markdown_table

GPU_COUNTS = (2, 4, 8, 16)


def compute_time_ns(model, tp: int, scale: Scale) -> float:
    """Makespan of the layer's compute kernels, run back to back."""
    cfg = dgx_h100_config().with_gpus(tp)
    sim = Simulator()
    net = Network(sim, cfg)
    ex = Executor(sim, cfg, net, jitter_enabled=False)
    graph = sp_forward_layer(model, tp)
    ops = [op for op in graph.topo_order() if op.kind is not OpKind.COMM]

    def launch(index: int) -> None:
        if index == len(ops):
            return
        kernel = compute_kernel(ops[index], cfg.gpu, scale.tiling)
        # Strictly sequential chain: each launch happens alone in its frame.
        ex.launch_kernel(kernel, on_complete=lambda: launch(index + 1),
                         isolated=True)

    launch(0)
    return ex.run()


def comm_time_ns(model, tp: int, scale: Scale) -> float:
    """Duration of the layer's collectives, run back to back on an idle
    fabric with the ring transport."""
    cfg = dgx_h100_config().with_gpus(tp)
    sim = Simulator()
    net = Network(sim, cfg)
    ex = Executor(sim, cfg, net, jitter_enabled=False)
    ring = RingCollective(net, ex.gpus, chunk_bytes=scale.coll_chunk_bytes)
    graph = sp_forward_layer(model, tp)
    comms = graph.comm_ops()

    def launch(index: int) -> None:
        if index == len(comms):
            return
        op = comms[index]
        runner = {CommKind.ALL_REDUCE: ring.all_reduce,
                  CommKind.REDUCE_SCATTER: ring.reduce_scatter,
                  CommKind.ALL_GATHER: ring.all_gather}[op.comm]
        runner(op.comm_bytes, on_complete=lambda: launch(index + 1))

    launch(0)
    sim.run()
    return sim.now


def run(scale: Scale = DEFAULT) -> Dict[int, Dict[str, float]]:
    """Returns {gpus: {compute_us, comm_us, ratio}} for LLaMA-7B."""
    results: Dict[int, Dict[str, float]] = {}
    for tp in GPU_COUNTS:
        reset_tensor_ids()
        model = scale.apply(LLAMA_7B)
        compute = compute_time_ns(model, tp, scale)
        comm = comm_time_ns(model, tp, scale)
        results[tp] = {
            "compute_us": compute / 1e3,
            "comm_us": comm / 1e3,
            "ratio": comm / compute,
        }
    return results


def format_table(results: Dict[int, Dict[str, float]]) -> str:
    rows: List[List[object]] = []
    for tp, row in sorted(results.items()):
        rows.append([tp, row["compute_us"], row["comm_us"], row["ratio"]])
    return markdown_table(
        ["GPUs", "compute (us/layer)", "comm (us/layer)", "comm/compute"],
        rows)


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
