"""Live telemetry for the matrix runner itself (harness observability).

The simulations a sweep runs are deeply observable (traces, metrics,
``explain``); the *runner* executing a thousand of them was, until this
module, a silent wait followed by a table.  Two opt-in views fix that,
both fed by the worker envelopes :func:`~.parallel.run_matrix` already
collects, and both strictly outside the simulation — they add zero
events and zero RNG draws, so enabling them cannot change any result:

* :class:`ProgressBoard` — a one-line stderr board redrawn on every
  task completion: done/total, worker-pool utilization, cache hit rate,
  EWMA task wall time, and the ETA those imply.
* :class:`MetaTrace` — a Perfetto trace **of the harness**: one track
  per worker process, one span per executed :class:`~.parallel.SimTask`,
  instant events for cache hits on the scheduler track.  Exported with
  the PR-1 tracer/exporter, so a slow sweep is diagnosed in the same UI
  as a slow simulation.

Everything here is wall-clock (host time), which is exactly the point:
these are measurements of the harness, quarantined from the simulation's
deterministic outputs the same way the ledger's volatile section is.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Dict, List, Optional, Tuple

from ..obs.perfetto import write_chrome_trace
from ..obs.tracer import Tracer

#: EWMA smoothing for the per-task wall-time estimate driving the ETA.
_EWMA_ALPHA = 0.2


class ProgressBoard:
    """Single-line live progress board for one ``run_matrix`` call.

    Redraws (carriage return, no scroll) on every task completion or
    cache hit; :meth:`close` finalizes the line.  Writing to a non-tty
    (CI logs) is fine — each redraw is a plain line fragment and the
    final state is always printed.
    """

    def __init__(self, total: int, jobs: int,
                 stream: Optional[IO[str]] = None):
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0                 # simulated (cache misses)
        self.hits = 0                 # served from cache or aliased
        self.ewma_ms: Optional[float] = None
        self.busy_ms = 0.0            # summed task wall time
        self._t0 = time.monotonic()
        self._last_line = ""

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def task_done(self, wall_ms: float) -> None:
        """One task finished simulating (a cache miss)."""
        self.done += 1
        self.busy_ms += wall_ms
        self.ewma_ms = (wall_ms if self.ewma_ms is None else
                        _EWMA_ALPHA * wall_ms +
                        (1.0 - _EWMA_ALPHA) * self.ewma_ms)
        self.render()

    def cache_hit(self) -> None:
        """One task served without simulating (cache or in-matrix alias)."""
        self.hits += 1
        self.render()

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return self.done + self.hits

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.completed)

    def hit_rate(self) -> float:
        return self.hits / self.completed if self.completed else 0.0

    def utilization(self) -> float:
        """Summed task wall time over elapsed pool capacity — how busy
        the worker pool has been so far (1.0 = fully utilized)."""
        elapsed_ms = (time.monotonic() - self._t0) * 1e3
        if elapsed_ms <= 0.0:
            return 0.0
        return min(1.0, self.busy_ms / (elapsed_ms * self.jobs))

    def eta_s(self) -> Optional[float]:
        """Projected seconds to finish the remaining tasks, assuming the
        EWMA task cost and a fully-busy pool; None before any task ran."""
        if self.ewma_ms is None:
            return None
        return self.remaining * self.ewma_ms / 1e3 / self.jobs

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def line(self) -> str:
        bits = [f"[matrix] {self.completed}/{self.total}"]
        if self.completed:
            bits.append(f"cache {self.hit_rate():.0%}")
        bits.append(f"workers {self.jobs} @ {self.utilization():.0%}")
        if self.ewma_ms is not None:
            bits.append(f"ewma {self.ewma_ms:,.0f} ms/task")
        eta = self.eta_s()
        if eta is not None:
            bits.append(f"eta {eta:,.1f} s")
        return " | ".join(bits)

    def render(self) -> None:
        line = self.line()
        # Pad over the previous render so a shrinking line leaves no tail.
        pad = max(0, len(self._last_line) - len(line))
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):
            pass
        self._last_line = line

    def close(self) -> None:
        """Finish the board with a newline and a one-line summary."""
        self.render()
        elapsed = time.monotonic() - self._t0
        try:
            self.stream.write(f"\n[matrix] {self.total} tasks in "
                              f"{elapsed:.1f} s ({self.done} simulated, "
                              f"{self.hits} from cache)\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass


class MetaTrace:
    """Collects harness-level spans and exports them as Perfetto JSON.

    Feed it from the parent process: :meth:`task_span` per executed task
    (workers report their pid and monotonic start/end stamps in the
    envelope) and :meth:`cache_hit` per task served without simulating.
    Worker tracks are named by first-appearance order so the trace reads
    ``worker 0..N-1`` regardless of pid values.
    """

    def __init__(self) -> None:
        self.epoch = time.monotonic()
        #: (pid, start_ns, end_ns, name, args) per executed task.
        self._spans: List[Tuple[int, float, float, str, Dict]] = []
        #: (t_ns, name, args) per cache hit, on the scheduler track.
        self._hits: List[Tuple[float, str, Dict]] = []

    def _rel_ns(self, monotonic_s: float) -> float:
        # Clamp: on platforms where worker clocks are not comparable to
        # the parent's, a span is better pinned at 0 than negative.
        return max(0.0, (monotonic_s - self.epoch) * 1e9)

    def task_span(self, index: int, label: str, fingerprint: str,
                  pid: int, start_s: float, end_s: float,
                  wall_ms: float) -> None:
        args = {"task": index, "fingerprint": fingerprint[:12],
                "wall_ms": round(wall_ms, 3)}
        self._spans.append((pid, self._rel_ns(start_s),
                            self._rel_ns(end_s), label, args))

    def cache_hit(self, index: int, label: str, fingerprint: str) -> None:
        t_ns = self._rel_ns(time.monotonic())
        self._hits.append((t_ns, label,
                           {"task": index, "fingerprint": fingerprint[:12]}))

    def span_count(self) -> int:
        return len(self._spans)

    def to_tracer(self) -> Tracer:
        """Materialize the collected telemetry as a PR-1 :class:`Tracer`."""
        tracer = Tracer()
        sched = tracer.track("matrix runner", "scheduler")
        worker_tracks: Dict[int, int] = {}
        for pid, *_ in self._spans:
            if pid not in worker_tracks:
                worker_tracks[pid] = tracer.track(
                    "matrix runner",
                    f"worker {len(worker_tracks)} (pid {pid})")
        for t_ns, label, args in self._hits:
            tracer.instant(sched, f"cache hit: {label}", t_ns,
                           cat="cache", args=args)
        for pid, start_ns, end_ns, label, args in self._spans:
            handle = tracer.begin(worker_tracks[pid], label, start_ns,
                                  cat="sim-task", args=args)
            tracer.end(handle, max(end_ns, start_ns))
        return tracer

    def write(self, path: str) -> None:
        write_chrome_trace(self.to_tracer(), path)
