"""Experiment harness: one module per table/figure of the paper (Section V).

See DESIGN.md's per-experiment index for the mapping; run any of them via
``python -m repro.experiments <fig2|fig11|...|table2|hw|all>``.
"""

from . import (
    fig02_scaling,
    sensitivity,
    fig11_end_to_end,
    fig12_sublayer,
    fig13_merge_table,
    fig14_table_sweep,
    fig15_bandwidth,
    fig16_utilization_trace,
    fig17_scalability,
    fig18_nvls_validation,
    table2_scaling_validation,
)
from .cache import SimCache
from .parallel import ExecContext, RunSummary, SimTask, run_matrix
from .runner import DEFAULT, FULL, QUICK, Scale

__all__ = [
    "DEFAULT",
    "FULL",
    "QUICK",
    "ExecContext",
    "RunSummary",
    "Scale",
    "SimCache",
    "SimTask",
    "run_matrix",
    "fig02_scaling",
    "sensitivity",
    "fig11_end_to_end",
    "fig12_sublayer",
    "fig13_merge_table",
    "fig14_table_sweep",
    "fig15_bandwidth",
    "fig16_utilization_trace",
    "fig17_scalability",
    "fig18_nvls_validation",
    "table2_scaling_validation",
]
