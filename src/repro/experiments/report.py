"""Deterministic run reports for the serving workload (``repro report``).

A **run report** is the SLO-facing view of one continuous-batching serving
simulation: overall attainment against TTFT/TPOT targets, exact latency
tails, the per-window time series recorded by
:class:`repro.obs.TimeSeriesSink` with injected fault windows overlaid,
the per-request phase/category time breakdown from
:class:`repro.obs.RequestLog`, and a worst-request drill-down.

The report is a plain JSON-serializable dict (``schema`` versioned, see
DESIGN.md §10) and a pure function of the simulation outputs, which are a
pure function of the seed — so two same-seed runs produce byte-identical
report files, and ``repro diff`` (:mod:`.diff`) can attribute every metric
movement between two reports to specific windows and phases.

Entry points:

* :func:`run_report` — run one serving simulation with the time-series
  and request-log sinks installed and build its report.
* ``python -m repro report`` (:func:`main`) — CLI wrapper; renders the
  report for the terminal and optionally writes the JSON artifact.
* :func:`experiment_report` — the ``--report`` hook of
  ``python -m repro.experiments`` for fig19/fig20-style runs.
"""

from __future__ import annotations

import argparse
import json
import math
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..common.config import dgx_h100_config
from ..obs.metrics import Histogram
from ..obs.requests import GROUPS, PHASE_KINDS
from .fig19_resilience import fault_spec_for
from .fig20_serving import spec_for
from .runner import DEFAULT, Scale, markdown_table, style_for

#: Report JSON schema version; bump on incompatible shape changes.
#: v2: summary.shed/aborts and per-window sheds/aborts counters joined
#: with the resilient-serving subsystem (DESIGN.md §12).
REPORT_SCHEMA = 2
REPORT_KIND = "repro-report"

#: Default SLO targets, calibrated so the quick fig20 stream lands
#: strictly between 0% and 100% attainment on every system (saturated
#: arrivals: early admissions meet the target, queued tail requests
#: do not) — a non-trivial starting point rather than a vacuous one.
DEFAULT_SLO_TTFT_MS = 3.0
DEFAULT_SLO_TPOT_MS = 0.75

#: Window-resident counters surfaced per report window, in column order:
#: (report key, time-series counter name).
_WINDOW_COUNTERS = (
    ("tokens", "serving.tokens"),
    ("iterations", "serving.iterations"),
    ("completions", "serving.requests_completed"),
    ("evictions", "serving.evictions"),
    ("sheds", "serving.shed"),
    ("aborts", "serving.aborts"),
    ("retries", "faults.retries"),
)


def _quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (same convention as the serving layer)."""
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _tail(values: Sequence[float]) -> Dict[str, float]:
    """The report's standard tail summary of one latency sample."""
    if not values:
        return {"p50": math.nan, "p90": math.nan, "p95": math.nan,
                "p99": math.nan, "mean": math.nan, "max": math.nan}
    return {
        "p50": _quantile(values, 0.50),
        "p90": _quantile(values, 0.90),
        "p95": _quantile(values, 0.95),
        "p99": _quantile(values, 0.99),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def _window_rows(snapshot: Dict, makespan_ns: float) -> List[Dict]:
    """Project a time-series snapshot into the report's window series."""
    marks = snapshot["marks"]

    def labels_for(lo: float, hi: float) -> List[str]:
        out = []
        for m in marks:
            end = m["end_ns"] if m["end_ns"] is not None else makespan_ns
            if m["start_ns"] < hi and end > lo:
                out.append(m["label"])
        return out

    rows = []
    for win in snapshot["windows"]:
        counters = win.get("counters", {})
        gauges = win.get("gauges", {})
        sketches = win.get("sketches", {})
        row: Dict[str, object] = {
            "index": win["index"],
            "start_ns": win["start_ns"],
            "end_ns": win["end_ns"],
        }
        for key, name in _WINDOW_COUNTERS:
            row[key] = counters.get(name, 0.0)
        kv = gauges.get("serving.kv_bytes")
        row["kv_peak_bytes"] = kv["peak"] if kv else 0.0
        batch = gauges.get("serving.batch_requests")
        row["batch_peak"] = batch["peak"] if batch else 0.0
        ttft = sketches.get("serving.ttft_ns")
        row["ttft_p95_ns"] = (Histogram.from_state(ttft).quantile(0.95)
                              if ttft else None)
        row["faults"] = labels_for(win["start_ns"], win["end_ns"])
        rows.append(row)
    return rows


def build_report(serving, *, slo_ttft_ms: float = DEFAULT_SLO_TTFT_MS,
                 slo_tpot_ms: float = DEFAULT_SLO_TPOT_MS,
                 worst_n: int = 5,
                 extra_run: Optional[Dict[str, object]] = None) -> Dict:
    """Build the report dict for one :class:`ServingResult`.

    The result's :class:`RunResult` carries the time-series sink and
    request log when they were installed for the run; either may be
    absent, in which case the corresponding sections are empty.
    """
    run = serving.run
    makespan = run.makespan_ns
    stats = serving.stats
    ttfts = [s.ttft_ns for s in stats]
    tpots = [s.tpot_ns for s in stats if s.output_len > 1]
    e2es = [s.e2e_ns for s in stats]

    slo_ttft_ns = slo_ttft_ms * 1e6
    slo_tpot_ns = slo_tpot_ms * 1e6

    def meets_slo(s) -> bool:
        return (s.ttft_ns <= slo_ttft_ns
                and (s.output_len <= 1 or s.tpot_ns <= slo_tpot_ns))

    good = [s for s in stats if meets_slo(s)]
    ttft_ok = sum(1 for s in stats if s.ttft_ns <= slo_ttft_ns)
    tpot_eligible = [s for s in stats if s.output_len > 1]
    tpot_ok = sum(1 for s in tpot_eligible if s.tpot_ns <= slo_tpot_ns)
    n = len(stats)

    report: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "kind": REPORT_KIND,
        "run": dict(extra_run or {}),
        "summary": {
            "requests": n,
            "tokens": serving.total_output_tokens,
            "iterations": serving.iterations,
            "evictions": serving.evictions,
            "shed": len(serving.shed),
            "aborts": serving.aborts,
            "kv_peak_bytes": serving.peak_kv_bytes,
            "makespan_ns": makespan,
            "tokens_per_s": serving.tokens_per_s,
            "ttft_ns": _tail(ttfts),
            "tpot_ns": _tail(tpots),
            "e2e_ns": _tail(e2es),
        },
        "slo": {
            "ttft_ms": slo_ttft_ms,
            "tpot_ms": slo_tpot_ms,
            "ttft_attainment": ttft_ok / n if n else 0.0,
            "tpot_attainment": (tpot_ok / len(tpot_eligible)
                                if tpot_eligible else 1.0),
            "attainment": len(good) / n if n else 0.0,
            "goodput_tokens_per_s":
                (sum(s.output_len for s in good) / makespan * 1e9
                 if makespan > 0 else 0.0),
        },
    }

    # Engine health: event count, host-side throughput (wall-clock, so
    # volatile — excluded from `repro diff`'s tracked keys), and the
    # fast-path layer counters (deterministic, from run details).
    eps = None
    if run.network is not None and hasattr(run.network, "sim"):
        eps = run.network.sim.events_per_wall_second()
    report["engine"] = {
        "events": run.events,
        "events_per_wall_second": eps,
        "fastpath": {k[len("fastpath."):]: v
                     for k, v in run.details.items()
                     if k.startswith("fastpath.")},
    }

    ts = run.timeseries
    if ts is not None:
        snapshot = ts.snapshot(makespan)
        report["window_ns"] = snapshot["window_ns"]
        report["windows"] = _window_rows(snapshot, makespan)
        report["fault_windows"] = snapshot["marks"]
    else:
        report["window_ns"] = None
        report["windows"] = []
        report["fault_windows"] = []

    reqlog = run.request_log
    if reqlog is not None:
        records = reqlog.records()
        totals = {k: sum(r.phase_total_ns(k) for r in records)
                  for k in PHASE_KINDS}
        cats = {g: sum(r.category_total_ns(g) for r in records)
                for g in GROUPS}
        by_rid = {s.rid: s for s in stats}
        worst = sorted(records, key=lambda r: (-r.e2e_ns, r.rid))[:worst_n]
        report["phases"] = {"totals_ns": totals, "categories_ns": cats}
        report["worst_requests"] = [{
            "rid": r.rid,
            "arrival_ns": r.arrival_ns,
            "e2e_ns": r.e2e_ns,
            "ttft_ns": by_rid[r.rid].ttft_ns if r.rid in by_rid else None,
            "evictions": r.evictions,
            "queue_ns": r.phase_total_ns("queue"),
            "prefill_ns": r.phase_total_ns("prefill"),
            "decode_ns": r.phase_total_ns("decode"),
            "categories_ns": {g: r.category_total_ns(g) for g in GROUPS},
        } for r in worst]
    else:
        report["phases"] = {"totals_ns": {}, "categories_ns": {}}
        report["worst_requests"] = []
    return report


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

_TAIL_KEYS = ("p50", "p90", "p95", "p99", "mean", "max")


def validate_report(report: Dict) -> None:
    """Structural check of a report dict; raises ``ValueError`` on the
    first violation (the CI schema gate and ``repro diff`` both call
    this before trusting a file)."""
    def need(obj, key, types, where):
        if key not in obj:
            raise ValueError(f"report: missing {where}.{key}")
        if types is not None and not isinstance(obj[key], types):
            raise ValueError(
                f"report: {where}.{key} has type "
                f"{type(obj[key]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}")
        return obj[key]

    if not isinstance(report, dict):
        raise ValueError("report: not a JSON object")
    if report.get("kind") != REPORT_KIND:
        raise ValueError(f"report: kind is {report.get('kind')!r}, "
                         f"expected {REPORT_KIND!r}")
    if report.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"report: schema {report.get('schema')!r} "
                         f"!= supported {REPORT_SCHEMA}")
    need(report, "run", (dict,), "")
    summary = need(report, "summary", (dict,), "")
    for key in ("requests", "tokens", "iterations", "evictions",
                "shed", "aborts"):
        need(summary, key, (int,), "summary")
    for key in ("makespan_ns", "tokens_per_s"):
        need(summary, key, (int, float), "summary")
    for key in ("ttft_ns", "tpot_ns", "e2e_ns"):
        tail = need(summary, key, (dict,), "summary")
        for t in _TAIL_KEYS:
            need(tail, t, (int, float), f"summary.{key}")
    slo = need(report, "slo", (dict,), "")
    for key in ("ttft_ms", "tpot_ms", "ttft_attainment",
                "tpot_attainment", "attainment", "goodput_tokens_per_s"):
        need(slo, key, (int, float), "slo")
    windows = need(report, "windows", (list,), "")
    for i, win in enumerate(windows):
        if not isinstance(win, dict):
            raise ValueError(f"report: windows[{i}] is not an object")
        for key in ("index", "start_ns", "end_ns", "tokens",
                    "completions", "evictions", "sheds", "aborts",
                    "retries"):
            need(win, key, (int, float), f"windows[{i}]")
        need(win, "faults", (list,), f"windows[{i}]")
    for i, mark in enumerate(need(report, "fault_windows", (list,), "")):
        need(mark, "start_ns", (int, float), f"fault_windows[{i}]")
        need(mark, "label", (str,), f"fault_windows[{i}]")
    phases = need(report, "phases", (dict,), "")
    need(phases, "totals_ns", (dict,), "phases")
    need(phases, "categories_ns", (dict,), "phases")
    need(report, "worst_requests", (list,), "")


# ---------------------------------------------------------------------------
# Rendering / serialization
# ---------------------------------------------------------------------------

def report_to_json(report: Dict) -> str:
    """Canonical byte-stable serialization (sorted keys, no whitespace).

    Host-wall-clock quantities are volatile (they change run to run even
    when the simulation is byte-identical), so — like volatile gauges in
    ``MetricsRegistry.snapshot`` — they are stripped from the serialized
    form and live only in the terminal rendering.
    """
    if "engine" in report:
        engine = dict(report["engine"])
        engine.pop("events_per_wall_second", None)
        report = dict(report, engine=engine)
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def write_report(report: Dict, path: str) -> None:
    validate_report(report)
    with open(path, "w") as fh:
        fh.write(report_to_json(report) + "\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        report = json.load(fh)
    validate_report(report)
    return report


def _ms(ns: Optional[float]) -> object:
    if ns is None or (isinstance(ns, float) and math.isnan(ns)):
        return "-"
    return ns / 1e6


def format_report(report: Dict, max_window_rows: int = 40) -> str:
    """Deterministic terminal rendering of one report."""
    run = report["run"]
    summary = report["summary"]
    slo = report["slo"]
    title = " ".join(str(run[k]) for k in ("system", "model")
                     if k in run) or "serving run"
    hiccups = f"{summary['evictions']} evictions"
    if summary.get("shed"):
        hiccups += f", {summary['shed']} shed"
    if summary.get("aborts"):
        hiccups += f", {summary['aborts']} aborts"
    head = [f"### repro run report — {title} "
            f"(seed {run.get('seed', '?')}"
            + (f", fault intensity {run['fault_intensity']:g}"
               if run.get("fault_intensity") else "") + ")",
            "",
            f"{summary['requests']} requests, {summary['tokens']} tokens "
            f"in {summary['iterations']} iterations "
            f"({hiccups}) over "
            f"{summary['makespan_ns'] / 1e6:.2f} ms — "
            f"{summary['tokens_per_s']:,.0f} tokens/s",
            f"SLO (TTFT <= {slo['ttft_ms']:g} ms, TPOT <= "
            f"{slo['tpot_ms']:g} ms): TTFT {slo['ttft_attainment']:.1%}, "
            f"TPOT {slo['tpot_attainment']:.1%}, joint "
            f"{slo['attainment']:.1%}, goodput "
            f"{slo['goodput_tokens_per_s']:,.0f} tokens/s"]
    engine = report.get("engine") or {}
    if engine:
        line = f"engine: {engine['events']:,} events"
        eps = engine.get("events_per_wall_second")
        if eps:
            line += f" ({eps:,.0f}/s host)"
        fp = engine.get("fastpath") or {}
        if fp.get("events_elided"):
            line += f", fast-path elided {int(fp['events_elided']):,}"
        head.append(line)
    tails = markdown_table(
        ["metric (ms)"] + list(_TAIL_KEYS),
        [[name] + [_ms(summary[key][t]) for t in _TAIL_KEYS]
         for name, key in (("TTFT", "ttft_ns"), ("TPOT", "tpot_ns"),
                           ("E2E", "e2e_ns"))])
    blocks = ["\n".join(head), "#### Latency tails\n" + tails]

    totals = report["phases"]["totals_ns"]
    cats = report["phases"]["categories_ns"]
    if totals:
        blocks.append(
            "#### Phase time (ms, summed over requests)\n" +
            markdown_table(
                list(PHASE_KINDS) + [f"cat:{g}" for g in GROUPS],
                [[_ms(totals.get(k, 0.0)) for k in PHASE_KINDS] +
                 [_ms(cats.get(g, 0.0)) for g in GROUPS]]))

    windows = report["windows"]
    if windows:
        active = [w for w in windows
                  if w["tokens"] or w["completions"] or w["evictions"]
                  or w["retries"] or w["faults"]]
        shown = active[:max_window_rows]
        rows = [[int(w["index"]),
                 f"{w['start_ns'] / 1e3:.0f}",
                 int(w["tokens"]), int(w["completions"]),
                 int(w["evictions"]), int(w["retries"]),
                 f"{w['kv_peak_bytes'] / 1e6:.1f}",
                 int(w["batch_peak"]),
                 _ms(w["ttft_p95_ns"]),
                 ",".join(w["faults"]) if w["faults"] else ""]
                for w in shown]
        note = (f" ({len(active)} active of {len(windows)}; "
                f"first {len(shown)} shown)"
                if len(active) > len(shown)
                else f" ({len(active)} active of {len(windows)})")
        blocks.append(
            f"#### Windows — {report['window_ns'] / 1e3:.0f} us each"
            + note + "\n" +
            markdown_table(["w", "t (us)", "tok", "done", "evict", "retry",
                            "kv MB", "batch", "ttft p95 (ms)", "faults"],
                           rows))

    worst = report["worst_requests"]
    if worst:
        rows = []
        for r in worst:
            top = max(GROUPS, key=lambda g: r["categories_ns"].get(g, 0.0))
            rows.append([r["rid"], _ms(r["e2e_ns"]), _ms(r["ttft_ns"]),
                         _ms(r["queue_ns"]), _ms(r["prefill_ns"]),
                         _ms(r["decode_ns"]), r["evictions"], top])
        blocks.append(
            "#### Worst requests (by E2E)\n" +
            markdown_table(["rid", "e2e", "ttft", "queue", "prefill",
                            "decode", "evict", "top category"], rows))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def run_report(system: str = "CAIS", scale: Scale = DEFAULT,
               seed: int = 2026, fault_intensity: float = 0.0,
               fault_seed: int = 0, window_ns: float = 100_000.0,
               slo_ttft_ms: float = DEFAULT_SLO_TTFT_MS,
               slo_tpot_ms: float = DEFAULT_SLO_TPOT_MS,
               worst_n: int = 5, admission_policy: str = "none",
               retry_budget: Optional[int] = None) -> Dict:
    """Run one serving simulation with reporting sinks and build its report.

    Uses the fig20 request stream; a positive ``fault_intensity`` applies
    the fig19 fault schedule on top (the "faulted fig19-style serving
    run").  ``admission_policy`` / ``retry_budget`` arm the resilient
    serving mechanisms (DESIGN.md §12) with the report's TTFT target as
    the admission SLO.  The previously-installed sinks are restored
    afterwards, so this can run inside the experiments CLI without
    clobbering its metrics registry.
    """
    from dataclasses import replace as dc_replace

    from ..llm.serving import simulate_serving
    from ..systems import make_system

    cfg = dgx_h100_config(seed=seed)
    if fault_intensity > 0.0:
        cfg = cfg.with_faults(fault_spec_for(fault_intensity, fault_seed))
    spec = spec_for(scale, seed)
    if admission_policy != "none" or retry_budget is not None:
        spec = dc_replace(spec, admission_policy=admission_policy,
                          slo_ttft_ms=slo_ttft_ms,
                          retry_budget=retry_budget)
    prev_ts = obs.current_timeseries()
    prev_rl = obs.current_request_log()
    prev_cz = obs.current_causality()
    obs.install(timeseries=obs.TimeSeriesSink(window_ns=window_ns),
                request_log=obs.RequestLog(),
                causality=obs.CausalityRecorder())
    try:
        instance = make_system(system, cfg, tiling=scale.tiling,
                               chunk_bytes=scale.coll_chunk_bytes)
        serving = simulate_serving(instance, spec,
                                   style=style_for(system))
    finally:
        obs.install(timeseries=prev_ts, request_log=prev_rl,
                    causality=prev_cz)
    return build_report(
        serving, slo_ttft_ms=slo_ttft_ms, slo_tpot_ms=slo_tpot_ms,
        worst_n=worst_n,
        extra_run={"system": system, "model": spec.model, "seed": seed,
                   "scale": scale.tokens_fraction,
                   "fault_intensity": fault_intensity,
                   "fault_seed": fault_seed,
                   "workload": "serving"})


def experiment_report(experiment: str, scale: Scale, ctx=None) -> Dict:
    """The ``--report`` artifact for an experiments-CLI invocation.

    ``fig20_serving`` emits the fault-free serving report; ``fig19`` the
    faulted one (intensity 1.0, the sweep's peak, honoring an ambient
    ``--fault-seed``); ``fig21`` the faulted run with fig21's resilience
    mechanisms armed (shed admission, retry budget); ``fig22`` drills
    into the fleet's replica-0 stream at peak load.
    """
    fault_seed = (ctx.fault_spec.fault_seed
                  if ctx is not None and ctx.fault_spec is not None else 0)
    if experiment == "fig20_serving":
        return run_report(scale=scale)
    if experiment == "fig19":
        return run_report(scale=scale, fault_intensity=1.0,
                          fault_seed=fault_seed)
    if experiment == "fig21":
        from .fig21_faulted_serving import RETRY_BUDGET, SLO_TTFT_MS
        return run_report(scale=scale, fault_intensity=1.0,
                          fault_seed=fault_seed,
                          slo_ttft_ms=SLO_TTFT_MS,
                          admission_policy="shed",
                          retry_budget=RETRY_BUDGET)
    if experiment == "fig22":
        from .fig22_fleet import replica_zero_report
        return replica_zero_report(scale=scale)
    raise ValueError(
        f"--report supports fig19, fig20_serving, fig21 and fig22, "
        f"not {experiment!r}")


def main(argv=None) -> int:
    """``python -m repro report`` — run-and-render or render-from-file."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="SLO run report for the continuous-batching serving "
                    "workload (run one simulation, or render an existing "
                    "report JSON)")
    parser.add_argument("--from", dest="from_path", metavar="PATH",
                        default=None,
                        help="render an existing report JSON instead of "
                             "running a simulation")
    parser.add_argument("--system", default="CAIS")
    parser.add_argument("--scale", type=float, default=0.125,
                        help="tokens fraction (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--faults", action="store_true",
                        help="inject the fig19 fault schedule")
    parser.add_argument("--fault-intensity", type=float, default=1.0,
                        metavar="X")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="S")
    parser.add_argument("--window-us", type=float, default=100.0,
                        help="time-series window (default: %(default)s)")
    parser.add_argument("--slo-ttft-ms", type=float,
                        default=DEFAULT_SLO_TTFT_MS)
    parser.add_argument("--slo-tpot-ms", type=float,
                        default=DEFAULT_SLO_TPOT_MS)
    parser.add_argument("--admission", default="none",
                        choices=("none", "shed", "defer"),
                        help="SLO-aware admission policy (gates on the "
                             "--slo-ttft-ms target; default: %(default)s)")
    parser.add_argument("--retry-budget", type=int, default=None,
                        metavar="N",
                        help="per-request retransmit budget before abort "
                             "+ re-prefill (default: unbounded)")
    parser.add_argument("--worst", type=int, default=5, metavar="N",
                        help="worst-request rows (default: %(default)s)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report JSON artifact")
    args = parser.parse_args(argv)

    if args.from_path:
        report = load_report(args.from_path)
    else:
        report = run_report(
            system=args.system,
            scale=Scale(tokens_fraction=args.scale),
            seed=args.seed,
            fault_intensity=(args.fault_intensity if args.faults else 0.0),
            fault_seed=args.fault_seed,
            window_ns=args.window_us * 1e3,
            slo_ttft_ms=args.slo_ttft_ms,
            slo_tpot_ms=args.slo_tpot_ms,
            worst_n=args.worst,
            admission_policy=args.admission,
            retry_budget=args.retry_budget)
    print(format_report(report))
    if args.json:
        write_report(report, args.json)
        print(f"\nreport: {args.json}")
    return 0


if __name__ == "__main__":   # pragma: no cover - manual entry point
    import sys
    sys.exit(main())
