"""Shared infrastructure for the per-figure experiment modules.

Every experiment reproduces one table or figure of the paper's evaluation
(Section V).  Experiments run at a configurable *scale* — the fraction of
the models' token count that is simulated — because the TB-granular
simulation of a full Table-I workload on every system would take hours in
pure Python.  Scaling tokens preserves each operator's
computation-to-communication ratio (both are linear in tokens), so speedup
shapes are stable across scales; ``--full`` runs the unscaled workloads.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..common.config import SystemConfig, dgx_h100_config
from ..llm.graph import Graph
from ..llm.models import ModelConfig
from ..llm.tiling import TilingConfig
from ..llm.tp import (
    basic_backward_layer,
    basic_forward_layer,
    sp_backward_layer,
    sp_forward_layer,
    sublayer_graph,
)
from ..systems import SYSTEM_CLASSES, RunResult, make_system

#: Systems that execute the Basic-TP (AllReduce) lowering of a workload.
BASIC_STYLE_SYSTEMS = frozenset({
    "TP-NVLS", "CoCoNet", "FuseLib", "CoCoNet-NVLS", "FuseLib-NVLS", "LADM"})

#: The paper's Fig. 11/12 baseline ordering.
BASELINES = ("TP-NVLS", "SP-NVLS", "CoCoNet", "FuseLib", "T3",
             "CoCoNet-NVLS", "FuseLib-NVLS", "T3-NVLS", "LADM")


@dataclass(frozen=True)
class Scale:
    """Simulation-budget knobs for one experiment run."""

    tokens_fraction: float = 0.25
    tiling: TilingConfig = field(default_factory=lambda: TilingConfig(
        chunk_bytes=32768, red_chunk_bytes=8192))
    coll_chunk_bytes: int = 262144

    def apply(self, model: ModelConfig) -> ModelConfig:
        if self.tokens_fraction >= 1.0:
            return model
        return model.scaled(self.tokens_fraction)


QUICK = Scale(tokens_fraction=0.125)
DEFAULT = Scale(tokens_fraction=0.25)
FULL = Scale(tokens_fraction=1.0)


def style_for(system: str) -> str:
    return "basic" if system in BASIC_STYLE_SYSTEMS else "sp"


def layer_graphs(model: ModelConfig, tp: int, system: str,
                 training: bool) -> List[Graph]:
    """The per-layer graph sequence a system runs for this workload."""
    if style_for(system) == "basic":
        graphs = [basic_forward_layer(model, tp)]
        if training:
            graphs.append(basic_backward_layer(model, tp))
    else:
        graphs = [sp_forward_layer(model, tp)]
        if training:
            graphs.append(sp_backward_layer(model, tp))
    return graphs


def sublayer_for(model: ModelConfig, tp: int, system: str,
                 which: str) -> Graph:
    return sublayer_graph(model, tp, which, style=style_for(system))


def run_system(system: str, graphs: Sequence[Graph],
               config: Optional[SystemConfig] = None,
               scale: Scale = DEFAULT, **system_kwargs) -> RunResult:
    """Run one system on a graph sequence under the scale's tiling."""
    config = config or dgx_h100_config()
    instance = make_system(system, config, tiling=scale.tiling,
                           chunk_bytes=scale.coll_chunk_bytes,
                           **system_kwargs)
    return instance.run(list(graphs))


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; 0.0 (with a warning) when any value is <= 0.

    A zero or negative makespan means a run produced no work (or a bug
    upstream) — ``math.log`` would raise a domain error and take the whole
    figure down with it, so the degenerate mean is reported instead.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        warnings.warn(
            "geomean over non-positive values; returning 0.0",
            RuntimeWarning, stacklevel=2)
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups_over(results: Dict[str, RunResult],
                  reference: str = "CAIS") -> Dict[str, float]:
    """makespan(system) / makespan(reference) for every system.

    A zero reference makespan (empty run) yields 0.0 for every system,
    with a warning, instead of a ZeroDivisionError.
    """
    ref = results[reference].makespan_ns
    if ref == 0:
        warnings.warn(
            f"reference {reference!r} has zero makespan; "
            f"returning 0.0 speedups", RuntimeWarning, stacklevel=2)
        return {name: 0.0 for name in results}
    return {name: res.makespan_ns / ref for name, res in results.items()}


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[object]]) -> str:
    """Small GitHub-markdown table formatter."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)
