"""Sensitivity studies beyond the paper's figures.

Two sweeps a careful reviewer would ask for:

* **Fabric bandwidth** — CAIS's edge over the NVLS barrier baseline as the
  calibrated link bandwidth varies 4x in each direction: the speedup should
  grow as the workload becomes more communication-bound and shrink (toward,
  but not below, 1x) as compute dominates — evidence that the headline
  numbers are a property of the regime, not of one calibration point.
* **Seed robustness** — the same comparison across RNG seeds (scheduler
  drift, jitter and skew all re-drawn): the speedup's spread should be a
  few percent, far smaller than the effect.
"""

from __future__ import annotations

import statistics
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import LLAMA_7B
from ..llm.tp import sublayer_graph
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, run_system

BANDWIDTHS = (8.0, 16.0, 32.0, 64.0)
SEEDS = (1, 2, 3, 4, 5)


def bandwidth_sweep(scale: Scale = DEFAULT,
                    bandwidths: Sequence[float] = BANDWIDTHS,
                    ctx: Optional[ExecContext] = None,
                    ) -> Dict[float, Dict[str, float]]:
    """CAIS vs SP-NVLS across per-plane link bandwidths (bytes/ns)."""
    model = scale.apply(LLAMA_7B)
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for bw in bandwidths:
        cfg = dgx_h100_config()
        cfg = replace(cfg, link=replace(cfg.link, bandwidth_gbps=bw))
        for system in ("CAIS", "SP-NVLS"):
            graph = sublayer_graph(model, cfg.num_gpus, "L1")
            tasks.append(SimTask(system=system, graphs=(graph,),
                                 config=cfg, scale=scale))
            keys.append((bw, system))
    summaries = run_matrix(tasks, ctx)
    times: Dict[float, Dict[str, float]] = {}
    for (bw, system), res in zip(keys, summaries):
        times.setdefault(bw, {})[system] = res.makespan_ns
    return {bw: {
        "cais_us": t["CAIS"] / 1e3,
        "baseline_us": t["SP-NVLS"] / 1e3,
        "speedup": t["SP-NVLS"] / t["CAIS"],
    } for bw, t in times.items()}


def seed_sweep(scale: Scale = DEFAULT,
               seeds: Sequence[int] = SEEDS,
               ctx: Optional[ExecContext] = None) -> Dict[str, float]:
    """Speedup statistics across master seeds."""
    model = scale.apply(LLAMA_7B)
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for seed in seeds:
        cfg = dgx_h100_config(seed=seed)
        for system in ("CAIS", "SP-NVLS"):
            graph = sublayer_graph(model, cfg.num_gpus, "L1")
            tasks.append(SimTask(system=system, graphs=(graph,),
                                 config=cfg, scale=scale))
            keys.append((seed, system))
    summaries = run_matrix(tasks, ctx)
    times: Dict[int, Dict[str, float]] = {}
    for (seed, system), res in zip(keys, summaries):
        times.setdefault(seed, {})[system] = res.makespan_ns
    speedups: List[float] = [times[seed]["SP-NVLS"] / times[seed]["CAIS"]
                             for seed in seeds]
    return {
        "mean": statistics.mean(speedups),
        "stdev": statistics.stdev(speedups) if len(speedups) > 1 else 0.0,
        "min": min(speedups),
        "max": max(speedups),
        "n": len(speedups),
    }


def format_tables(bw: Dict[float, Dict[str, float]],
                  seeds: Dict[str, float]) -> str:
    rows = [[f"{b:.0f} GB/s/plane", r["cais_us"], r["baseline_us"],
             r["speedup"]] for b, r in sorted(bw.items())]
    part_a = ("### Sensitivity: CAIS speedup over SP-NVLS vs fabric "
              "bandwidth\n" +
              markdown_table(["link bandwidth", "CAIS (us)",
                              "SP-NVLS (us)", "speedup"], rows))
    part_b = ("### Sensitivity: speedup across RNG seeds\n" +
              markdown_table(["mean", "stdev", "min", "max", "seeds"],
                             [[seeds["mean"], seeds["stdev"], seeds["min"],
                               seeds["max"], seeds["n"]]]))
    return part_a + "\n\n" + part_b


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_tables(bandwidth_sweep(), seed_sweep()))
