"""Sensitivity studies beyond the paper's figures.

Two sweeps a careful reviewer would ask for:

* **Fabric bandwidth** — CAIS's edge over the NVLS barrier baseline as the
  calibrated link bandwidth varies 4x in each direction: the speedup should
  grow as the workload becomes more communication-bound and shrink (toward,
  but not below, 1x) as compute dominates — evidence that the headline
  numbers are a property of the regime, not of one calibration point.
* **Seed robustness** — the same comparison across RNG seeds (scheduler
  drift, jitter and skew all re-drawn): the speedup's spread should be a
  few percent, far smaller than the effect.
"""

from __future__ import annotations

import statistics
from dataclasses import replace
from typing import Dict, List, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import LLAMA_7B
from ..llm.tp import sublayer_graph
from .runner import DEFAULT, Scale, markdown_table, run_system

BANDWIDTHS = (8.0, 16.0, 32.0, 64.0)
SEEDS = (1, 2, 3, 4, 5)


def bandwidth_sweep(scale: Scale = DEFAULT,
                    bandwidths: Sequence[float] = BANDWIDTHS,
                    ) -> Dict[float, Dict[str, float]]:
    """CAIS vs SP-NVLS across per-plane link bandwidths (bytes/ns)."""
    out: Dict[float, Dict[str, float]] = {}
    model = scale.apply(LLAMA_7B)
    for bw in bandwidths:
        cfg = dgx_h100_config()
        cfg = replace(cfg, link=replace(cfg.link, bandwidth_gbps=bw))
        times = {}
        for system in ("CAIS", "SP-NVLS"):
            graph = sublayer_graph(model, cfg.num_gpus, "L1")
            times[system] = run_system(system, [graph], cfg,
                                       scale).makespan_ns
        out[bw] = {
            "cais_us": times["CAIS"] / 1e3,
            "baseline_us": times["SP-NVLS"] / 1e3,
            "speedup": times["SP-NVLS"] / times["CAIS"],
        }
    return out


def seed_sweep(scale: Scale = DEFAULT,
               seeds: Sequence[int] = SEEDS) -> Dict[str, float]:
    """Speedup statistics across master seeds."""
    model = scale.apply(LLAMA_7B)
    speedups: List[float] = []
    for seed in seeds:
        cfg = dgx_h100_config(seed=seed)
        times = {}
        for system in ("CAIS", "SP-NVLS"):
            graph = sublayer_graph(model, cfg.num_gpus, "L1")
            times[system] = run_system(system, [graph], cfg,
                                       scale).makespan_ns
        speedups.append(times["SP-NVLS"] / times["CAIS"])
    return {
        "mean": statistics.mean(speedups),
        "stdev": statistics.stdev(speedups) if len(speedups) > 1 else 0.0,
        "min": min(speedups),
        "max": max(speedups),
        "n": len(speedups),
    }


def format_tables(bw: Dict[float, Dict[str, float]],
                  seeds: Dict[str, float]) -> str:
    rows = [[f"{b:.0f} GB/s/plane", r["cais_us"], r["baseline_us"],
             r["speedup"]] for b, r in sorted(bw.items())]
    part_a = ("### Sensitivity: CAIS speedup over SP-NVLS vs fabric "
              "bandwidth\n" +
              markdown_table(["link bandwidth", "CAIS (us)",
                              "SP-NVLS (us)", "speedup"], rows))
    part_b = ("### Sensitivity: speedup across RNG seeds\n" +
              markdown_table(["mean", "stdev", "min", "max", "seeds"],
                             [[seeds["mean"], seeds["stdev"], seeds["min"],
                               seeds["max"], seeds["n"]]]))
    return part_a + "\n\n" + part_b


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_tables(bandwidth_sweep(), seed_sweep()))
