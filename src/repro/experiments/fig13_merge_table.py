"""Fig. 13 — merging-aware TB coordination analysis.

(a) *Minimal required Merge Table size*: the high-water mark of merge-table
    occupancy per port, measured with capacity unbounded, with and without
    coordination — the paper reports up to 250 KB uncoordinated versus
    < 40 KB coordinated (an 87% reduction).

(b) *Waiting-time ablation*: the delay between the earliest and latest
    request targeting the same address, as the coordination mechanisms are
    enabled stage by stage (none -> +TB grouping & pre-launch sync ->
    +pre-access sync -> +TB-aware throttling & merging-aware ordering);
    the paper reports 35 us dropping below 3 us.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from ..llm.tp import SUBLAYERS, sublayer_graph
from .parallel import AblationSpec, ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table

#: Ablation stages of Fig. 13(b): coordination features enabled.
STAGES = (
    ("uncoordinated", frozenset()),
    ("+grouping & pre-launch sync", frozenset({"prelaunch"})),
    ("+pre-access sync", frozenset({"prelaunch", "preaccess"})),
    ("+throttling & ordering",
     frozenset({"prelaunch", "preaccess", "throttle", "order"})),
)


def _ablation_task(graph, scale: Scale, features: frozenset) -> SimTask:
    """One CAIS run with explicit coordination features and an unbounded
    merge table (capacity/timeout None), as Fig. 13 measures."""
    return SimTask(system="CAIS", graphs=(graph,),
                   config=dgx_h100_config(), scale=scale,
                   ablation=AblationSpec.of(features))


def run_table_size(scale: Scale = DEFAULT,
                   models: Optional[Sequence[str]] = None,
                   sublayers: Sequence[str] = ("L1", "L2"),
                   ctx: Optional[ExecContext] = None,
                   ) -> Dict[str, Dict[str, float]]:
    """Fig. 13(a): peak per-port occupancy (KB), coordinated vs not."""
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for model_name in (models or list(TABLE_I)):
        model = scale.apply(TABLE_I[model_name])
        for which in sublayers:
            for label, features in (("CAIS", STAGES[-1][1]),
                                    ("CAIS-w/o-Coord", frozenset())):
                graph = sublayer_graph(model, 8, which)
                tasks.append(_ablation_task(graph, scale, features))
                keys.append((f"{model_name} {which}", label))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[str, float]] = {}
    for (key, label), summary in zip(keys, summaries):
        out.setdefault(key, {})[label] = \
            summary.merge_peak_bytes_per_port / 1024
    for row in out.values():
        row["reduction_%"] = 100.0 * (1 - row["CAIS"] /
                                      row["CAIS-w/o-Coord"])
    return out


def run_wait_ablation(scale: Scale = DEFAULT,
                      model_name: str = "LLaMA-7B",
                      which: str = "L1",
                      ctx: Optional[ExecContext] = None) -> Dict[str, float]:
    """Fig. 13(b): average first-to-last request spread (us) per stage."""
    model = scale.apply(TABLE_I[model_name])
    tasks = [_ablation_task(sublayer_graph(model, 8, which), scale,
                            features) for _, features in STAGES]
    summaries = run_matrix(tasks, ctx)
    return {label: summary.merge_average_wait_ns / 1e3
            for (label, _), summary in zip(STAGES, summaries)}


def format_table(table_size: Dict[str, Dict[str, float]],
                 wait: Dict[str, float]) -> str:
    rows_a: List[List[object]] = [
        [key, row["CAIS-w/o-Coord"], row["CAIS"], row["reduction_%"]]
        for key, row in table_size.items()]
    part_a = ("### Fig. 13(a): minimal required merge-table size "
              "(KB per port)\n" +
              markdown_table(["workload", "w/o coordination",
                              "with coordination", "reduction %"], rows_a))
    rows_b = [[label, value] for label, value in wait.items()]
    part_b = ("### Fig. 13(b): average waiting time per coordination "
              "stage (us)\n" +
              markdown_table(["stage", "avg wait (us)"], rows_b))
    return part_a + "\n\n" + part_b


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run_table_size(), run_wait_ablation()))
