"""Fig. 13 — merging-aware TB coordination analysis.

(a) *Minimal required Merge Table size*: the high-water mark of merge-table
    occupancy per port, measured with capacity unbounded, with and without
    coordination — the paper reports up to 250 KB uncoordinated versus
    < 40 KB coordinated (an 87% reduction).

(b) *Waiting-time ablation*: the delay between the earliest and latest
    request targeting the same address, as the coordination mechanisms are
    enabled stage by stage (none -> +TB grouping & pre-launch sync ->
    +pre-access sync -> +TB-aware throttling & merging-aware ordering);
    the paper reports 35 us dropping below 3 us.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cais import compiler as cais_compiler
from ..cais.dataflow import CaisRunner
from ..cais.merge_unit import MergeUnit
from ..common.config import dgx_h100_config
from ..llm import tiling as llm_tiling
from ..llm.models import TABLE_I
from ..llm.tp import SUBLAYERS, sublayer_graph
from ..systems import Harness
from .runner import DEFAULT, Scale, markdown_table

#: Ablation stages of Fig. 13(b): coordination features enabled.
STAGES = (
    ("uncoordinated", frozenset()),
    ("+grouping & pre-launch sync", frozenset({"prelaunch"})),
    ("+pre-access sync", frozenset({"prelaunch", "preaccess"})),
    ("+throttling & ordering",
     frozenset({"prelaunch", "preaccess", "throttle", "order"})),
)


def _run_cais(graph, scale: Scale, features: frozenset,
              capacity=None, timeout=None):
    """One CAIS run with explicit coordination features and table limits."""
    llm_tiling.reset_tensor_ids()
    cais_compiler.reset_group_ids()
    cfg = dgx_h100_config()
    harness = Harness(cfg, merge=True, merge_capacity=capacity,
                      merge_timeout=timeout, sync_tables=True,
                      traffic_control=True, fair_share=True)
    runner = CaisRunner(harness, tiling=scale.tiling,
                        dataflow=True, coordination=True,
                        coordination_features=features)
    done = {"ok": False}
    runner.run_graphs([graph], on_done=lambda: done.update(ok=True))
    harness.executor.run()
    assert done["ok"], "graph did not complete"
    return harness


def run_table_size(scale: Scale = DEFAULT,
                   models: Optional[Sequence[str]] = None,
                   sublayers: Sequence[str] = ("L1", "L2"),
                   ) -> Dict[str, Dict[str, float]]:
    """Fig. 13(a): peak per-port occupancy (KB), coordinated vs not."""
    out: Dict[str, Dict[str, float]] = {}
    for model_name in (models or list(TABLE_I)):
        model = scale.apply(TABLE_I[model_name])
        for which in sublayers:
            key = f"{model_name} {which}"
            row = {}
            for label, features in (("CAIS", STAGES[-1][1]),
                                    ("CAIS-w/o-Coord", frozenset())):
                graph = sublayer_graph(model, 8, which)
                harness = _run_cais(graph, scale, features)
                row[label] = harness.merge_stats.peak_bytes_per_port() / 1024
            row["reduction_%"] = 100.0 * (1 - row["CAIS"] /
                                          row["CAIS-w/o-Coord"])
            out[key] = row
    return out


def run_wait_ablation(scale: Scale = DEFAULT,
                      model_name: str = "LLaMA-7B",
                      which: str = "L1") -> Dict[str, float]:
    """Fig. 13(b): average first-to-last request spread (us) per stage."""
    model = scale.apply(TABLE_I[model_name])
    out: Dict[str, float] = {}
    for label, features in STAGES:
        graph = sublayer_graph(model, 8, which)
        harness = _run_cais(graph, scale, features)
        out[label] = harness.merge_stats.average_wait_ns() / 1e3
    return out


def format_table(table_size: Dict[str, Dict[str, float]],
                 wait: Dict[str, float]) -> str:
    rows_a: List[List[object]] = [
        [key, row["CAIS-w/o-Coord"], row["CAIS"], row["reduction_%"]]
        for key, row in table_size.items()]
    part_a = ("### Fig. 13(a): minimal required merge-table size "
              "(KB per port)\n" +
              markdown_table(["workload", "w/o coordination",
                              "with coordination", "reduction %"], rows_a))
    rows_b = [[label, value] for label, value in wait.items()]
    part_b = ("### Fig. 13(b): average waiting time per coordination "
              "stage (us)\n" +
              markdown_table(["stage", "avg wait (us)"], rows_b))
    return part_a + "\n\n" + part_b


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run_table_size(), run_wait_ablation()))
