"""Compare two run reports and attribute the movement (``repro diff``).

Given two report JSONs produced by :mod:`.report` (``repro report
--json``), this module computes a structured **diff**: which summary
metrics moved and by how much, which phase kinds and causality category
groups absorbed the time, and which windows the movement concentrates in
— with the fault overlay of each side attached, so a degradation caused
by an injected fault window is visibly localized to it.

The diff is a pure function of the two reports, so diffing a report
against itself yields the all-zero movement that the CI determinism gate
greps for ("no movement"), and diffing a fault-free run against a faulted
one deterministically attributes the tail growth to the ``fault``/retry
phases.
"""

from __future__ import annotations

import argparse
import json
import math
from typing import Dict, List

from ..obs.requests import GROUPS, PHASE_KINDS
from .report import REPORT_SCHEMA, load_report, validate_report
from .runner import markdown_table

DIFF_KIND = "repro-report-diff"

#: Summary scalars compared, in display order: (label, section, key-path).
_SUMMARY_METRICS = (
    ("tokens/s", "summary", ("tokens_per_s",)),
    ("makespan_ns", "summary", ("makespan_ns",)),
    ("requests", "summary", ("requests",)),
    ("evictions", "summary", ("evictions",)),
    ("shed", "summary", ("shed",)),
    ("aborts", "summary", ("aborts",)),
    ("ttft_p50_ns", "summary", ("ttft_ns", "p50")),
    ("ttft_p95_ns", "summary", ("ttft_ns", "p95")),
    ("ttft_p99_ns", "summary", ("ttft_ns", "p99")),
    ("tpot_p95_ns", "summary", ("tpot_ns", "p95")),
    ("e2e_p95_ns", "summary", ("e2e_ns", "p95")),
    ("slo_attainment", "slo", ("attainment",)),
    ("goodput_tokens_per_s", "slo", ("goodput_tokens_per_s",)),
)

#: Per-window counters whose movement is attributed window by window.
_WINDOW_KEYS = ("tokens", "completions", "evictions", "sheds",
                "aborts", "retries")


def _get(report: Dict, section: str, path) -> float:
    node = report[section]
    for key in path:
        node = node[key]
    return float(node)


def _delta(a: float, b: float) -> float:
    """b - a, with NaN treated as absent (NaN != NaN would make a
    self-diff look like movement)."""
    if math.isnan(a) and math.isnan(b):
        return 0.0
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return b - a


def diff_reports(base: Dict, other: Dict) -> Dict:
    """Structured movement from ``base`` to ``other`` (validated first)."""
    validate_report(base)
    validate_report(other)

    summary: Dict[str, Dict[str, float]] = {}
    for label, section, path in _SUMMARY_METRICS:
        a = _get(base, section, path)
        b = _get(other, section, path)
        summary[label] = {"base": a, "other": b, "delta": _delta(a, b)}

    def side_totals(report, section_key):
        return report["phases"][section_key]

    phases = {}
    for section_key, keys in (("totals_ns", PHASE_KINDS),
                              ("categories_ns", GROUPS)):
        table = {}
        for key in keys:
            a = float(side_totals(base, section_key).get(key, 0.0))
            b = float(side_totals(other, section_key).get(key, 0.0))
            table[key] = {"base": a, "other": b, "delta": b - a}
        phases[section_key] = table

    base_windows = {w["index"]: w for w in base["windows"]}
    other_windows = {w["index"]: w for w in other["windows"]}
    windows: List[Dict] = []
    for i in sorted(set(base_windows) | set(other_windows)):
        wa = base_windows.get(i)
        wb = other_windows.get(i)
        row: Dict[str, object] = {
            "index": i,
            "start_ns": (wb or wa)["start_ns"],
        }
        moved = False
        for key in _WINDOW_KEYS:
            a = float(wa[key]) if wa else 0.0
            b = float(wb[key]) if wb else 0.0
            row[f"{key}_delta"] = b - a
            moved = moved or b != a
        row["faults_base"] = list(wa["faults"]) if wa else []
        row["faults_other"] = list(wb["faults"]) if wb else []
        if moved or row["faults_base"] != row["faults_other"]:
            windows.append(row)

    moved_summary = any(v["delta"] != 0.0 for v in summary.values()
                        if not math.isnan(v["delta"]))
    moved_phases = any(cell["delta"] != 0.0
                       for table in phases.values()
                       for cell in table.values())
    return {
        "schema": REPORT_SCHEMA,
        "kind": DIFF_KIND,
        "base": dict(base["run"]),
        "other": dict(other["run"]),
        "summary": summary,
        "phases": phases,
        "windows": windows,
        "moved": bool(moved_summary or moved_phases or windows),
    }


def format_diff(diff: Dict, max_window_rows: int = 15) -> str:
    """Deterministic terminal rendering; prints the grep-able
    ``no movement`` line when the reports are identical."""
    def who(run: Dict) -> str:
        bits = [str(run[k]) for k in ("system", "model") if k in run]
        if run.get("fault_intensity"):
            bits.append(f"faults x={run['fault_intensity']:g}")
        if "seed" in run:
            bits.append(f"seed {run['seed']}")
        return " ".join(bits) or "run"

    head = (f"### repro report diff — base: {who(diff['base'])} | "
            f"other: {who(diff['other'])}")
    if not diff["moved"]:
        return head + "\n\nno movement: reports are identical on all " \
                      "tracked metrics"

    blocks = [head]
    rows = []
    for label, _, _ in _SUMMARY_METRICS:
        cell = diff["summary"][label]
        if math.isnan(cell["delta"]) or cell["delta"] != 0.0:
            scale = 1e6 if label.endswith("_ns") else 1.0
            name = label[:-3] + " (ms)" if label.endswith("_ns") else label
            rows.append([name, cell["base"] / scale, cell["other"] / scale,
                         cell["delta"] / scale])
    if rows:
        blocks.append("#### Summary movement\n" +
                      markdown_table(["metric", "base", "other", "delta"],
                                     rows))

    phase_rows = []
    for section_key, title in (("totals_ns", "phase"),
                               ("categories_ns", "category")):
        for key, cell in diff["phases"][section_key].items():
            if cell["delta"] != 0.0:
                phase_rows.append([f"{title}:{key}", cell["base"] / 1e6,
                                   cell["other"] / 1e6,
                                   cell["delta"] / 1e6])
    if phase_rows:
        blocks.append("#### Phase-time movement (ms)\n" +
                      markdown_table(["where", "base", "other", "delta"],
                                     phase_rows))
        cats = diff["phases"]["categories_ns"]
        top = max(cats, key=lambda g: abs(cats[g]["delta"]))
        if cats[top]["delta"] != 0.0:
            blocks.append(f"largest category movement: {top} "
                          f"({cats[top]['delta'] / 1e6:+.2f} ms)")

    windows = diff["windows"]
    if windows:
        ranked = sorted(
            windows,
            key=lambda w: (-max(abs(w[f"{k}_delta"])
                                for k in _WINDOW_KEYS), w["index"]))
        shown = sorted(ranked[:max_window_rows], key=lambda w: w["index"])
        rows = [[int(w["index"]), f"{w['start_ns'] / 1e3:.0f}"]
                + [w[f"{k}_delta"] for k in _WINDOW_KEYS]
                + ["/".join(filter(None, [
                    "base" if w["faults_base"] else "",
                    "other" if w["faults_other"] else ""])) or "-"]
                for w in shown]
        blocks.append(
            f"#### Window movement ({len(windows)} windows moved; "
            f"top {len(shown)} by magnitude)\n" +
            markdown_table(["w", "t (us)", "tok Δ", "done Δ", "evict Δ",
                            "retry Δ", "faulted"], rows))
    return "\n\n".join(blocks)


def diff_to_json(diff: Dict) -> str:
    return json.dumps(diff, sort_keys=True, separators=(",", ":"))


def movement_breaches(diff: Dict, threshold: float) -> List[str]:
    """Summary metrics and phase totals whose *relative* movement
    exceeds ``threshold`` (e.g. 0.05 = 5%).

    A metric moving off a zero base is always a breach (there is no
    denominator to soften it); window-level rows are deliberately not
    gated — they localize movement, the aggregates above decide it.
    """
    breaches: List[str] = []

    def check(name: str, cell: Dict[str, float]) -> None:
        delta = cell["delta"]
        if math.isnan(delta) or delta == 0.0:
            return
        base = abs(cell["base"])
        rel = abs(delta) / base if base > 0.0 else math.inf
        if rel > threshold:
            shown = f"{rel:.1%}" if math.isfinite(rel) else "from zero"
            breaches.append(f"{name}: {cell['base']:g} -> "
                            f"{cell['other']:g} ({shown})")

    for label, _, _ in _SUMMARY_METRICS:
        check(f"summary:{label}", diff["summary"][label])
    for section_key, title in (("totals_ns", "phase"),
                               ("categories_ns", "category")):
        for key, cell in diff["phases"][section_key].items():
            check(f"{title}:{key}", cell)
    return breaches


def main(argv=None) -> int:
    """``python -m repro diff`` — compare two report JSON files."""
    parser = argparse.ArgumentParser(
        prog="python -m repro diff",
        description="attribute metric movement between two run reports "
                    "(see `python -m repro report --json`)")
    parser.add_argument("base", help="baseline report JSON")
    parser.add_argument("other", help="comparison report JSON")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the structured diff as JSON")
    parser.add_argument("--fail-on-movement", nargs="?", const="any",
                        default=None, metavar="THRESHOLD",
                        help="exit nonzero when metrics move: bare = any "
                             "movement at all; with a value (e.g. 0.05) = "
                             "any summary/phase metric moving more than "
                             "that relative fraction")
    args = parser.parse_args(argv)
    threshold = None
    if args.fail_on_movement is not None and args.fail_on_movement != "any":
        try:
            threshold = float(args.fail_on_movement)
        except ValueError:
            parser.error(f"--fail-on-movement threshold must be a number, "
                         f"got {args.fail_on_movement!r}")
        if threshold < 0:
            parser.error("--fail-on-movement threshold must be >= 0")
    diff = diff_reports(load_report(args.base), load_report(args.other))
    print(format_diff(diff))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(diff_to_json(diff) + "\n")
        print(f"\ndiff: {args.json}")
    if args.fail_on_movement is not None:
        if threshold is None:
            if diff["moved"]:
                print("\nFAIL: reports differ (--fail-on-movement)")
                return 1
        else:
            breaches = movement_breaches(diff, threshold)
            if breaches:
                print(f"\nFAIL: {len(breaches)} metric(s) moved beyond "
                      f"{threshold:.1%} (--fail-on-movement):")
                for b in breaches:
                    print(f"  - {b}")
                return 1
    return 0


if __name__ == "__main__":   # pragma: no cover - manual entry point
    import sys
    sys.exit(main())
