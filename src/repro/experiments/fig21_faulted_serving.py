"""Fig. 21 — serving under faults: SLO impact of graceful degradation
(repro extension).

Composes the fig20 continuous-batching request stream with the fig19
fault schedules: every system serves the *same* seeded stream while plane
failures, NVLS unit deaths, stragglers, and link faults fire mid-stream,
and the resilience machinery (SLO-aware admission control, per-request
retransmit budgets, fault-aware batch replanning — see DESIGN.md §12)
degrades service instead of stalling it.  Three views:

1. **SLO attainment and goodput vs fault intensity** — the operator's
   curve: what fraction of the offered stream still meets the TTFT
   target, and how many SLO-good tokens/s survive, as the fabric decays.
   Shed requests count against attainment, so admission control cannot
   game the metric by rejecting load.
2. **Clean vs degraded tails at peak intensity** — requests are
   classified by overlap with the fault schedule's active windows (the
   same windows the run-report time-series sink overlays per window);
   the split shows where the tail latency actually comes from.
3. **Resilience per mm² of silicon** — degraded-mode goodput joined with
   the Section V-D area model: CAIS pays merge-unit + synchronizer area
   for its fabric; the table reports SLO-good tokens/s per mm² of total
   silicon under peak faults, and each system's goodput retention.

Fault sets are nested across intensities and every run is a pure function
of ``(seed, fault_seed, intensity)``, so the whole figure is byte-stable
and the attainment columns degrade monotonically — both properties are CI
gates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..hw.area import (H100_DIE_MM2, NVSWITCH_DIE_MM2, gpu_synchronizer_area,
                       switch_merge_unit_area)
from .fig19_resilience import fault_spec_for
from .fig20_serving import spec_for as fig20_spec_for
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table

#: Coarser grid than fig19: faulted serving runs are the repo's most
#: expensive simulations (every retransmission is an event inside a live
#: batching loop).
INTENSITIES = (0.0, 0.5, 1.0)
#: CAIS against the NVLS barrier baselines and the ring software pipeline.
SYSTEMS = ("TP-NVLS", "SP-NVLS", "CoCoNet", "CAIS")

#: TTFT target: report.py's default, calibrated to land strictly between
#: 0% and 100% on the fault-free quick stream.
SLO_TTFT_MS = 3.0
#: Per-request retransmit charge bound before abort + re-prefill.
RETRY_BUDGET = 64

DETAILS = ("serving.slo_attainment", "serving.goodput_tokens_per_s",
           "serving.tokens_per_s", "serving.ttft_p95_ns",
           "serving.requests", "serving.shed", "serving.aborts",
           "serving.reprefill_tokens", "serving.replans",
           "serving.capacity_factor", "serving.degraded_requests",
           "serving.ttft_p95_clean_ns", "serving.ttft_p95_degraded_ns",
           "serving.tpot_p95_clean_ns", "serving.tpot_p95_degraded_ns",
           "faults.retries", "faults.nvls_fallbacks",
           "faults.plane_failures")


def spec_for(scale: Scale, seed: int = 2026):
    """fig20's stream with the resilience mechanisms armed.

    Admission control and the SLO details are active in every cell
    (including intensity 0, so the fault-free column is the controller's
    own baseline, not fig20's); the retry budget only matters once faults
    produce retransmissions.
    """
    return replace(fig20_spec_for(scale, seed),
                   admission_policy="shed",
                   slo_ttft_ms=SLO_TTFT_MS,
                   retry_budget=RETRY_BUDGET)


def run(scale: Scale = DEFAULT, seed: int = 2026,
        intensities: Sequence[float] = INTENSITIES, fault_seed: int = 0,
        systems: Sequence[str] = SYSTEMS,
        ctx: Optional[ExecContext] = None
        ) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Returns {system: {intensity: {metric: value}}} over one stream."""
    # Like fig19: the sweep owns its fault specs (including the disabled
    # intensity-0 baseline); an ambient --faults override must not leak in.
    if ctx is not None and ctx.fault_spec is not None:
        ctx = replace(ctx, fault_spec=None)
    spec = spec_for(scale, seed)
    cfg = dgx_h100_config()
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for intensity in intensities:
        fcfg = cfg.with_faults(fault_spec_for(intensity, fault_seed))
        for system in systems:
            tasks.append(SimTask(system=system, graphs=(), config=fcfg,
                                 scale=scale, serving=spec))
            keys.append((system, intensity))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[float, Dict[str, float]]] = {s: {} for s in systems}
    for (system, intensity), res in zip(keys, summaries):
        details = dict(res.details)
        cell = {"makespan_ns": res.makespan_ns}
        for name in DETAILS:
            cell[name] = details.get(name, 0.0)
        out[system][intensity] = cell
    return out


def _extension_mm2(system: str, cfg) -> float:
    """Extra silicon a system's fabric needs beyond stock dies.

    Only CAIS extends the hardware: one merge unit per switch plane plus
    one TB-group synchronizer per GPU (Section V-D).  The NVLS and ring
    baselines run on stock NVSwitch/H100.
    """
    if system != "CAIS":
        return 0.0
    merge = switch_merge_unit_area(cfg.switch).total_mm2
    sync = gpu_synchronizer_area().total_mm2
    return merge * cfg.num_switches + sync * cfg.num_gpus


def format_table(results: Dict[str, Dict[float, Dict[str, float]]]) -> str:
    intensities = sorted(next(iter(results.values())))
    peak = max(intensities)
    base = min(intensities)

    att_rows = []
    for system, row in results.items():
        att_rows.append(
            [system]
            + [f"{row[i]['serving.slo_attainment']:.3f}"
               for i in intensities]
            + [row[i]["serving.goodput_tokens_per_s"]
               for i in intensities])
    head = ("### Fig. 21: serving under faults — SLO attainment and "
            f"goodput vs fault intensity (TTFT <= {SLO_TTFT_MS:g} ms, "
            "shed requests count as missed)\n" +
            markdown_table(
                ["system"]
                + [f"att x={i:g}" for i in intensities]
                + [f"goodput x={i:g}" for i in intensities],
                att_rows))

    tail_rows = []
    for system, row in results.items():
        cell = row[peak]
        tail_rows.append([
            system,
            cell["serving.ttft_p95_clean_ns"] / 1e6,
            cell["serving.ttft_p95_degraded_ns"] / 1e6,
            cell["serving.tpot_p95_clean_ns"] / 1e6,
            cell["serving.tpot_p95_degraded_ns"] / 1e6,
            int(cell["serving.degraded_requests"]),
            int(cell["serving.shed"]),
            int(cell["serving.aborts"]),
            int(cell["serving.replans"]),
            int(cell["faults.retries"]),
        ])
    tails = (f"\n\n### Clean vs degraded windows at peak intensity "
             f"(x={peak:g})\n" +
             markdown_table(
                 ["system", "TTFT p95 clean (ms)", "TTFT p95 degr (ms)",
                  "TPOT p95 clean (ms)", "TPOT p95 degr (ms)",
                  "degr reqs", "shed", "aborts", "replans", "retries"],
                 tail_rows))

    cfg = dgx_h100_config()
    fabric_mm2 = (cfg.num_switches * NVSWITCH_DIE_MM2
                  + cfg.num_gpus * H100_DIE_MM2)
    dollar_rows = []
    for system, row in results.items():
        ext = _extension_mm2(system, cfg)
        total = fabric_mm2 + ext
        degraded_goodput = row[peak]["serving.goodput_tokens_per_s"]
        clean_goodput = row[base]["serving.goodput_tokens_per_s"]
        retention = (degraded_goodput / clean_goodput * 100.0
                     if clean_goodput > 0 else 0.0)
        dollar_rows.append([
            system, f"{ext:.3f}", f"{total:.0f}",
            degraded_goodput, degraded_goodput / total,
            f"{retention:.1f}%",
        ])
    dollar = ("\n\n### Resilience per mm² (degraded-mode goodput against "
              "total fabric silicon, Section V-D area model)\n" +
              markdown_table(
                  ["system", "extension mm²", "total mm²",
                   f"goodput@x={peak:g} (tok/s)", "tok/s per mm²",
                   "goodput retention"],
                  dollar_rows))
    return head + tails + dollar


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
