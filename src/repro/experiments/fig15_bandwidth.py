"""Fig. 15 — average bandwidth utilization per sub-layer.

Three CAIS configurations — CAIS-Base (no dataflow optimizer), CAIS-Partial
(optimizer without traffic control) and full CAIS — compared on the mean
utilization across all links and both directions over each run.  The paper
reports 62.4% -> 84.7% -> 90.2%; the reproduced gap is smaller (our message
granularity is coarser and the calibrated fabric slower; see
EXPERIMENTS.md) but the ordering and its causes (asymmetric overlap, then
traffic control) are the claims under test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from ..llm.tp import SUBLAYERS
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, run_system, sublayer_for

CONFIGS = ("CAIS-Base", "CAIS-Partial", "CAIS")


def run(scale: Scale = DEFAULT,
        models: Optional[Sequence[str]] = None,
        sublayers: Sequence[str] = SUBLAYERS,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[str, float]]:
    """Returns {workload: {config: goodput utilization, config (raw): ...}}.

    *Goodput* utilization discounts redundant traffic (partial-reduction
    flushes from merge-table evictions): each config's raw utilization is
    scaled by full CAIS's byte volume over its own, so wasted re-sends do
    not count as "utilizing" the fabric.
    """
    cfg = dgx_h100_config()
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for model_name in (models or list(TABLE_I)):
        model = scale.apply(TABLE_I[model_name])
        for which in sublayers:
            for system in CONFIGS:
                graph = sublayer_for(model, cfg.num_gpus, system, which)
                tasks.append(SimTask(system=system, graphs=(graph,),
                                     config=cfg, scale=scale))
                keys.append((f"{model_name} {which}", system))
    summaries = run_matrix(tasks, ctx)
    raw: Dict[str, Dict[str, float]] = {}
    bytes_moved: Dict[str, Dict[str, int]] = {}
    for (key, system), res in zip(keys, summaries):
        raw.setdefault(key, {})[system] = res.avg_bandwidth_utilization
        bytes_moved.setdefault(key, {})[system] = res.link_bytes_total
    out: Dict[str, Dict[str, float]] = {}
    for key, per_system in raw.items():
        useful = bytes_moved[key]["CAIS"]
        out[key] = {s: per_system[s] * useful / bytes_moved[key][s]
                    for s in CONFIGS}
        for s in CONFIGS:
            out[key][f"{s} (raw)"] = per_system[s]
    return out


def averages(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    return {system: sum(row[system] for row in results.values()) /
            len(results) for system in CONFIGS}


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    rows = [[key] + [row[s] for s in CONFIGS]
            for key, row in results.items()]
    avg = averages(results)
    rows.append(["average"] + [avg[s] for s in CONFIGS])
    return ("### Fig. 15: average goodput bandwidth utilization per "
            "sub-layer\n" +
            markdown_table(["workload"] + list(CONFIGS), rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
