"""Fig. 15 — average bandwidth utilization per sub-layer.

Three CAIS configurations — CAIS-Base (no dataflow optimizer), CAIS-Partial
(optimizer without traffic control) and full CAIS — compared on the mean
utilization across all links and both directions over each run.  The paper
reports 62.4% -> 84.7% -> 90.2%; the reproduced gap is smaller (our message
granularity is coarser and the calibrated fabric slower; see
EXPERIMENTS.md) but the ordering and its causes (asymmetric overlap, then
traffic control) are the claims under test.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from ..llm.tp import SUBLAYERS
from .runner import DEFAULT, Scale, markdown_table, run_system, sublayer_for

CONFIGS = ("CAIS-Base", "CAIS-Partial", "CAIS")


def run(scale: Scale = DEFAULT,
        models: Optional[Sequence[str]] = None,
        sublayers: Sequence[str] = SUBLAYERS) -> Dict[str, Dict[str, float]]:
    """Returns {workload: {config: goodput utilization, config (raw): ...}}.

    *Goodput* utilization discounts redundant traffic (partial-reduction
    flushes from merge-table evictions): each config's raw utilization is
    scaled by full CAIS's byte volume over its own, so wasted re-sends do
    not count as "utilizing" the fabric.
    """
    cfg = dgx_h100_config()
    out: Dict[str, Dict[str, float]] = {}
    for model_name in (models or list(TABLE_I)):
        model = scale.apply(TABLE_I[model_name])
        for which in sublayers:
            key = f"{model_name} {which}"
            raw: Dict[str, float] = {}
            bytes_moved: Dict[str, int] = {}
            for system in CONFIGS:
                graph = sublayer_for(model, cfg.num_gpus, system, which)
                res = run_system(system, [graph], cfg, scale)
                raw[system] = res.average_bandwidth_utilization()
                bytes_moved[system] = sum(
                    l.tracker.bytes_transferred
                    for l in res.network.all_links())
            useful = bytes_moved["CAIS"]
            out[key] = {s: raw[s] * useful / bytes_moved[s]
                        for s in CONFIGS}
            for s in CONFIGS:
                out[key][f"{s} (raw)"] = raw[s]
    return out


def averages(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    return {system: sum(row[system] for row in results.values()) /
            len(results) for system in CONFIGS}


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    rows = [[key] + [row[s] for s in CONFIGS]
            for key, row in results.items()]
    avg = averages(results)
    rows.append(["average"] + [avg[s] for s in CONFIGS])
    return ("### Fig. 15: average goodput bandwidth utilization per "
            "sub-layer\n" +
            markdown_table(["workload"] + list(CONFIGS), rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
