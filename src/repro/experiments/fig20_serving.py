"""Fig. 20 — inference-serving throughput and latency (repro extension).

Not a figure from the paper: the paper's evaluation runs one training /
inference step at a time.  This experiment serves a seeded request stream
(Poisson arrivals, per-request prompt/output lengths) through the
continuous-batching scheduler of :mod:`repro.llm.serving` on CAIS and the
NVLS/ring baselines, and reports the serving-native metrics — system
tokens/s, mean/p95 TTFT, and mean TPOT — under identical request streams.

Every (system, spec) cell is one independent simulation, so the matrix
fans out through :func:`repro.experiments.parallel.run_matrix` (worker
pool + content-addressed cache; the :class:`ServingSpec` is part of the
task fingerprint).  The request stream is a pure function of the spec's
seed, so two runs of this experiment are byte-identical — the CI serving
smoke job diffs exactly this output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.serving import ServingSpec
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table

#: CAIS against the strongest barrier (NVLS) and software-pipeline (ring)
#: baselines; the full nine-way comparison lives in fig11.
SYSTEMS = ("TP-NVLS", "SP-NVLS", "CoCoNet", "FuseLib", "CAIS")

#: Serving details surfaced per cell (written by ``simulate_serving``).
DETAILS = ("serving.tokens_per_s", "serving.ttft_mean_ns",
           "serving.ttft_p95_ns", "serving.tpot_mean_ns",
           "serving.requests", "serving.tokens", "serving.iterations",
           "serving.evictions")


def spec_for(scale: Scale, seed: int = 2026) -> ServingSpec:
    """The experiment's workload at one scale.

    ``tokens_fraction`` scales the arrival window: the quick preset
    serves a shorter burst of the same request distribution, mirroring
    how the other figures scale token counts.  The rate is set well above
    the systems' service capacity so every system runs saturated and the
    comparison measures steady-state batched throughput, not idle time.
    """
    return ServingSpec(model="Mega-GPT-4B", seed=seed,
                       arrival_rate_rps=40000.0,
                       max_arrival_rate_rps=80000.0,
                       horizon_ms=4.0 * scale.tokens_fraction,
                       prompt_min=64, prompt_max=256,
                       output_min=2, output_max=8,
                       max_batch_requests=8)


def run(scale: Scale = DEFAULT, seed: int = 2026,
        systems: Sequence[str] = SYSTEMS,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[str, float]]:
    """Returns {system: {metric: value}} over one shared request stream."""
    spec = spec_for(scale, seed)
    cfg = dgx_h100_config()
    tasks: List[SimTask] = [
        SimTask(system=system, graphs=(), config=cfg, scale=scale,
                serving=spec)
        for system in systems]
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[str, float]] = {}
    for system, res in zip(systems, summaries):
        details = dict(res.details)
        cell = {"makespan_ns": res.makespan_ns}
        for name in DETAILS:
            cell[name] = details.get(name, 0.0)
        out[system] = cell
    return out


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for system, cell in results.items():
        rows.append([
            system,
            cell["serving.tokens_per_s"],
            cell["serving.ttft_mean_ns"] / 1e6,
            cell["serving.ttft_p95_ns"] / 1e6,
            cell["serving.tpot_mean_ns"] / 1e6,
            int(cell["serving.requests"]),
            int(cell["serving.tokens"]),
            int(cell["serving.iterations"]),
            int(cell["serving.evictions"]),
        ])
    head = ("### Fig. 20: continuous-batching serving "
            "(shared request stream, saturated arrivals)\n" +
            markdown_table(
                ["system", "tokens/s", "TTFT mean (ms)", "TTFT p95 (ms)",
                 "TPOT mean (ms)", "reqs", "tokens", "iters", "evict"],
                rows))
    cais = results.get("CAIS", {}).get("serving.tokens_per_s", 0.0)
    others = {s: c["serving.tokens_per_s"] for s, c in results.items()
              if s != "CAIS"}
    if cais > 0 and others:
        best = max(others.values())
        tail = (f"\n\nCAIS serves {cais:,.0f} tokens/s — "
                f"{cais / best:.2f}x the best baseline "
                f"({max(others, key=others.get)}).")
    else:
        tail = ""
    return head + tail


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
