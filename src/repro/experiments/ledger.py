"""Ledger records for experiment runs + the ``repro ledger`` CLI.

:mod:`repro.obs.ledger` owns the generic record envelope and the
append-only store; this module owns the **policy** — what a simulation's
spec digest and headline metrics look like — and the command line that
queries the accumulated history:

* :func:`task_spec` / :func:`record_for_task` — one canonical record per
  :class:`~.parallel.SimTask` outcome (matrix workers and the cache-hit
  path both use these, so hit and miss records of the same run carry
  byte-identical stable sections).
* :func:`record_for_result` — the same record built from a live
  :class:`~repro.systems.base.RunResult` (the ``python -m repro``
  direct-run path); metrics come from :meth:`RunResult.headline`, which
  is definitionally aligned with the summary projection.
* ``python -m repro ledger query|summarize|regress`` (:func:`main`) —
  filter recorded runs, per-system trends across history, and a drift
  gate comparing the ledger against the committed benchmark envelopes
  (``BENCH_baseline.json`` / ``BENCH_engine.json``) — the substrate the
  ROADMAP-5 DSE driver will search.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from collections import defaultdict
from typing import Any, Dict, List, Optional

from ..common import fastpath
from ..obs.ledger import RunLedger, build_record, stable_line
from .cache import canonical
from .runner import markdown_table

#: Default benchmark envelopes ``ledger regress`` checks against
#: (relative to the invoking working directory — the repo root in CI).
DEFAULT_ENGINE_BENCH = "BENCH_engine.json"
DEFAULT_BASELINE_BENCH = "benchmarks/BENCH_baseline.json"

#: ``regress`` fails when the ledger's median host event throughput
#: falls below this fraction of the committed ``events_per_cpu_second``
#: reference.  Deliberately loose (machines differ) — this is a canary
#: for catastrophic engine slowdowns, not a precision gate.
DEFAULT_THROUGHPUT_FLOOR = 0.01


def _model_of(task) -> Optional[str]:
    """Best-effort Table-I model name for query/summarize filters."""
    if task.replica is not None:
        return (task.replica.model.name if task.replica.model is not None
                else task.replica.spec.model)
    if task.serving is not None:
        return task.serving.model
    from ..llm.models import TABLE_I
    for graph in task.graphs:
        for name in sorted(TABLE_I, key=len, reverse=True):
            if graph.name.startswith(name + "-"):
                return name
    return None


def task_spec(task) -> Dict[str, Any]:
    """Deterministic spec digest of one task: everything a reader needs
    to know *what ran* without re-deriving the fingerprint payload."""
    cfg = task.config
    fp = fastpath.config()
    role = None
    if task.replica is not None:
        workload = "fleet"
        # "replica" / "prefill" / "decode" plus the pool-local slot, so
        # fleet rollups never alias each other or single-session serving.
        role = f"{task.replica.role}[{task.replica.index}]"
    elif task.serving is not None:
        workload = "serving"
    elif task.ablation is not None:
        workload = "ablation"
    else:
        workload = "graphs"
    return {
        "system": task.system,
        "workload": workload,
        "role": role,
        "model": _model_of(task),
        "seed": cfg.seed,
        "num_gpus": cfg.num_gpus,
        "num_switches": cfg.num_switches,
        "graphs": [g.name for g in task.graphs],
        "kwargs": [[k, canonical(v)] for k, v in sorted(task.kwargs)],
        "scale": canonical(task.scale),
        "faults": canonical(cfg.faults),
        # Replica tasks record the per-replica serving spec: it is what
        # actually ran (the fleet routing lives in the role + requests).
        "serving": canonical(task.serving if task.serving is not None
                             else task.replica.spec
                             if task.replica is not None else None),
        "ablation": canonical(task.ablation),
        "fastpath": fp.cache_token() if fp.any_enabled else None,
    }


def summary_metrics(summary) -> Dict[str, float]:
    """Headline scalars of a :class:`~.parallel.RunSummary` — the same
    keys :meth:`RunResult.headline` produces, so records from the matrix
    path and the direct-CLI path are interchangeable."""
    return {
        "makespan_ns": summary.makespan_ns,
        "compute_ns": summary.compute_ns,
        "tbs_completed": summary.tbs_completed,
        "events": summary.events,
        "gpu_utilization": summary.gpu_utilization,
        "avg_bandwidth_utilization": summary.avg_bandwidth_utilization,
        "link_bytes_total": summary.link_bytes_total,
    }


def record_for_task(task, summary, *, cache_hit: bool, wall_ms: float,
                    fingerprint: Optional[str] = None) -> Dict[str, Any]:
    """One ledger record for a task outcome (simulated or cache-served)."""
    return build_record(
        fingerprint=fingerprint or task.fingerprint(),
        spec=task_spec(task),
        metrics=summary_metrics(summary),
        details=dict(summary.details),
        cache_hit=cache_hit,
        wall_ms=wall_ms)


def record_for_result(task, result, *, wall_ms: float) -> Dict[str, Any]:
    """One ledger record from a live :class:`RunResult` (direct CLI runs).

    ``task`` is the :class:`~.parallel.SimTask` *description* of what
    ran — the CLI builds one purely for its fingerprint and spec digest,
    so a direct run and the identical matrix task share a fingerprint.
    """
    return build_record(
        fingerprint=task.fingerprint(),
        spec=task_spec(task),
        metrics=result.headline(),
        details={k: float(v) for k, v in sorted(result.details.items())},
        cache_hit=False,
        wall_ms=wall_ms)


# ---------------------------------------------------------------------------
# Query / summarize / regress
# ---------------------------------------------------------------------------

def filter_records(records, *, system: Optional[str] = None,
                   workload: Optional[str] = None,
                   model: Optional[str] = None,
                   seed: Optional[int] = None,
                   fingerprint: Optional[str] = None) -> List[Dict]:
    out = []
    for rec in records:
        spec = rec["spec"]
        if system is not None and spec.get("system") != system:
            continue
        if workload is not None and spec.get("workload") != workload:
            continue
        if model is not None and spec.get("model") != model:
            continue
        if seed is not None and spec.get("seed") != seed:
            continue
        if fingerprint is not None and \
                not rec["fingerprint"].startswith(fingerprint):
            continue
        out.append(rec)
    return out


def _when(rec: Dict) -> str:
    ts = rec["volatile"].get("recorded_unix", 0.0)
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))


def format_query(records: List[Dict]) -> str:
    if not records:
        return "ledger query: no matching records"
    rows = []
    for rec in records:
        spec, vol = rec["spec"], rec["volatile"]
        rows.append([
            _when(rec),
            spec.get("system", "?"),
            spec.get("workload", "?"),
            spec.get("model") or "-",
            spec.get("seed", "?"),
            rec["metrics"]["makespan_ns"] / 1e6,
            int(rec["metrics"]["events"]),
            "hit" if vol["cache_hit"] else "miss",
            vol["wall_ms"],
            rec["fingerprint"][:12],
        ])
    table = markdown_table(
        ["recorded (utc)", "system", "workload", "model", "seed",
         "makespan (ms)", "events", "cache", "wall (ms)", "fingerprint"],
        rows)
    return f"### repro ledger — {len(records)} record(s)\n{table}"


def summarize_records(records: List[Dict]) -> List[Dict]:
    """Per-(system, workload, role) aggregates across recorded history.

    ``role`` is ``None`` for everything but fleet replica records
    (``replica[i]`` / ``prefill[i]`` / ``decode[i]``) — without it in
    the key, a fleet's N per-replica serving runs would alias each other
    and any single-session serving record of the same system.
    """
    groups: Dict[tuple, List[Dict]] = defaultdict(list)
    for rec in records:
        spec = rec["spec"]
        groups[(spec.get("system", "?"),
                spec.get("workload", "?"),
                spec.get("role"))].append(rec)
    out = []
    for (system, workload, role), recs in sorted(
            groups.items(), key=lambda kv: (kv[0][0], kv[0][1],
                                            kv[0][2] or "")):
        makespans = [r["metrics"]["makespan_ns"] for r in recs]
        hits = sum(1 for r in recs if r["volatile"]["cache_hit"])
        miss_walls = [r["volatile"]["wall_ms"] for r in recs
                      if not r["volatile"]["cache_hit"]]
        out.append({
            "system": system,
            "workload": workload,
            "role": role,
            "runs": len(recs),
            "fingerprints": len({r["fingerprint"] for r in recs}),
            "cache_hit_rate": hits / len(recs),
            "makespan_ns": {
                "latest": makespans[-1],
                "min": min(makespans),
                "mean": sum(makespans) / len(makespans),
            },
            "sim_wall_ms_total": sum(miss_walls),
            "last_recorded": _when(recs[-1]),
        })
    return out


def format_summary(groups: List[Dict]) -> str:
    if not groups:
        return "ledger summarize: no records"
    rows = [[g["system"], g["workload"], g.get("role") or "-",
             g["runs"], g["fingerprints"],
             f"{g['cache_hit_rate']:.0%}",
             g["makespan_ns"]["latest"] / 1e6,
             g["makespan_ns"]["min"] / 1e6,
             g["makespan_ns"]["mean"] / 1e6,
             g["sim_wall_ms_total"] / 1e3,
             g["last_recorded"]]
            for g in groups]
    table = markdown_table(
        ["system", "workload", "role", "runs", "specs", "hit rate",
         "latest (ms)", "min (ms)", "mean (ms)", "sim wall (s)",
         "last recorded (utc)"],
        rows)
    total = sum(g["runs"] for g in groups)
    return (f"### repro ledger summary — {total} record(s), "
            f"{len(groups)} system/workload group(s)\n{table}")


def regress_check(records: List[Dict], *,
                  engine_bench: Optional[Dict] = None,
                  baseline_bench: Optional[Dict] = None,
                  throughput_floor: float = DEFAULT_THROUGHPUT_FLOOR,
                  ) -> List[str]:
    """All drift problems found in the ledger; empty means the gate passes.

    Three checks, strongest first:

    1. **Determinism drift** — the same fingerprint must never appear
       with two different stable sections (spec/metrics/details); the
       fingerprint *is* the promise that the outcome is reproducible.
    2. **Cache-replay fidelity** — a hit record must be stable-identical
       to the miss record that populated its cache entry (the pure-replay
       invariant ``BENCH_baseline.json``'s cached row asserts in bench
       form).  A drift here with check 1 passing is impossible, but the
       message names the cache when both sides exist.
    3. **Engine throughput canary** — against ``BENCH_engine.json``'s
       ``events_per_cpu_second`` reference: the median host event
       throughput of simulated records must stay above
       ``throughput_floor`` of it.  Loose by design; it exists to catch
       order-of-magnitude engine regressions the moment any ledgered run
       exhibits one.
    """
    problems: List[str] = []
    if not records:
        return ["ledger is empty: nothing to check "
                "(run with --ledger or REPRO_LEDGER first)"]

    by_fp: Dict[str, Dict[str, Dict]] = defaultdict(dict)
    for rec in records:
        line = stable_line(rec)
        by_fp[rec["fingerprint"]].setdefault(line, rec)
    for fp, variants in sorted(by_fp.items()):
        if len(variants) > 1:
            recs = list(variants.values())
            hit_kinds = {r["volatile"]["cache_hit"] for r in recs}
            makespans = sorted({r["metrics"]["makespan_ns"]
                                for r in recs})
            if hit_kinds == {True, False}:
                problems.append(
                    f"cache replay diverged from simulation for "
                    f"{fp[:12]}…: makespans {makespans}")
            else:
                problems.append(
                    f"determinism drift: fingerprint {fp[:12]}… has "
                    f"{len(variants)} distinct stable records "
                    f"(makespans {makespans})")

    if engine_bench is not None:
        reference = float(engine_bench.get("events_per_cpu_second", 0.0))
        rates = [r["metrics"]["events"] / (r["volatile"]["wall_ms"] / 1e3)
                 for r in records
                 if not r["volatile"]["cache_hit"]
                 and r["volatile"]["wall_ms"] > 0.0
                 and r["metrics"]["events"] > 0]
        if reference > 0.0 and rates:
            floor = throughput_floor * reference
            observed = statistics.median(rates)
            if observed < floor:
                problems.append(
                    f"engine throughput collapsed: median "
                    f"{observed:,.0f} events/s over {len(rates)} "
                    f"simulated record(s) is below "
                    f"{throughput_floor:.0%} of the committed "
                    f"{reference:,.0f} events/s reference")

    if baseline_bench is not None:
        # The committed cached row promises warm re-runs are pure
        # replays; in ledger terms a hit record must cost (essentially)
        # no simulation wall time.
        expensive_hits = [r for r in records
                          if r["volatile"]["cache_hit"]
                          and r["volatile"]["wall_ms"] > 1e3]
        if expensive_hits:
            problems.append(
                f"{len(expensive_hits)} cache-hit record(s) carry "
                f">1 s of wall time — hits should be pure replays "
                f"(BENCH_baseline.json cached envelope)")
    return problems


def _load_json(path: str) -> Optional[Dict]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def main(argv=None) -> int:
    """``python -m repro ledger`` — query the cross-run ledger."""
    parser = argparse.ArgumentParser(
        prog="python -m repro ledger",
        description="query, summarize, and regression-gate the "
                    "append-only run ledger (see README, 'Auditing runs "
                    "over time')")
    parser.add_argument("--dir", default=".repro_ledger", metavar="DIR",
                        help="ledger root (default: %(default)s)")
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="filter and list recorded runs")
    q.add_argument("--system", default=None)
    q.add_argument("--workload", default=None,
                   choices=("graphs", "serving", "ablation", "fleet"))
    q.add_argument("--model", default=None)
    q.add_argument("--seed", type=int, default=None)
    q.add_argument("--fingerprint", default=None, metavar="PREFIX",
                   help="hex fingerprint prefix")
    q.add_argument("--limit", type=int, default=None, metavar="N",
                   help="show only the latest N matches")
    q.add_argument("--json", action="store_true",
                   help="emit matching records as JSONL instead")

    s = sub.add_parser("summarize",
                       help="per-system trends across recorded runs")
    s.add_argument("--system", default=None)
    s.add_argument("--json", action="store_true")

    r = sub.add_parser("regress",
                       help="fail on determinism drift or engine "
                            "slowdown vs the committed benchmarks")
    r.add_argument("--engine-bench", default=DEFAULT_ENGINE_BENCH,
                   metavar="PATH",
                   help="BENCH_engine.json envelope "
                        "(default: %(default)s)")
    r.add_argument("--bench", default=DEFAULT_BASELINE_BENCH,
                   metavar="PATH",
                   help="BENCH_baseline.json envelope "
                        "(default: %(default)s)")
    r.add_argument("--throughput-floor", type=float,
                   default=DEFAULT_THROUGHPUT_FLOOR, metavar="F",
                   help="minimum fraction of the reference host event "
                        "throughput (default: %(default)s)")
    args = parser.parse_args(argv)

    ledger = RunLedger(args.dir)
    records = ledger.records()

    if args.command == "query":
        matched = filter_records(
            records, system=args.system, workload=args.workload,
            model=args.model, seed=args.seed,
            fingerprint=args.fingerprint)
        if args.limit is not None:
            matched = matched[-args.limit:]
        if args.json:
            for rec in matched:
                print(json.dumps(rec, sort_keys=True,
                                 separators=(",", ":")))
        else:
            print(format_query(matched))
        return 0

    if args.command == "summarize":
        matched = filter_records(records, system=args.system)
        groups = summarize_records(matched)
        if args.json:
            print(json.dumps(groups, sort_keys=True,
                             separators=(",", ":")))
        else:
            print(format_summary(groups))
        return 0

    # regress
    engine = _load_json(args.engine_bench)
    baseline = _load_json(args.bench)
    problems = regress_check(records, engine_bench=engine,
                             baseline_bench=baseline,
                             throughput_floor=args.throughput_floor)
    skipped = [name for name, obj in
               (("engine", engine), ("baseline", baseline)) if obj is None]
    print(f"ledger regress: {len(records)} record(s), "
          f"{len({r['fingerprint'] for r in records})} fingerprint(s)"
          + (f" (skipped envelopes: {', '.join(skipped)})"
             if skipped else ""))
    if problems:
        print("\nDRIFT:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("ledger regress: OK")
    return 0


if __name__ == "__main__":   # pragma: no cover - manual entry point
    import sys
    sys.exit(main())
