"""Table II — experimental validation of the scaling-down setup.

The paper compares a full-scale system (132 SMs, full model dimensions)
against the half-scale configuration used everywhere else (66 SMs, matrix
dimensions halved) and shows the CAIS-over-TP-NVLS speedup is preserved
(1.43 vs 1.40).  We run the same pair: the speedup measured on the
half-scale setup should track the full-scale one closely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common.config import dgx_h100_config, full_scale_config
from ..llm.models import LLAMA_7B, LLAMA_FULL
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, run_system, sublayer_for


def run(scale: Scale = DEFAULT, which: str = "L1",
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict]:
    """Returns {"Full": {...}, "Half": {...}} with per-setup speedups."""
    setups = {
        "Full": (full_scale_config(), LLAMA_FULL),
        "Half": (dgx_h100_config(), LLAMA_7B),
    }
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for label, (cfg, base_model) in setups.items():
        model = scale.apply(base_model)
        for system in ("CAIS", "TP-NVLS"):
            graph = sublayer_for(model, cfg.num_gpus, system, which)
            tasks.append(SimTask(system=system, graphs=(graph,),
                                 config=cfg, scale=scale))
            keys.append((label, system))
    summaries = run_matrix(tasks, ctx)
    times: Dict[str, Dict[str, float]] = {}
    for (label, system), res in zip(keys, summaries):
        times.setdefault(label, {})[system] = res.makespan_ns
    out: Dict[str, Dict] = {}
    for label, (cfg, base_model) in setups.items():
        model = scale.apply(base_model)
        out[label] = {
            "hidden": model.hidden,
            "ffn_hidden": model.ffn_hidden,
            "heads": model.heads,
            "sms": cfg.gpu.num_sms,
            "speedup": times[label]["TP-NVLS"] / times[label]["CAIS"],
        }
    return out


def format_table(results: Dict[str, Dict]) -> str:
    rows = [[label, row["hidden"], row["ffn_hidden"], row["heads"],
             row["sms"], row["speedup"]]
            for label, row in results.items()]
    return ("### Table II: full- vs half-scale validation "
            "(CAIS speedup over TP-NVLS; paper: 1.43 vs 1.40)\n" +
            markdown_table(["setup", "hidden", "ffn", "heads", "#SM",
                            "CAIS speedup over TP-NVLS"], rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
