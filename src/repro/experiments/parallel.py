"""Parallel experiment fan-out over independent simulations.

The paper's evaluation is a matrix of fully independent ``Simulator``
instances — 9 baselines x Table-I models x ablation grids — and each run
builds its own engine, network, and RNG streams from the task description
alone.  This module fans that matrix across cores:

* :class:`SimTask` — a picklable description of one simulation (system,
  workload graphs, config, scale, optional CAIS-ablation knobs).  Graphs
  carry no closures or engine handles, so tasks ship to worker processes
  unchanged.
* :class:`RunSummary` — the picklable, JSON-round-trippable result
  envelope.  A :class:`~repro.systems.base.RunResult` drags the whole
  ``Network`` and ``Timeline`` along; the summary keeps exactly the
  scalars and series the figure modules consume.
* :func:`run_matrix` — executes a task list, serially (``jobs=1``, the
  byte-for-byte default path) or on a ``ProcessPoolExecutor``, merging
  results back in task order and consulting a
  :class:`~repro.experiments.cache.SimCache` when one is supplied.

Determinism: each task carries its seed inside ``SystemConfig``; every
worker run rebuilds the engine from scratch exactly like the serial path
(``System.run`` resets the tensor/group id counters), so ``--jobs N`` and
``--jobs 1`` produce identical tables and cache entries.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import fastpath
from ..common.config import FaultSpec, SystemConfig
from ..common.errors import WorkloadError
from ..llm.fleet import ReplicaSpec
from ..llm.graph import Graph
from ..llm.serving import ServingSpec
from ..obs import current_metrics, ledger_from_env
from .cache import CACHE_SCHEMA, SimCache, fingerprint

#: Metric names emitted by :func:`run_matrix` (satellite: cache and pool
#: health flow through the PR-1 observability layer, visible via
#: ``--metrics``).
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
TASK_WALL_MS = "experiments.task_wall_ms"


@dataclass(frozen=True)
class AblationSpec:
    """CAIS coordination-ablation knobs (Fig. 13's ``_run_cais`` path).

    These runs bypass :func:`~repro.experiments.runner.run_system` —
    they need explicit coordination feature sets and merge-table limits
    that the system registry does not expose — so the task records the
    knobs and the worker rebuilds the ablation harness itself.
    """

    features: Tuple[str, ...] = ()
    merge_capacity: Optional[int] = None     # None = unbounded table
    merge_timeout: Optional[float] = None    # None = no timeout

    @classmethod
    def of(cls, features) -> "AblationSpec":
        return cls(features=tuple(sorted(features)))


@dataclass(frozen=True)
class SimTask:
    """One independent simulation, fully described by value.

    ``utilization_windows`` asks the worker to pre-compute the Fig. 16
    windowed utilization series (the raw per-link trackers do not travel
    back across the process boundary).  It does **not** enter the cache
    fingerprint — see :func:`summary_satisfies`.
    """

    system: str
    graphs: Tuple[Graph, ...]
    config: SystemConfig
    scale: object                            # runner.Scale (import cycle)
    kwargs: Tuple[Tuple[str, object], ...] = ()
    utilization_windows: Optional[int] = None
    ablation: Optional[AblationSpec] = None
    #: When set, the worker runs the request-level serving workload
    #: (``graphs`` stays empty — the driver builds one graph per
    #: continuous-batching iteration from the spec).
    serving: Optional[ServingSpec] = None
    #: When set, the worker runs one fleet replica's serving stream: the
    #: explicit pre-routed request list inside the replica spec, not the
    #: spec's own Poisson stream.  The per-request outcomes travel back
    #: in ``RunSummary.request_stats`` for fleet aggregation.
    replica: Optional[ReplicaSpec] = None
    #: Ask the worker to run under a private metrics registry and ship the
    #: full histogram states (not just scalar summaries) back in the
    #: envelope, so matrix callers can merge distributions across cells
    #: (:func:`repro.obs.merge_histogram_states`).  Like
    #: ``utilization_windows`` it does not change the simulation outcome
    #: and stays out of the cache fingerprint — see
    #: :func:`summary_satisfies`.
    collect_histograms: bool = False

    def payload(self) -> Dict[str, object]:
        """Canonical fingerprint payload: everything that can change the
        simulation outcome, nothing that cannot."""
        out = {
            "schema": CACHE_SCHEMA,
            "system": self.system,
            "kwargs": [[k, v] for k, v in sorted(self.kwargs)],
            "graphs": [_graph_payload(g) for g in self.graphs],
            "config": self.config,
            "scale": self.scale,
            "ablation": self.ablation,
            "serving": self.serving,
            "replica": self.replica,
        }
        # Engine fast-path layers change summary fields (event counts,
        # fastpath.* details) even when the physics is identical, so runs
        # under different layer sets must not share cache entries.  The
        # token is omitted entirely when every layer is off so that
        # ``--no-fastpath`` reuses pre-fast-path cache entries unchanged.
        fp = fastpath.config()
        if fp.any_enabled:
            out["fastpath"] = fp.cache_token()
        return out

    def fingerprint(self) -> str:
        return fingerprint(self.payload())


def _graph_payload(graph: Graph) -> Dict[str, object]:
    """Structural identity of a workload graph (insertion order is the
    graph's canonical op order)."""
    return {
        "name": graph.name,
        "ops": [{
            "name": op.name,
            "kind": op.kind,
            "deps": list(op.deps),
            "gemm": op.gemm,
            "elements": op.elements,
            "flops_per_element": op.flops_per_element,
            "comm": op.comm,
            "comm_bytes": op.comm_bytes,
            "sublayer": op.sublayer,
        } for op in graph.ops()],
    }


@dataclass(frozen=True)
class RunSummary:
    """Slim, picklable projection of a :class:`RunResult`.

    Holds every quantity the figure modules read off a result — makespan,
    bandwidth utilization (whole-run average, total link bytes, optional
    windowed series) and the merge-unit statistics — without the
    ``Network``/``Timeline`` object graphs.
    """

    system: str
    makespan_ns: float
    compute_ns: float
    tbs_completed: int
    events: int
    gpu_utilization: float
    avg_bandwidth_utilization: float
    link_bytes_total: int
    merge_peak_bytes_per_port: float
    merge_average_wait_ns: float
    #: Fig. 16 series: ((window_center_us, mean_utilization), ...).
    utilization_series: Optional[Tuple[Tuple[float, float], ...]] = None
    details: Tuple[Tuple[str, float], ...] = ()
    #: Full histogram states (:meth:`repro.obs.Histogram.state`), sorted by
    #: name, when the task asked for them; ``None`` = not collected (an
    #: empty tuple means collected-but-nothing-recorded, so cache entries
    #: distinguish the two).
    histograms: Optional[Tuple[Dict[str, object], ...]] = None
    #: Per-request outcome rows for fleet replica tasks
    #: (:func:`repro.llm.fleet.encode_request_stats`); ``None`` for every
    #: other task kind.  Cache schema v5 field.
    request_stats: Optional[Tuple[Tuple[float, ...], ...]] = None

    @classmethod
    def from_result(cls, result, windows: Optional[int] = None,
                    histograms: bool = False) -> "RunSummary":
        """Project a live :class:`RunResult` down to the summary form."""
        link_bytes = 0
        series = None
        if result.network is not None:
            link_bytes = sum(link.tracker.bytes_transferred
                             for link in result.network.all_links())
            if windows and result.makespan_ns > 0:
                series = _utilization_series(result.network,
                                             result.makespan_ns, windows)
        merge_peak = merge_wait = 0.0
        if result.merge_stats is not None:
            merge_peak = float(result.merge_stats.peak_bytes_per_port())
            merge_wait = result.merge_stats.average_wait_ns()
        hist_states = None
        if histograms:
            hist_states = (tuple(result.metrics.histogram_states())
                           if result.metrics is not None else ())
        return cls(
            system=result.system,
            makespan_ns=result.makespan_ns,
            compute_ns=result.compute_ns,
            tbs_completed=result.tbs_completed,
            events=result.events,
            gpu_utilization=result.gpu_utilization,
            avg_bandwidth_utilization=
                result.average_bandwidth_utilization(),
            link_bytes_total=link_bytes,
            merge_peak_bytes_per_port=merge_peak,
            merge_average_wait_ns=merge_wait,
            utilization_series=series,
            details=tuple(sorted(result.details.items())),
            histograms=hist_states,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the on-disk cache entry)."""
        out: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)}
        if self.utilization_series is not None:
            out["utilization_series"] = [list(p)
                                         for p in self.utilization_series]
        out["details"] = [list(p) for p in self.details]
        if self.histograms is not None:
            out["histograms"] = [dict(h) for h in self.histograms]
        if self.request_stats is not None:
            out["request_stats"] = [list(r) for r in self.request_stats]
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunSummary":
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in payload.items() if k in known}
        if kw.get("utilization_series") is not None:
            kw["utilization_series"] = tuple(
                (float(t), float(u)) for t, u in kw["utilization_series"])
        kw["details"] = tuple((str(k), float(v))
                              for k, v in kw.get("details", ()))
        if kw.get("histograms") is not None:
            kw["histograms"] = tuple(dict(h) for h in kw["histograms"])
        if kw.get("request_stats") is not None:
            kw["request_stats"] = tuple(
                tuple(float(x) for x in r) for r in kw["request_stats"])
        return cls(**kw)


def _utilization_series(network, makespan_ns: float, windows: int,
                        ) -> Tuple[Tuple[float, float], ...]:
    """Windowed mean link utilization — exactly Fig. 16's loop."""
    links = network.all_links()
    window = makespan_ns / windows
    series: List[Tuple[float, float]] = []
    t = 0.0
    while t < makespan_ns - 1e-9:
        hi = min(t + window, makespan_ns)
        util = sum(link.tracker.utilization(t, hi)
                   for link in links) / len(links)
        series.append(((t + hi) / 2 / 1e3, util))
        t += window
    return tuple(series)


def summary_satisfies(task: SimTask, summary: RunSummary) -> bool:
    """Whether a cached summary answers everything ``task`` asks for.

    Windowed-series resolution deliberately stays out of the fingerprint
    (so fig12/fig15 share entries with plain runs of the same workload);
    a fig16-style task therefore re-checks the summary's shape here and
    re-simulates on mismatch, overwriting the entry with a richer one.
    """
    if task.collect_histograms and summary.histograms is None:
        return False
    # Replica tasks need the per-request rows back for aggregation; an
    # entry written by a non-replica run of the same shape (impossible
    # under one schema, but cheap to guard) re-simulates.
    if task.replica is not None and summary.request_stats is None:
        return False
    if task.utilization_windows is None:
        return True
    series = summary.utilization_series
    return (series is not None
            and len(series) == task.utilization_windows
            and summary.makespan_ns > 0)


@dataclass
class ExecContext:
    """How a figure's task matrix executes: worker count + result cache.

    The default (``jobs=1``, no cache) is today's serial in-process path,
    byte-for-byte — library callers that never pass a context see no
    behaviour change.
    """

    jobs: int = 1
    cache: Optional[SimCache] = None
    #: When set *and enabled*, every task whose config has faults disabled
    #: is re-issued with this fault spec before fingerprinting — faulted
    #: and fault-free runs can never share a cache entry (the spec lives
    #: inside SystemConfig, so it enters the task fingerprint).  Tasks
    #: that already carry an enabled spec (e.g. fig19's own intensity
    #: sweep) keep theirs.  A disabled spec here is just a flag carrier
    #: (e.g. ``--fault-seed`` for fig19) and changes nothing.
    fault_spec: Optional[FaultSpec] = None
    #: Opt-in live stderr progress board (done/total, cache hit rate,
    #: worker utilization, EWMA task wall time, ETA).  Harness telemetry
    #: only — adds zero simulation events and zero RNG draws.
    progress: bool = False
    #: When set, write a Perfetto trace **of the runner** to this path:
    #: one track per worker process, one span per executed task, instant
    #: events for cache hits (see :mod:`.telemetry`).
    meta_trace: Optional[str] = None


#: Shared default so ``ctx=None`` callers allocate nothing.
SERIAL = ExecContext()


def _execute_task(task: SimTask) -> Tuple[RunSummary, float]:
    """Run one task to completion; returns (summary, host wall ms).

    Top-level so it pickles into pool workers; also the serial path, so
    both modes share one code path per task.
    """
    start = time.perf_counter()
    prev_metrics = None
    if task.collect_histograms:
        # A private registry per task, so the harvested histograms describe
        # exactly this simulation even when the caller's own registry is
        # installed (and in pool workers, where nothing is).
        from .. import obs
        prev_metrics = current_metrics()
        obs.install(metrics=obs.MetricsRegistry())
    try:
        serving = None
        if task.replica is not None:
            serving = _run_replica(task)
            result = serving.run
        elif task.serving is not None:
            result = _run_serving(task)
        elif task.ablation is not None:
            result = _run_ablation(task)
        else:
            from .runner import run_system
            result = run_system(task.system, list(task.graphs), task.config,
                                task.scale, **dict(task.kwargs))
        summary = RunSummary.from_result(
            result, windows=task.utilization_windows,
            histograms=task.collect_histograms)
        if serving is not None:
            from ..llm.fleet import encode_request_stats
            summary = replace(summary,
                              request_stats=encode_request_stats(serving))
    finally:
        if prev_metrics is not None:
            from .. import obs
            obs.install(metrics=prev_metrics)
    return summary, (time.perf_counter() - start) * 1e3


def _ledger_append(ledger, task: SimTask, summary: RunSummary, *,
                   fingerprint: str, cache_hit: bool,
                   wall_ms: float) -> None:
    """Append one run record, never letting a ledger bug kill the sweep.

    The record policy lives in :mod:`.ledger` (imported lazily — it pulls
    in :mod:`.runner`); any failure building or writing the record is
    downgraded to a warning because the ledger is an observer, not a
    correctness dependency.
    """
    if not ledger.enabled:
        return
    try:
        from .ledger import record_for_task
        ledger.append(record_for_task(task, summary, cache_hit=cache_hit,
                                      wall_ms=wall_ms,
                                      fingerprint=fingerprint))
    except Exception as exc:   # noqa: BLE001 - observer must not raise
        warnings.warn(f"run ledger: dropping record for "
                      f"{fingerprint[:12]}… ({exc})", RuntimeWarning,
                      stacklevel=2)


def _execute_task_observed(
        task: SimTask) -> Tuple[RunSummary, float, int, float, float]:
    """Pool entry point: :func:`_execute_task` plus harness provenance.

    Returns ``(summary, wall_ms, pid, start_monotonic, end_monotonic)``
    — the extra fields feed the parent's meta-trace worker tracks.  The
    worker also appends its own ledger miss-record here: ``REPRO_LEDGER``
    travels through the process environment, so the record is written by
    the process that did the work, concurrently with its siblings.
    (:func:`_execute_task` itself keeps its two-tuple contract.)
    """
    t0 = time.monotonic()
    summary, wall_ms = _execute_task(task)
    t1 = time.monotonic()
    ledger = ledger_from_env()
    if ledger.enabled:
        _ledger_append(ledger, task, summary,
                       fingerprint=task.fingerprint(), cache_hit=False,
                       wall_ms=wall_ms)
    return summary, wall_ms, os.getpid(), t0, t1


def _task_label(task: SimTask) -> str:
    """Human-readable span name for the meta-trace / progress board."""
    if task.replica is not None:
        return (f"{task.system} fleet:"
                f"{task.replica.role}{task.replica.index}")
    if task.serving is not None:
        return f"{task.system} serving"
    if task.ablation is not None:
        return f"{task.system} ablation"
    if task.graphs:
        return f"{task.system} {task.graphs[0].name}"
    return task.system


def _run_serving(task: SimTask):
    """One request-level serving run (the fig20 workload).

    The system instance is built exactly like :func:`runner.run_system`
    builds it; the serving driver then owns the graph sequence, so the
    task ships no graphs — the spec *is* the workload."""
    from ..llm.serving import simulate_serving
    from ..systems import make_system
    from .runner import style_for
    instance = make_system(task.system, task.config,
                           tiling=task.scale.tiling,
                           chunk_bytes=task.scale.coll_chunk_bytes,
                           **dict(task.kwargs))
    return simulate_serving(instance, task.serving,
                            style=style_for(task.system)).run


def _run_replica(task: SimTask):
    """One fleet replica's serving run (the fig22 workload unit).

    Identical to :func:`_run_serving` except the request stream is the
    router's explicit pre-routed list, not the spec's Poisson stream, and
    the full :class:`~repro.llm.serving.ServingResult` is kept so the
    caller can ship per-request outcomes back for fleet aggregation."""
    from ..llm.serving import simulate_serving
    from ..systems import make_system
    from .runner import style_for
    rs = task.replica
    model = rs.model
    if model is None:
        from ..llm.models import by_name
        model = by_name(rs.spec.model)
    instance = make_system(task.system, task.config,
                           tiling=task.scale.tiling,
                           chunk_bytes=task.scale.coll_chunk_bytes,
                           **dict(task.kwargs))
    return simulate_serving(instance, rs.spec, model=model,
                            style=style_for(task.system),
                            requests=rs.to_requests())


def _run_ablation(task: SimTask):
    """One CAIS run with explicit coordination features and table limits
    (the Fig. 13 harness, formerly ``fig13_merge_table._run_cais``)."""
    from ..cais import compiler as cais_compiler
    from ..cais.dataflow import CaisRunner
    from ..llm import tiling as llm_tiling
    from ..systems import Harness

    spec = task.ablation
    llm_tiling.reset_tensor_ids()
    cais_compiler.reset_group_ids()
    harness = Harness(task.config, merge=True,
                      merge_capacity=spec.merge_capacity,
                      merge_timeout=spec.merge_timeout,
                      sync_tables=True, traffic_control=True,
                      fair_share=True)
    runner = CaisRunner(harness, tiling=task.scale.tiling,
                        dataflow=True, coordination=True,
                        coordination_features=frozenset(spec.features))
    done = {"ok": False}

    def _done() -> None:
        done["ok"] = True
        harness.workload_complete()

    runner.run_graphs(list(task.graphs), on_done=_done)
    harness.executor.run()
    if not done["ok"]:
        raise WorkloadError(
            f"{task.system} ablation graphs did not run to completion")
    return harness.result(task.system)


def run_matrix(tasks: Sequence[SimTask],
               ctx: Optional[ExecContext] = None) -> List[RunSummary]:
    """Execute every task, returning summaries in task order.

    Cache hits never reach the pool; misses fan out across
    ``ctx.jobs`` worker processes (``jobs=1`` runs them serially in
    process, preserving today's execution exactly).  Identical tasks
    within one matrix (figures sharing baseline runs) simulate once.
    Emits ``cache.hits``/``cache.misses`` counters and an
    ``experiments.task_wall_ms`` histogram when metrics are installed.

    Harness observability (all opt-in, all outside the simulation):
    when ``$REPRO_LEDGER`` names a directory, every task outcome —
    simulated, cache-served, or aliased — appends one run record there
    (workers append their own miss records; the parent appends hit
    records with zero wall time).  ``ctx.progress`` drives a live
    stderr board and ``ctx.meta_trace`` writes a Perfetto trace of the
    runner itself (:mod:`.telemetry`).
    """
    ctx = ctx or SERIAL
    if ctx.fault_spec is not None and ctx.fault_spec.enabled:
        tasks = [task if task.config.faults.enabled
                 else replace(task,
                              config=task.config.with_faults(ctx.fault_spec))
                 for task in tasks]
    metrics = current_metrics()
    ledger = ledger_from_env()
    board = meta = None
    if ctx.progress:
        from .telemetry import ProgressBoard
        board = ProgressBoard(len(tasks), ctx.jobs)
    if ctx.meta_trace is not None:
        from .telemetry import MetaTrace
        meta = MetaTrace()
    # Fingerprints cost one canonical-JSON + sha256 per task; skip them
    # entirely unless something downstream (cache, ledger, meta-trace)
    # consumes them, preserving the bare serial path byte-for-byte.
    need_fp = (ctx.cache is not None or ledger.enabled
               or meta is not None)
    out: List[Optional[RunSummary]] = [None] * len(tasks)
    fps: List[Optional[str]] = [None] * len(tasks)
    pending: List[int] = []
    queued: Dict[str, int] = {}       # fingerprint -> first pending index
    aliases: List[Tuple[int, int]] = []   # (dup index, source index)
    for i, task in enumerate(tasks):
        if need_fp:
            fps[i] = task.fingerprint()
        if ctx.cache is not None:
            stored = ctx.cache.lookup(fps[i])
            if stored is not None:
                try:
                    summary = RunSummary.from_dict(stored)
                except (TypeError, ValueError):
                    summary = None
                if summary is not None and summary_satisfies(task, summary):
                    out[i] = summary
                    if metrics.enabled:
                        metrics.counter(CACHE_HITS).inc()
                    if board is not None:
                        board.cache_hit()
                    if meta is not None:
                        meta.cache_hit(i, _task_label(task), fps[i])
                    _ledger_append(ledger, task, summary,
                                   fingerprint=fps[i], cache_hit=True,
                                   wall_ms=0.0)
                    continue
            src = queued.get(fps[i])
            if src is not None and (
                    not task.collect_histograms or
                    tasks[src].collect_histograms) and (
                    task.utilization_windows is None or
                    task.utilization_windows ==
                    tasks[src].utilization_windows):
                aliases.append((i, src))
                if metrics.enabled:
                    metrics.counter(CACHE_HITS).inc()
                if board is not None:
                    board.cache_hit()
                if meta is not None:
                    meta.cache_hit(i, _task_label(task), fps[i])
                continue
            queued[fps[i]] = i
            if metrics.enabled:
                metrics.counter(CACHE_MISSES).inc()
        pending.append(i)

    if pending:
        work = [tasks[i] for i in pending]
        jobs = min(max(1, ctx.jobs), len(work))
        if jobs > 1:
            # submit/as_completed (not pool.map) so the board can tick
            # as tasks finish; results land in a position-indexed list,
            # and everything order-sensitive below runs in pending order
            # — parallel and serial modes stay byte-identical.
            outcomes: List = [None] * len(work)
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(_execute_task_observed, task): pos
                           for pos, task in enumerate(work)}
                for future in as_completed(futures):
                    pos = futures[future]
                    outcomes[pos] = future.result()
                    if board is not None:
                        board.task_done(outcomes[pos][1])
        else:
            outcomes = []
            for task in work:
                outcomes.append(_execute_task_observed(task))
                if board is not None:
                    board.task_done(outcomes[-1][1])
        for i, (summary, wall_ms, pid, t0, t1) in zip(pending, outcomes):
            out[i] = summary
            if metrics.enabled:
                metrics.histogram(TASK_WALL_MS).record(wall_ms)
            if ctx.cache is not None:
                ctx.cache.store(fps[i], summary.to_dict())
            if meta is not None:
                meta.task_span(i, _task_label(tasks[i]), fps[i] or "",
                               pid, t0, t1, wall_ms)
    for i, src in aliases:
        out[i] = out[src]
        # In-matrix duplicates are cache hits in every sense that
        # matters to the ledger: same fingerprint, no new simulation.
        _ledger_append(ledger, tasks[i], out[src],
                       fingerprint=fps[i], cache_hit=True, wall_ms=0.0)
    if board is not None:
        board.close()
    if meta is not None:
        meta.write(ctx.meta_trace)
    return out  # type: ignore[return-value]
