"""Fig. 11 — end-to-end model speedup across training and inference.

For each Table-I model we run one transformer layer (forward for the
inference prefill; forward + backward for training) under every system and
report CAIS's speedup over each baseline.  End-to-end time is the per-layer
time multiplied by the layer count — TP communication repeats identically
per layer, so the multiplier cancels in the speedups the figure reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from ..systems import SYSTEM_CLASSES
from .parallel import ExecContext, SimTask, run_matrix
from .runner import (
    BASELINES,
    DEFAULT,
    Scale,
    geomean,
    layer_graphs,
    markdown_table,
    run_system,
)

#: Systems reported in the figure (baselines + CAIS + CAIS-Base).
REPORTED = BASELINES + ("CAIS-Base", "CAIS")


def run(scale: Scale = DEFAULT, training: bool = True,
        models: Optional[Sequence[str]] = None,
        systems: Sequence[str] = REPORTED,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[str, Dict]]:
    """Returns {mode: {model: {system: per-layer us / e2e ms}}}."""
    cfg = dgx_h100_config()
    modes = ["inference"] + (["training"] if training else [])
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for model_name in (models or list(TABLE_I)):
        model = scale.apply(TABLE_I[model_name])
        for mode in modes:
            for system in systems:
                graphs = layer_graphs(model, cfg.num_gpus, system,
                                      training=(mode == "training"))
                tasks.append(SimTask(system=system, graphs=tuple(graphs),
                                     config=cfg, scale=scale))
                keys.append((mode, model_name, system))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[str, Dict]] = {m: {} for m in modes}
    for (mode, model_name, system), res in zip(keys, summaries):
        layers = TABLE_I[model_name].layers
        out[mode].setdefault(model_name, {})[system] = {
            "per_layer_us": res.makespan_ns / 1e3,
            "end_to_end_ms": res.makespan_ns * layers / 1e6,
            "utilization": res.avg_bandwidth_utilization,
        }
    return out


def speedup_rows(results: Dict[str, Dict[str, Dict]],
                 mode: str) -> List[List[object]]:
    rows: List[List[object]] = []
    per_system: Dict[str, List[float]] = {}
    for model_name, systems in results[mode].items():
        cais = systems["CAIS"]["per_layer_us"]
        row: List[object] = [model_name]
        for system in REPORTED:
            if system == "CAIS" or system not in systems:
                continue
            speedup = systems[system]["per_layer_us"] / cais
            per_system.setdefault(system, []).append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["geomean"] + [geomean(per_system[s])
                               for s in REPORTED if s in per_system])
    return rows


def format_table(results: Dict[str, Dict[str, Dict]]) -> str:
    sections = []
    for mode in results:
        headers = ["model"] + [s for s in REPORTED if s != "CAIS"]
        sections.append(f"### Fig. 11 ({mode}): CAIS speedup over each "
                        f"baseline\n" +
                        markdown_table(headers, speedup_rows(results, mode)))
    return "\n\n".join(sections)


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
