"""Fig. 19 — resilience under fault injection (repro extension).

Not a figure from the paper: the paper's evaluation assumes a perfect
fabric.  This sweep measures how gracefully each transport degrades when
the fabric is *not* perfect — CAIS (in-switch reduction with ack/retransmit
and merge-unit drain), TP-NVLS (NVLS collectives with abort-and-fallback
to ring), and CoCoNet (ring collectives with per-chunk retransmission) on
one LLaMA-7B sub-layer across a fault-intensity grid.

The fault schedule is a pure function of ``(seed, fault_seed, intensity)``
and fault sets are nested across intensities (see
:mod:`repro.faults.schedule`), so the makespan curve degrades monotonically
by construction and the whole sweep is reproducible run to run.  Intensity
``0.0`` is the genuine fault-free baseline — the run's config carries the
default disabled :class:`FaultSpec`, sharing cache entries with every other
fault-free experiment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..common.config import FaultSpec, dgx_h100_config
from ..llm.models import LLAMA_7B
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, sublayer_for

INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)
SYSTEMS = ("CAIS", "TP-NVLS", "CoCoNet")

#: Resilience counters surfaced per cell (all default 0 when absent).
COUNTERS = ("faults.retries", "faults.nvls_fallbacks",
            "faults.messages_dropped", "faults.plane_failures")


def fault_spec_for(intensity: float, fault_seed: int = 0) -> FaultSpec:
    """The sweep's spec at one intensity; 0.0 is the disabled baseline."""
    if intensity <= 0.0:
        return FaultSpec()
    return FaultSpec(enabled=True, intensity=intensity,
                     fault_seed=fault_seed)


def run(scale: Scale = DEFAULT, which: str = "L1",
        intensities: Sequence[float] = INTENSITIES, fault_seed: int = 0,
        ctx: Optional[ExecContext] = None
        ) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Returns {system: {intensity: {metric: value}}}.

    Metrics per cell: ``makespan_ns`` plus the :data:`COUNTERS`.
    """
    # This sweep owns its fault specs, including the intensity-0 fault-free
    # baseline; an ambient --faults override must not reach into it.
    if ctx is not None and ctx.fault_spec is not None:
        ctx = replace(ctx, fault_spec=None)
    model = scale.apply(LLAMA_7B)
    cfg = dgx_h100_config()
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for intensity in intensities:
        fcfg = cfg.with_faults(fault_spec_for(intensity, fault_seed))
        for system in SYSTEMS:
            graph = sublayer_for(model, cfg.num_gpus, system, which)
            tasks.append(SimTask(system=system, graphs=(graph,),
                                 config=fcfg, scale=scale))
            keys.append((system, intensity))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[float, Dict[str, float]]] = {s: {} for s in SYSTEMS}
    for (system, intensity), res in zip(keys, summaries):
        details = dict(res.details)
        cell = {"makespan_ns": res.makespan_ns}
        for name in COUNTERS:
            cell[name] = details.get(name, 0.0)
        out[system][intensity] = cell
    return out


def slowdowns(results: Dict[str, Dict[float, Dict[str, float]]]
              ) -> Dict[str, Dict[float, float]]:
    """Makespan normalized to each system's own fault-free baseline."""
    out: Dict[str, Dict[float, float]] = {}
    for system, row in results.items():
        base = row[min(row)]["makespan_ns"]
        out[system] = {i: (cell["makespan_ns"] / base if base > 0 else 0.0)
                       for i, cell in row.items()}
    return out


def format_table(results: Dict[str, Dict[float, Dict[str, float]]]) -> str:
    norm = slowdowns(results)
    intensities = sorted(next(iter(results.values())))
    rows = [[s] + [norm[s][i] for i in intensities] for s in results]
    head = ("### Fig. 19: slowdown vs fault intensity "
            "(normalized to each system's fault-free run)\n" +
            markdown_table(["system"] + [f"x={i:g}" for i in intensities],
                           rows))
    counter_rows = []
    for system in results:
        worst = results[system][max(intensities)]
        counter_rows.append(
            [system] + [int(worst[name]) for name in COUNTERS])
    tail = ("\n\n### Resilience counters at peak intensity\n" +
            markdown_table(
                ["system"] + [name.split(".", 1)[1] for name in COUNTERS],
                counter_rows))
    return head + tail


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
