"""Content-addressed simulation-result cache.

Every ``run_system()`` call in the experiment harness is a *pure function*
of its inputs: the simulator is deterministic for a fixed master seed
(PR 1's byte-identity tests pin this down), and each run builds a fresh
engine.  That makes simulation results safe to reuse: two tasks with the
same (system + kwargs, graph structure, :class:`SystemConfig`,
:class:`TilingConfig`/scale, seed) fingerprint *must* produce the same
:class:`~repro.experiments.parallel.RunSummary`, so the harness never has
to simulate the same run twice — across figures (fig11/fig15/fig16 share
baseline runs) or across invocations (the on-disk layer).

The fingerprint is the SHA-256 of a canonical JSON rendering of the task
payload.  Anything that can change a simulation outcome must be in the
payload; anything that cannot (how many utilization windows a figure asks
the summary to pre-compute) must stay out, so figures share entries — see
:func:`repro.experiments.parallel.summary_satisfies` for the summary-shape
check done at lookup time instead.

The on-disk layer lives under ``<root>/<CACHE_SCHEMA>/`` (default root
``.repro_cache/``); bumping :data:`CACHE_SCHEMA` when the summary format
or the simulation model changes invalidates stale entries wholesale.
Corrupt or unreadable entries are treated as misses, never as errors.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bump on any change to the RunSummary schema *or* to the simulation
#: model's observable behaviour — on-disk entries from older schemas are
#: simply never looked up again.
CACHE_SCHEMA = "v5"   # v5: SimTask grew the fleet replica field and
                      # RunSummary the per-request stats rows — v4 entries
                      # predate both and are never consulted again
                      # (v4: ServingSpec grew resilience fields)


def canonical(value: Any) -> Any:
    """Reduce ``value`` to deterministic JSON-serializable primitives.

    Supports the types that appear in task payloads: scalars, strings,
    enums, dataclasses (by field), mappings, and iterables (frozensets are
    sorted so iteration order cannot leak into the fingerprint).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (frozenset, set)):
        return sorted(canonical(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    raise TypeError(f"cannot canonicalize {type(value).__name__} "
                    f"for cache fingerprinting: {value!r}")


def fingerprint(payload: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``payload``."""
    blob = json.dumps(canonical(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class SimCache:
    """Two-level (memory + disk) store of summary dicts by fingerprint.

    ``root=None`` keeps the cache purely in-memory (one process
    lifetime); otherwise entries persist under ``root/CACHE_SCHEMA/`` as
    one JSON file per fingerprint, written atomically so a killed run
    never leaves a half-written entry behind.
    """

    def __init__(self, root: Optional[str] = ".repro_cache"):
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._root: Optional[Path] = (
            Path(root) / CACHE_SCHEMA if root is not None else None)

    @property
    def root(self) -> Optional[Path]:
        """Directory of the on-disk layer (None when memory-only)."""
        return self._root

    def _path(self, fp: str) -> Path:
        assert self._root is not None
        return self._root / fp[:2] / f"{fp}.json"

    def lookup(self, fp: str) -> Optional[Dict[str, Any]]:
        """The stored summary dict for ``fp``, or None on a miss."""
        hit = self._memory.get(fp)
        if hit is not None:
            return hit
        if self._root is None:
            return None
        try:
            with open(self._path(fp)) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        self._memory[fp] = payload
        return payload

    def store(self, fp: str, summary: Dict[str, Any]) -> None:
        """Record ``summary`` under ``fp`` in memory and (atomically) on
        disk.  Disk failures are swallowed — the cache is an accelerator,
        never a correctness dependency."""
        self._memory[fp] = summary
        if self._root is None:
            return
        path = self._path(fp)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as fh:
                json.dump(summary, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._memory)


# ---------------------------------------------------------------------------
# Introspection: ``python -m repro cache``
# ---------------------------------------------------------------------------

def scan_cache(root: str = ".repro_cache") -> List[Dict[str, Any]]:
    """Per-schema inventory of an on-disk cache root.

    One row per ``<root>/<schema>/`` directory: entry count, total bytes,
    age of the newest entry, and whether the schema is stale (anything
    other than the current :data:`CACHE_SCHEMA`).  Unreadable entries
    still count toward size — stale junk is exactly what ``--gc`` is for.
    """
    base = Path(root)
    rows: List[Dict[str, Any]] = []
    if not base.is_dir():
        return rows
    for schema_dir in sorted(p for p in base.iterdir() if p.is_dir()):
        entries = 0
        total_bytes = 0
        newest = 0.0
        for path in schema_dir.rglob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries += 1
            total_bytes += stat.st_size
            newest = max(newest, stat.st_mtime)
        rows.append({
            "schema": schema_dir.name,
            "stale": schema_dir.name != CACHE_SCHEMA,
            "entries": entries,
            "bytes": total_bytes,
            "newest_age_s": max(0.0, time.time() - newest) if entries
            else None,
        })
    return rows


def gc_stale(root: str = ".repro_cache") -> List[str]:
    """Delete every stale-schema directory under ``root``; returns the
    schema names evicted.  The current schema's entries are never
    touched — they are content-addressed and individually cheap, so age
    alone is no reason to evict them."""
    evicted: List[str] = []
    for row in scan_cache(root):
        if not row["stale"]:
            continue
        shutil.rmtree(Path(root) / row["schema"], ignore_errors=True)
        evicted.append(row["schema"])
    return evicted


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{n:,d} B"
        n /= 1024
    return f"{n:,.1f} GiB"   # pragma: no cover - loop always returns


def main(argv=None) -> int:
    """``python -m repro cache`` — inspect / garbage-collect the cache."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="list on-disk simulation-cache entries by schema; "
                    "--gc evicts stale-schema directories")
    parser.add_argument("--dir", default=".repro_cache", metavar="DIR",
                        help="cache root (default: %(default)s)")
    parser.add_argument("--gc", action="store_true",
                        help="delete stale-schema directories")
    parser.add_argument("--json", action="store_true",
                        help="emit the inventory as JSON")
    args = parser.parse_args(argv)

    rows = scan_cache(args.dir)
    if args.json:
        print(json.dumps(rows, sort_keys=True, separators=(",", ":")))
    elif not rows:
        print(f"cache at {args.dir}: empty (no schema directories)")
    else:
        from .runner import markdown_table
        print(f"### repro cache — {args.dir} (current schema "
              f"{CACHE_SCHEMA})")
        print(markdown_table(
            ["schema", "status", "entries", "size", "newest entry"],
            [[r["schema"],
              "stale" if r["stale"] else "current",
              r["entries"],
              _fmt_bytes(r["bytes"]),
              (f"{r['newest_age_s']:,.0f} s ago"
               if r["newest_age_s"] is not None else "-")]
             for r in rows]))
    if args.gc:
        evicted = gc_stale(args.dir)
        if evicted:
            print(f"evicted stale schema(s): {', '.join(evicted)}")
        else:
            print("nothing stale to evict")
    return 0


if __name__ == "__main__":   # pragma: no cover - manual entry point
    import sys
    sys.exit(main())
