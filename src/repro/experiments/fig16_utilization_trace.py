"""Fig. 16 — bandwidth utilization over time (L2 of LLaMA-7B).

A windowed utilization time series of the fabric for CAIS-Base,
CAIS-Partial and full CAIS.  The paper's qualitative claims: full CAIS
sustains near-peak utilization in steady state, CAIS-Partial dips under
contention (no traffic control), and CAIS-Base alternates between
saturated and idle phases (global barriers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.config import dgx_h100_config
from ..llm.models import TABLE_I
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, run_system, sublayer_for

CONFIGS = ("CAIS-Base", "CAIS-Partial", "CAIS")


def run(scale: Scale = DEFAULT, model_name: str = "LLaMA-7B",
        which: str = "L2", windows: int = 24,
        ctx: Optional[ExecContext] = None,
        ) -> Dict[str, List[Tuple[float, float]]]:
    """Returns {config: [(window_center_us, avg_utilization)]}."""
    cfg = dgx_h100_config()
    model = scale.apply(TABLE_I[model_name])
    tasks = [SimTask(system=system,
                     graphs=(sublayer_for(model, cfg.num_gpus, system,
                                          which),),
                     config=cfg, scale=scale,
                     utilization_windows=windows)
             for system in CONFIGS]
    summaries = run_matrix(tasks, ctx)
    return {system: list(res.utilization_series or ())
            for system, res in zip(CONFIGS, summaries)}


def steady_state_stats(series: List[Tuple[float, float]]) -> Dict[str, float]:
    """Mean and dip depth over the middle half of the run."""
    n = len(series)
    mid = [u for _, u in series[n // 4: 3 * n // 4]]
    return {"mean": sum(mid) / len(mid), "min": min(mid), "max": max(mid)}


def format_table(results: Dict[str, List[Tuple[float, float]]]) -> str:
    rows = []
    for system, series in results.items():
        stats = steady_state_stats(series)
        rows.append([system, stats["mean"], stats["min"], stats["max"]])
    table = markdown_table(
        ["config", "steady-state mean", "min", "max"], rows)
    traces = "\n".join(
        f"- {system}: " + " ".join(f"{u:.2f}" for _, u in series)
        for system, series in results.items())
    return ("### Fig. 16: utilization over time (L2, windowed)\n" + table +
            "\n\nTraces (per-window utilization):\n" + traces)


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
