"""Fig. 22 — fleet serving: goodput and SLO attainment vs offered load.

Not a figure from the paper: the paper evaluates one TP group at a time.
This experiment serves the fig20 request distribution through a *fleet*
of TP replicas behind the deterministic router of
:mod:`repro.llm.fleet`, sweeping offered load (as a fraction of the
stream's superset arrival rate) and comparing CAIS against the NVLS and
CoCoNet baselines on fleet goodput, SLO attainment, and shed rate.  One
extra row runs CAIS with disaggregated prefill/decode pools, where the
KV handoff between pools is charged as explicit fabric traffic.

Each replica is one independent simulation (``SimTask.replica``), fanned
out through :func:`repro.experiments.parallel.run_matrix` — cacheable per
replica and byte-identical across ``--jobs`` settings, because the
router's plan is a pure function of the :class:`FleetSpec` and the merge
is in task order.  The CI fleet-determinism job diffs exactly this
output.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import dgx_h100_config
from ..llm.fleet import (
    FleetResult,
    FleetSpec,
    ReplicaOutcome,
    ReplicaSpec,
    aggregate_fleet,
    decode_request_stats,
    plan_decode,
    plan_fleet,
)
from .fig20_serving import spec_for
from .parallel import ExecContext, RunSummary, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table

#: CAIS against the strongest barrier (NVLS) baselines and CoCoNet; the
#: FuseLib column adds nothing at fleet granularity (it tracks CoCoNet).
SYSTEMS = ("TP-NVLS", "SP-NVLS", "CoCoNet", "CAIS")

#: Offered load as a fraction of the stream's superset arrival rate
#: (1.0 = every candidate arrival; the thinned-Poisson generator makes
#: higher loads strict supersets of lower ones).
LOADS = (0.25, 0.5, 1.0)

#: Fleet-wide TTFT SLO driving both the shed admission gate on every
#: replica and the attainment/goodput columns.
SLO_TTFT_MS = 3.0

REPLICAS = 4


def fleet_spec_for(scale: Scale, load: float, seed: int = 2026, *,
                   replicas: int = REPLICAS,
                   policy: str = "round-robin",
                   prefill_replicas: int = 0) -> FleetSpec:
    """The experiment's fleet workload at one scale and offered load.

    The per-replica serving knobs are fig20's, with SLO-aware shed
    admission armed fleet-wide (PR 8's controller, running independently
    on every replica) so overload shows up as shed requests instead of
    an unbounded queue."""
    base = spec_for(scale, seed)
    serving = replace(base,
                      arrival_rate_rps=base.max_arrival_rate_rps * load,
                      admission_policy="shed",
                      slo_ttft_ms=SLO_TTFT_MS)
    return FleetSpec(serving=serving, replicas=replicas, policy=policy,
                     prefill_replicas=prefill_replicas)


def _outcome(rs: ReplicaSpec, summary: RunSummary) -> ReplicaOutcome:
    return ReplicaOutcome(
        role=rs.role, index=rs.index, makespan_ns=summary.makespan_ns,
        details=dict(summary.details),
        stats=decode_request_stats(summary.request_stats or ()))


def run_fleet(system: str, fleet: FleetSpec, *,
              config=None, scale: Scale = DEFAULT, model=None,
              ctx: Optional[ExecContext] = None,
              kwargs: Sequence[Tuple[str, object]] = ()) -> FleetResult:
    """Execute one fleet run: plan, fan replicas out, aggregate.

    Disaggregated fleets run two matrix waves — the prefill pool first,
    then the decode pool on the handoff-delayed warm stream the prefill
    outcomes imply.  The epoch-batched router makes both plans pure
    functions of the spec and stage-1 results, so the whole run is
    deterministic regardless of worker count."""
    plan = plan_fleet(fleet, model=model)
    cfg = config if config is not None else dgx_h100_config()

    def tasks_for(specs: Sequence[ReplicaSpec]) -> List[SimTask]:
        return [SimTask(system=system, graphs=(), config=cfg, scale=scale,
                        kwargs=tuple(kwargs), replica=rs) for rs in specs]

    outcomes = [_outcome(rs, summary) for rs, summary in
                zip(plan.stage1, run_matrix(tasks_for(plan.stage1), ctx))]
    if fleet.disaggregated:
        prefill_stats = [s for o in outcomes for s in o.stats]
        stage2 = plan_decode(plan, prefill_stats)
        outcomes += [_outcome(rs, summary) for rs, summary in
                     zip(stage2, run_matrix(tasks_for(stage2), ctx))]
    return aggregate_fleet(plan, outcomes)


def run(scale: Scale = DEFAULT, seed: int = 2026,
        systems: Sequence[str] = SYSTEMS,
        loads: Sequence[float] = LOADS,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[str, float]]:
    """Returns {row label: fleet details} over shared request streams.

    Rows are ``{system} @{load}`` for the combined-replica sweep, plus a
    ``{system} disagg @{load}`` row for CAIS at peak load with a 2+2
    prefill/decode split."""
    out: Dict[str, Dict[str, float]] = {}
    for system in systems:
        for load in loads:
            fleet = fleet_spec_for(scale, load, seed)
            result = run_fleet(system, fleet, scale=scale, ctx=ctx)
            out[f"{system} @{load:.2f}"] = result.details()
    disagg = fleet_spec_for(scale, max(loads), seed, prefill_replicas=2)
    result = run_fleet("CAIS", disagg, scale=scale, ctx=ctx)
    out[f"CAIS disagg @{max(loads):.2f}"] = result.details()
    return out


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for label, cell in results.items():
        rows.append([
            label,
            cell.get("fleet.goodput_tokens_per_s", 0.0),
            f"{cell.get('fleet.slo_attainment', 0.0):.1%}",
            cell["fleet.tokens_per_s"],
            cell["fleet.ttft_p95_ns"] / 1e6,
            int(cell["fleet.offered"]),
            int(cell["fleet.shed"]),
            f"{cell['fleet.handoff_bytes'] / 1e6:.1f}",
        ])
    head = (f"### Fig. 22: fleet serving — {REPLICAS} replicas, "
            f"TTFT SLO {SLO_TTFT_MS:g} ms, shed admission\n" +
            markdown_table(
                ["fleet @load", "goodput tok/s", "SLO att.", "tokens/s",
                 "TTFT p95 (ms)", "offered", "shed", "handoff MB"],
                rows))
    peak = f"@{max(LOADS):.2f}"
    cais = results.get(f"CAIS {peak}", {}).get(
        "fleet.goodput_tokens_per_s", 0.0)
    others = {label: cell.get("fleet.goodput_tokens_per_s", 0.0)
              for label, cell in results.items()
              if label.endswith(peak) and not label.startswith("CAIS")}
    if cais > 0 and others and max(others.values()) > 0:
        best = max(others.values())
        tail = (f"\n\nAt peak load CAIS sustains {cais:,.0f} good "
                f"tokens/s — {cais / best:.2f}x the best baseline fleet "
                f"({max(others, key=others.get).split(' @')[0]}).")
    else:
        tail = ""
    return head + tail


def format_fleet_summary(result: FleetResult) -> str:
    """Terminal summary for ``python -m repro --workload fleet``."""
    fleet = result.fleet
    pools = (f"{fleet.prefill_replicas} prefill + "
             f"{fleet.decode_replicas} decode"
             if fleet.disaggregated else f"{fleet.replicas} replicas")
    lines = [f"fleet: {pools}, policy {fleet.policy}, "
             f"{result.offered} offered -> {len(result.stats)} finished, "
             f"{len(result.shed)} shed -> "
             f"{result.tokens_per_s:,.0f} tokens/s, "
             f"TTFT p95 {result.ttft_quantile_ns(0.95) / 1e6:.2f} ms"]
    if fleet.serving.slo_ttft_ms is not None:
        slo_ns = fleet.serving.slo_ttft_ms * 1e6
        lines.append(
            f"SLO (TTFT <= {fleet.serving.slo_ttft_ms:g} ms): "
            f"{result.slo_attainment(slo_ns):.1%} attainment, goodput "
            f"{result.goodput_tokens_per_s(slo_ns):,.0f} tokens/s")
    if fleet.disaggregated:
        lines.append(
            f"handoff: {len([s for s in result.stats if s.handoff_bytes])}"
            f" transfers, {result.handoff_bytes / 1e6:.1f} MB, "
            f"{result.handoff_ns_total / 1e6:.2f} ms total fabric time")
    per = ["  {role}[{idx}]: {reqs} reqs, {tok} tokens, "
           "{it} iters, kv peak {kv:.1f} MB".format(
               role=row["role"], idx=int(row["index"]),
               reqs=int(row["requests"]), tok=int(row["tokens"]),
               it=int(row["iterations"]),
               kv=row["kv_peak_bytes"] / 1e6)
           for row in result.per_replica]
    return "\n".join(lines + per)


def replica_zero_report(system: str = "CAIS", scale: Scale = DEFAULT,
                        seed: int = 2026,
                        window_ns: float = 100_000.0) -> Dict:
    """The ``--report`` artifact for fig22: replica 0's run under sinks.

    Reports are per-simulation (the sinks instrument one engine), so the
    fleet's report drills into its first replica's stream at peak load —
    the same requests that replica serves inside the full fig22 run, by
    the determinism of the router plan."""
    from .. import obs
    from ..llm.serving import simulate_serving
    from ..systems import make_system
    from .report import build_report
    from .runner import style_for

    fleet = fleet_spec_for(scale, max(LOADS), seed)
    plan = plan_fleet(fleet)
    rs = plan.stage1[0]
    cfg = dgx_h100_config(seed=seed)
    prev_ts = obs.current_timeseries()
    prev_rl = obs.current_request_log()
    prev_cz = obs.current_causality()
    obs.install(timeseries=obs.TimeSeriesSink(window_ns=window_ns),
                request_log=obs.RequestLog(),
                causality=obs.CausalityRecorder())
    try:
        instance = make_system(system, cfg, tiling=scale.tiling,
                               chunk_bytes=scale.coll_chunk_bytes)
        serving = simulate_serving(instance, rs.spec,
                                   style=style_for(system),
                                   requests=rs.to_requests())
    finally:
        obs.install(timeseries=prev_ts, request_log=prev_rl,
                    causality=prev_cz)
    return build_report(
        serving, slo_ttft_ms=SLO_TTFT_MS,
        extra_run={"system": system, "model": fleet.serving.model,
                   "seed": seed, "scale": scale.tokens_fraction,
                   "workload": "fleet", "role": rs.role,
                   "replica": rs.index, "replicas": fleet.replicas,
                   "policy": fleet.policy})


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
