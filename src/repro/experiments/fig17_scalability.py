"""Fig. 17 — scalability with increasing GPU count.

CAIS and CoCoNet-NVLS at 8/16/32 GPUs on LLaMA-7B with the hidden
dimension scaled proportionally to the GPU count (so per-GPU compute stays
constant, as in the paper).  The metric is per-GPU computation throughput
normalized to 8-GPU CAIS; the paper reports under a 5% drop at 32 GPUs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..common.config import dgx_h100_config
from ..llm.models import LLAMA_7B
from .parallel import ExecContext, SimTask, run_matrix
from .runner import DEFAULT, Scale, markdown_table, run_system, sublayer_for

GPU_COUNTS = (8, 16, 32)
SYSTEMS = ("CAIS", "CoCoNet-NVLS")


def scaled_model(gpus: int, scale: Scale):
    """Hidden dims scaled with the GPU count (constant per-GPU shards)."""
    factor = gpus // 8
    model = replace(LLAMA_7B,
                    name=f"LLaMA-7B-x{factor}",
                    hidden=LLAMA_7B.hidden * factor,
                    ffn_hidden=LLAMA_7B.ffn_hidden * factor,
                    heads=LLAMA_7B.heads * factor)
    model = scale.apply(model)
    # Keep at least two 128-row blocks per shard at every GPU count, and
    # seq a multiple of the GPU count so tokens shard evenly.
    min_seq = -(-2 * 128 * gpus // model.batch)
    seq = max(model.seq_len, min_seq)
    seq = -(-seq // gpus) * gpus
    if seq != model.seq_len:
        model = replace(model, seq_len=seq)
    return model


def run(scale: Scale = DEFAULT, which: str = "L1",
        gpu_counts: Sequence[int] = GPU_COUNTS,
        ctx: Optional[ExecContext] = None) -> Dict[str, Dict[int, float]]:
    """Returns {system: {gpus: per-GPU throughput (flops/ns)}}."""
    tasks: List[SimTask] = []
    keys: List[tuple] = []
    for gpus in gpu_counts:
        cfg = dgx_h100_config(num_gpus=gpus)
        model = scaled_model(gpus, scale)
        for system in SYSTEMS:
            graph = sublayer_for(model, gpus, system, which)
            tasks.append(SimTask(system=system, graphs=(graph,),
                                 config=cfg, scale=scale))
            keys.append((system, gpus, graph.total_flops()))
    summaries = run_matrix(tasks, ctx)
    out: Dict[str, Dict[int, float]] = {s: {} for s in SYSTEMS}
    for (system, gpus, flops), res in zip(keys, summaries):
        # Per-GPU arithmetic throughput over the run.
        out[system][gpus] = flops / res.makespan_ns
    return out


def normalized(results: Dict[str, Dict[int, float]]) -> Dict[str, Dict[int, float]]:
    base = results["CAIS"][min(results["CAIS"])]
    return {s: {g: v / base for g, v in row.items()}
            for s, row in results.items()}


def format_table(results: Dict[str, Dict[int, float]]) -> str:
    norm = normalized(results)
    gpu_counts = sorted(next(iter(results.values())))
    rows = [[s] + [norm[s][g] for g in gpu_counts] for s in results]
    return ("### Fig. 17: per-GPU throughput vs GPU count "
            "(normalized to 8-GPU CAIS)\n" +
            markdown_table(["system"] + [f"{g} GPUs" for g in gpu_counts],
                           rows))


if __name__ == "__main__":   # pragma: no cover - manual entry point
    print(format_table(run()))
