"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments fig2            # one experiment
    python -m repro.experiments fig11 --quick   # smaller workload scale
    python -m repro.experiments all --out EXPERIMENTS.generated.md

``--quick`` runs at 1/8 of the models' token count, the default at 1/4,
``--full`` unscaled (hours in pure Python; see DESIGN.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    fig02_scaling,
    sensitivity,
    fig11_end_to_end,
    fig12_sublayer,
    fig13_merge_table,
    fig14_table_sweep,
    fig15_bandwidth,
    fig16_utilization_trace,
    fig17_scalability,
    fig18_nvls_validation,
    table2_scaling_validation,
)
from ..hw.area import overhead_report
from .runner import DEFAULT, FULL, QUICK, Scale


def _fig2(scale: Scale) -> str:
    return fig02_scaling.format_table(fig02_scaling.run(scale))


def _fig11(scale: Scale) -> str:
    return fig11_end_to_end.format_table(fig11_end_to_end.run(scale))


def _fig12(scale: Scale) -> str:
    return fig12_sublayer.format_table(fig12_sublayer.run(scale))


def _fig13(scale: Scale) -> str:
    return fig13_merge_table.format_table(
        fig13_merge_table.run_table_size(scale),
        fig13_merge_table.run_wait_ablation(scale))


def _fig14(scale: Scale) -> str:
    return fig14_table_sweep.format_table(fig14_table_sweep.run(scale))


def _fig15(scale: Scale) -> str:
    return fig15_bandwidth.format_table(fig15_bandwidth.run(scale))


def _fig16(scale: Scale) -> str:
    return fig16_utilization_trace.format_table(
        fig16_utilization_trace.run(scale))


def _fig17(scale: Scale) -> str:
    return fig17_scalability.format_table(fig17_scalability.run(scale))


def _fig18(scale: Scale) -> str:
    return fig18_nvls_validation.format_table(fig18_nvls_validation.run())


def _sensitivity(scale: Scale) -> str:
    return sensitivity.format_tables(sensitivity.bandwidth_sweep(scale),
                                     sensitivity.seed_sweep(scale))


def _table2(scale: Scale) -> str:
    return table2_scaling_validation.format_table(
        table2_scaling_validation.run(scale))


def _hw(scale: Scale) -> str:
    return "### Section V-D: hardware overhead\n```\n" + \
        overhead_report() + "\n```"


EXPERIMENTS = {
    "fig2": _fig2,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
    "sensitivity": _sensitivity,
    "table2": _table2,
    "hw": _hw,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true",
                       help="1/8-token workloads (fastest)")
    group.add_argument("--full", action="store_true",
                       help="unscaled Table-I workloads (slow)")
    parser.add_argument("--out", default=None,
                        help="also append the output to this file")
    args = parser.parse_args(argv)

    scale = QUICK if args.quick else (FULL if args.full else DEFAULT)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    blocks = []
    for name in names:
        start = time.time()
        text = EXPERIMENTS[name](scale)
        elapsed = time.time() - start
        block = f"{text}\n\n_(regenerated in {elapsed:.1f}s at scale " \
                f"{scale.tokens_fraction})_"
        print(block)
        print()
        blocks.append(block)
    if args.out:
        with open(args.out, "a") as fh:
            fh.write("\n\n".join(blocks) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
