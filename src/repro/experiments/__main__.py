"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments fig2            # one experiment
    python -m repro.experiments fig11 --quick   # smaller workload scale
    python -m repro.experiments all --out EXPERIMENTS.generated.md
    python -m repro.experiments all --quick --jobs 8   # fan out over cores
    python -m repro.experiments all --no-cache         # force re-simulation

``--quick`` runs at 1/8 of the models' token count, the default at 1/4,
``--full`` unscaled (hours in pure Python; see DESIGN.md).

Every experiment is a matrix of independent simulations; ``--jobs N``
(default: all cores) fans them across worker processes and the
content-addressed result cache under ``--cache-dir`` (default
``.repro_cache/``) reuses any run already simulated — across figures and
across invocations.  ``--jobs 1 --no-cache`` is the original serial path,
byte-for-byte.  ``--metrics`` prints the observability registry snapshot
(cache hits/misses, per-task wall-time histogram) after the tables.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import (
    fig02_scaling,
    sensitivity,
    fig11_end_to_end,
    fig12_sublayer,
    fig13_merge_table,
    fig14_table_sweep,
    fig15_bandwidth,
    fig16_utilization_trace,
    fig17_scalability,
    fig18_nvls_validation,
    fig19_resilience,
    fig20_serving,
    fig21_faulted_serving,
    fig22_fleet,
    table2_scaling_validation,
)
from .. import obs
from ..common import fastpath
from ..common.config import FaultSpec
from ..hw.area import overhead_report
from .cache import SimCache
from .parallel import ExecContext
from .runner import DEFAULT, FULL, QUICK, Scale


def _fig2(scale: Scale, ctx: ExecContext) -> str:
    return fig02_scaling.format_table(fig02_scaling.run(scale))


def _fig11(scale: Scale, ctx: ExecContext) -> str:
    return fig11_end_to_end.format_table(
        fig11_end_to_end.run(scale, ctx=ctx))


def _fig12(scale: Scale, ctx: ExecContext) -> str:
    return fig12_sublayer.format_table(fig12_sublayer.run(scale, ctx=ctx))


def _fig13(scale: Scale, ctx: ExecContext) -> str:
    return fig13_merge_table.format_table(
        fig13_merge_table.run_table_size(scale, ctx=ctx),
        fig13_merge_table.run_wait_ablation(scale, ctx=ctx))


def _fig14(scale: Scale, ctx: ExecContext) -> str:
    return fig14_table_sweep.format_table(
        fig14_table_sweep.run(scale, ctx=ctx))


def _fig15(scale: Scale, ctx: ExecContext) -> str:
    return fig15_bandwidth.format_table(
        fig15_bandwidth.run(scale, ctx=ctx))


def _fig16(scale: Scale, ctx: ExecContext) -> str:
    return fig16_utilization_trace.format_table(
        fig16_utilization_trace.run(scale, ctx=ctx))


def _fig17(scale: Scale, ctx: ExecContext) -> str:
    return fig17_scalability.format_table(
        fig17_scalability.run(scale, ctx=ctx))


def _fig18(scale: Scale, ctx: ExecContext) -> str:
    return fig18_nvls_validation.format_table(fig18_nvls_validation.run())


def _fig19(scale: Scale, ctx: ExecContext) -> str:
    seed = (ctx.fault_spec.fault_seed
            if ctx.fault_spec is not None else 0)
    return fig19_resilience.format_table(
        fig19_resilience.run(scale, fault_seed=seed, ctx=ctx))


def _fig20(scale: Scale, ctx: ExecContext) -> str:
    return fig20_serving.format_table(fig20_serving.run(scale, ctx=ctx))


def _fig21(scale: Scale, ctx: ExecContext) -> str:
    seed = (ctx.fault_spec.fault_seed
            if ctx.fault_spec is not None else 0)
    return fig21_faulted_serving.format_table(
        fig21_faulted_serving.run(scale, fault_seed=seed, ctx=ctx))


def _fig22(scale: Scale, ctx: ExecContext) -> str:
    return fig22_fleet.format_table(fig22_fleet.run(scale, ctx=ctx))


def _sensitivity(scale: Scale, ctx: ExecContext) -> str:
    return sensitivity.format_tables(
        sensitivity.bandwidth_sweep(scale, ctx=ctx),
        sensitivity.seed_sweep(scale, ctx=ctx))


def _table2(scale: Scale, ctx: ExecContext) -> str:
    return table2_scaling_validation.format_table(
        table2_scaling_validation.run(scale, ctx=ctx))


def _hw(scale: Scale, ctx: ExecContext) -> str:
    return "### Section V-D: hardware overhead\n```\n" + \
        overhead_report() + "\n```"


EXPERIMENTS = {
    "fig2": _fig2,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
    "fig19": _fig19,
    "fig20_serving": _fig20,
    "fig21": _fig21,
    "fig22": _fig22,
    "sensitivity": _sensitivity,
    "table2": _table2,
    "hw": _hw,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true",
                       help="1/8-token workloads (fastest)")
    group.add_argument("--full", action="store_true",
                       help="unscaled Table-I workloads (slow)")
    parser.add_argument("--out", default=None,
                        help="also append the output to this file")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent simulations "
                             "(default: all cores; 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-simulate, never reuse results")
    parser.add_argument("--cache-dir", default=".repro_cache",
                        metavar="DIR",
                        help="simulation-reuse cache location "
                             "(default: %(default)s)")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="force the reference event path everywhere "
                             "(disables every engine fast-path layer; the "
                             "byte-identity baseline, see DESIGN.md §11)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics snapshot (cache hits/"
                             "misses, task wall times) after the tables")
    parser.add_argument("--faults", action="store_true",
                        help="inject faults into every simulation that is "
                             "not already faulted (see README, 'Fault "
                             "injection & resilience')")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="S",
                        help="fault-schedule seed (default: %(default)s)")
    parser.add_argument("--fault-intensity", type=float, default=1.0,
                        metavar="X",
                        help="fault intensity in [0,1] "
                             "(default: %(default)s)")
    parser.add_argument("--ledger", nargs="?", const=".repro_ledger",
                        default=None, metavar="DIR",
                        help="append one run record per completed "
                             "simulation to this ledger directory "
                             "(default when given bare: %(const)s; see "
                             "`python -m repro ledger`)")
    parser.add_argument("--progress", action="store_true",
                        help="live stderr progress board for matrix "
                             "sweeps (done/total, cache hit rate, ETA)")
    parser.add_argument("--meta-trace", metavar="PATH", default=None,
                        help="write a Perfetto trace of the matrix "
                             "runner itself (one track per worker, one "
                             "span per task) to PATH")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="also write a serving run-report JSON "
                             "(fig20_serving: fault-free; fig19: faulted "
                             "at peak intensity; fig21: faulted with "
                             "admission control and retry budgets; fig22: "
                             "the fleet's replica-0 stream; see "
                             "`python -m repro report`)")
    args = parser.parse_args(argv)
    if args.report and args.experiment not in ("fig19", "fig20_serving",
                                               "fig21", "fig22"):
        parser.error("--report is only meaningful for fig19, "
                     "fig20_serving, fig21 and fig22")

    if args.no_fastpath:
        # The env var (not just set_config) so that pool workers spawned
        # by run_matrix inherit the choice regardless of start method.
        os.environ["REPRO_NO_FASTPATH"] = "1"
        fastpath.disable_all()
    if args.ledger:
        # Same env-var pattern: pool workers inherit the ledger root and
        # append their own records (see obs/ledger.py).
        os.environ[obs.LEDGER_ENV] = args.ledger

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    cache = None if args.no_cache else SimCache(args.cache_dir)
    fault_spec = None
    if args.faults or args.fault_seed or args.fault_intensity != 1.0:
        fault_spec = FaultSpec(enabled=args.faults,
                               intensity=args.fault_intensity,
                               fault_seed=args.fault_seed)
    ctx = ExecContext(jobs=jobs, cache=cache, fault_spec=fault_spec,
                      progress=args.progress, meta_trace=args.meta_trace)

    metrics = obs.MetricsRegistry() if args.metrics else None
    if metrics is not None:
        obs.install(metrics=metrics)

    scale = QUICK if args.quick else (FULL if args.full else DEFAULT)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    blocks = []
    try:
        for name in names:
            start = time.time()
            text = EXPERIMENTS[name](scale, ctx)
            elapsed = time.time() - start
            block = f"{text}\n\n_(regenerated in {elapsed:.1f}s at scale " \
                    f"{scale.tokens_fraction})_"
            print(block)
            print()
            blocks.append(block)
        if args.out:
            with open(args.out, "a") as fh:
                fh.write("\n\n".join(blocks) + "\n")
        if args.report:
            from .report import experiment_report, write_report
            write_report(experiment_report(args.experiment, scale, ctx),
                         args.report)
            print(f"report: {args.report}")
        if metrics is not None:
            print(metrics.to_json())
    finally:
        if metrics is not None:
            obs.reset()
    return 0


if __name__ == "__main__":
    sys.exit(main())
