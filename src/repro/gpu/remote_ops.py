"""Concrete remote memory operations issued by thread blocks.

The CAIS compiler decides *mergeability* symbolically
(:mod:`repro.cais.compiler`); at execution time each TB expands its memory
instructions into the concrete :class:`RemoteOp` list below — one op per
remote chunk it touches.

The ``transport`` selects the protocol family a request travels under, which
is exactly what distinguishes the systems under test:

* ``CAIS`` — the compute-aware ISA (``ld.cais`` / ``red.cais``): requests
  carry the 1-bit CAIS flag and are merged by the switch merge unit.
* ``DIRECT`` — plain remote loads/stores with no in-switch computing
  (LADM and the ring-collective transports).
* ``NVLS`` — the communication-centric ``multimem.red`` push reduction
  (used by T3-NVLS's DMA-based design; loads have no NVLS push analogue,
  which is the paper's central mismatch observation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..interconnect.message import Address


class RemoteOpKind(enum.Enum):
    LOAD = "load"        # read a remote chunk (AG-GEMM's memory semantics)
    REDUCE = "reduce"    # add a partial into a remote chunk (GEMM-RS)


class Transport(enum.Enum):
    CAIS = "cais"
    DIRECT = "direct"
    NVLS = "nvls"


@dataclass(frozen=True)
class RemoteOp:
    """One chunk-granular remote access by one TB."""

    kind: RemoteOpKind
    address: Address
    chunk_bytes: int
    transport: Transport = Transport.CAIS
    #: GPUs expected to issue the same request (merge-session size).
    expected: int = 1
    #: Functional payload contributed by a REDUCE (tests only).
    payload: Optional[object] = None

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive: {self}")
        if self.expected < 1:
            raise ValueError(f"expected must be >= 1: {self}")
        if (self.kind is RemoteOpKind.LOAD and
                self.transport is Transport.NVLS):
            raise ValueError(
                "NVLS has no push-mode load: AG-GEMM loads must use CAIS "
                "or DIRECT transport (the paper's Fig. 1(g) mismatch)")

    @property
    def mergeable(self) -> bool:
        return self.transport is Transport.CAIS
