"""TB-granular GPU model: SMs, thread blocks, kernels, executor."""

from .executor import Executor
from .gpu import DEFAULT_POOL, Gpu
from .kernels import KernelInstance, block_indices, total_tb_time_ns
from .memory import MemoryController
from .remote_ops import RemoteOp, RemoteOpKind, Transport
from .scheduler import DispatchPolicy, FifoPolicy, KeyedPolicy, ShuffledPolicy
from .synchronizer import Synchronizer
from .threadblock import TBState, ThreadBlock

__all__ = [
    "DEFAULT_POOL",
    "DispatchPolicy",
    "Executor",
    "FifoPolicy",
    "Gpu",
    "KernelInstance",
    "KeyedPolicy",
    "MemoryController",
    "RemoteOp",
    "RemoteOpKind",
    "ShuffledPolicy",
    "Synchronizer",
    "TBState",
    "ThreadBlock",
    "Transport",
    "block_indices",
    "total_tb_time_ns",
]
