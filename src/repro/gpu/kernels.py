"""Kernel instances: what the executor launches onto GPUs.

A :class:`KernelInstance` describes one kernel launch replicated across the
tensor-parallel group (TP kernels are symmetric: every GPU runs the same
grid on its own shard).  The remote-access behaviour is supplied as
callables expanding a TB's concrete :class:`~repro.gpu.remote_ops.RemoteOp`
list; the symbolic form the CAIS compiler analyses lives alongside in
``compiled`` (a :class:`~repro.cais.compiler.CompiledKernel`).

Timing model per TB: ``tb_pre_ns`` of compute, then the remote phase (issue
reductions / wait for loads), then ``tb_post_ns`` of compute.  A GEMM
consuming gathered data (AG-GEMM) puts the bulk of its work in ``post``; a
GEMM producing partials for reduction (GEMM-RS) puts it in ``pre``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..cais.compiler import CompiledKernel
from ..common.errors import WorkloadError
from .remote_ops import RemoteOp

#: token identifying a dependency event, e.g. ("rs", addr) — any hashable.
Token = object
RemoteOpsFn = Callable[[int, Tuple[int, ...]], List[RemoteOp]]
DepsFn = Callable[[int, Tuple[int, ...]], List[Token]]

_kernel_ids = itertools.count()


def block_indices(grid: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    """All block indices of a grid, in row-major launch order."""
    if not grid or any(d <= 0 for d in grid):
        raise WorkloadError(f"invalid grid {grid}")
    indices: List[Tuple[int, ...]] = [()]
    for dim in grid:
        indices = [idx + (i,) for idx in indices for i in range(dim)]
    return indices


@dataclass
class KernelInstance:
    """One kernel launch (replicated on every participating GPU)."""

    name: str
    grid: Tuple[int, ...]
    tb_pre_ns: float
    tb_post_ns: float = 0.0
    remote_loads: Optional[RemoteOpsFn] = None
    remote_reduces: Optional[RemoteOpsFn] = None
    tb_deps: Optional[DepsFn] = None
    compiled: Optional[CompiledKernel] = None
    pool: str = "default"
    launch_overhead_ns: float = 0.0
    #: Merging-aware TB ordering chosen by the compiler: the sequence in
    #: which TBs are submitted to the scheduler (defaults to row-major).
    #: Interleaving data-region homes keeps the per-GPU send streams in
    #: step (a GPU whose region is local skips a send; long same-home runs
    #: would let it drift a whole region ahead).
    block_order: Optional[Sequence[Tuple[int, ...]]] = None
    #: CAIS coordination flags, set by the system configuration.
    sync_prelaunch: bool = False
    sync_preaccess: bool = False
    #: Called per (gpu, block_idx) as each TB completes.
    on_tb_complete: Optional[Callable[[int, Tuple[int, ...]], None]] = None
    #: Attribution class for critical-path analysis: "gemm" (tensor-core
    #: matmul work) or "vector" (element-wise/LayerNorm work).
    compute_class: str = "gemm"
    kernel_id: int = field(default_factory=lambda: next(_kernel_ids))

    def __post_init__(self) -> None:
        if self.tb_pre_ns < 0 or self.tb_post_ns < 0:
            raise WorkloadError(f"negative TB time in kernel {self.name}")
        block_indices(self.grid)        # validates the grid

    def num_blocks(self) -> int:
        n = 1
        for d in self.grid:
            n *= d
        return n

    def group_for(self, block_idx: Tuple[int, ...]) -> Optional[int]:
        """TB-group id for a block (None when the kernel is not grouped)."""
        if self.compiled is None:
            return None
        group = self.compiled.group_by_block.get(block_idx)
        return group.group_id if group else None


def total_tb_time_ns(kernel: KernelInstance) -> float:
    """Aggregate single-GPU compute demand of a kernel (no overlap)."""
    return kernel.num_blocks() * (kernel.tb_pre_ns + kernel.tb_post_ns)
