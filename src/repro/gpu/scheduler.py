"""TB dispatch-order policies.

Real GPUs dispatch thread blocks through independent hardware schedulers, so
the dispatch order drifts between GPUs even for identical kernels — the
temporal misalignment that motivates CAIS's TB coordination (Section III-B,
citing the variability study [18]).  :class:`ShuffledPolicy` models that
drift as a bounded local permutation of the ready queue, seeded per GPU.

:class:`KeyedPolicy` dispatches in an explicit priority order; the LADM
baseline uses it to model locality-centric TB placement.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from ..obs import current_causality, current_metrics


def effective_capacity(capacity: int, throttle_fraction: float) -> int:
    """SM-slot capacity surviving an SM-throttle fault window.

    At least one slot always survives — a fully dead GPU is not a fault
    mode the paper's resilience question covers (it asks how much speedup
    *degraded* members cost, not how to run collectives without a member).
    """
    if throttle_fraction >= 1.0:
        return capacity
    return max(1, int(capacity * throttle_fraction))


class DispatchPolicy:
    """Chooses which ready TB a GPU dispatches next."""

    def __init__(self) -> None:
        # Per-policy-class dispatch counters, shared across all GPUs so
        # the snapshot shows how much each strategy actually decided.
        mx = current_metrics()
        self._picks = (mx.counter(f"sched.{type(self).__name__}.picks")
                       if mx.enabled else None)
        self._cz = current_causality()

    def _note_pick(self, tb: Any) -> Any:
        """Account for one dispatch decision; returns ``tb``.

        When causal recording is on, the ambient cause at pick time — the
        event that freed the slot or made the TB ready — is stamped onto
        the TB as its dispatch cause, so ready-queue wait is attributable.
        """
        if self._picks is not None:
            self._picks.inc()
        if self._cz.enabled:
            tb.cz_disp = self._cz.current
        return tb

    def pick(self, queue: List[Any]) -> Any:
        """Remove and return one TB from ``queue`` (must be non-empty)."""
        raise NotImplementedError


class FifoPolicy(DispatchPolicy):
    """Strict submission order — what a fully deterministic scheduler does."""

    def pick(self, queue: List[Any]) -> Any:
        return self._note_pick(queue.pop(0))


class ShuffledPolicy(DispatchPolicy):
    """FIFO with a bounded local shuffle: models hardware scheduler drift.

    The next TB is drawn uniformly from the first ``window`` queued entries,
    using a per-GPU RNG stream, so different GPUs interleave the same kernel
    differently while global progress order is preserved.
    """

    def __init__(self, window: int, rng: np.random.Generator):
        super().__init__()
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.rng = rng

    def pick(self, queue: List[Any]) -> Any:
        bound = min(self.window, len(queue))
        index = int(self.rng.integers(0, bound)) if bound > 1 else 0
        return self._note_pick(queue.pop(index))


class KeyedPolicy(DispatchPolicy):
    """Dispatch the TB minimizing ``key`` (locality-aware scheduling)."""

    def __init__(self, key: Callable[[Any], Any]):
        super().__init__()
        self.key = key

    def pick(self, queue: List[Any]) -> Any:
        best = min(range(len(queue)), key=lambda i: self.key(queue[i]))
        return self._note_pick(queue.pop(best))


class FairSharePolicy(DispatchPolicy):
    """Balance SM slots across concurrently running kernels.

    This implements CAIS's *asymmetric kernel overlapping* (Section
    III-C-2): when a reduction-heavy GEMM-RS and a load-heavy AG-GEMM are
    both ready, dispatching the kernel with the fewest resident TBs
    partitions the SMs between them, so their complementary up/down link
    traffic overlaps instead of serializing.  Within the fairness choice a
    bounded shuffle window preserves the hardware-drift model.
    """

    def __init__(self, gpu: Any, window: int, rng: np.random.Generator):
        super().__init__()
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.gpu = gpu                   # reads gpu.running_per_kernel
        self.window = window
        self.rng = rng

    def pick(self, queue: List[Any]) -> Any:
        bound = min(self.window, len(queue))
        running = self.gpu.running_per_kernel
        best_i = 0
        best_load = None
        for i in range(bound):
            load = running.get(queue[i].kernel.kernel_id, 0)
            if best_load is None or load < best_load:
                best_i, best_load = i, load
        # Shuffle among equally-loaded candidates inside the window.
        ties = [i for i in range(bound)
                if running.get(queue[i].kernel.kernel_id, 0) == best_load]
        if len(ties) > 1:
            best_i = ties[int(self.rng.integers(0, len(ties)))]
        return self._note_pick(queue.pop(best_i))
