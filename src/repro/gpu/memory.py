"""Per-GPU memory controller.

Four responsibilities:

* **Remote chunk cache** — each remote chunk is fetched over the fabric at
  most once per GPU (the L2/HBM landing buffer); concurrent TB requests for
  the same chunk piggyback on the outstanding fetch.
* **Fill service** — answers load requests arriving from switches (CAIS
  merge fills, bypass directs, NVLS gathers) after the HBM access latency.
* **Reduction sink** — accumulates reduced STOREs (full or partial) per
  address and fires completion callbacks once the expected number of
  contributions has landed; this is how downstream TBs learn that a
  ReduceScatter chunk is ready.
* **Store sink** — counts pushed chunks (NVLS multicast AllGather) and fires
  arrival callbacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..common.config import GpuSpec
from ..common.errors import ProtocolError
from ..common.events import Simulator
from ..common.functional import combine_payloads
from ..interconnect.message import Address, Message, Op, gpu_node


class _CacheState(enum.Enum):
    PENDING = "pending"
    READY = "ready"


@dataclass
class _CacheLine:
    state: _CacheState
    waiters: List[Callable[[Any], None]] = field(default_factory=list)
    value: Any = None


@dataclass
class _ReductionSlot:
    expected: int
    contributions: int = 0
    acc: Any = None
    callbacks: List[Callable[[Any], None]] = field(default_factory=list)


class MemoryController:
    """Memory-side message endpoint of one GPU."""

    def __init__(self, sim: Simulator, gpu_index: int, spec: GpuSpec,
                 send: Callable[[Message], None],
                 local_value_fn: Optional[Callable[[Address], Any]] = None):
        self.sim = sim
        self.gpu_index = gpu_index
        self.spec = spec
        self._send = send
        self._local_value_fn = local_value_fn
        self._cache: Dict[Address, _CacheLine] = {}
        self._reductions: Dict[Address, _ReductionSlot] = {}
        self._stored: Dict[Address, int] = {}
        self._store_callbacks: Dict[Address, List[Callable[[Any], None]]] = {}
        self.remote_fetches = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Remote chunk cache (GPU-side issue path)
    # ------------------------------------------------------------------
    def fetch_remote(self, address: Address, chunk_bytes: int,
                     mergeable: bool, expected: int,
                     on_ready: Callable[[Any], None]) -> bool:
        """Request a remote chunk; ``on_ready`` fires when data lands.

        Returns True when a new fabric request was issued (a cache miss),
        False when the call piggybacked on cached or in-flight data.
        """
        line = self._cache.get(address)
        if line is not None:
            if line.state is _CacheState.READY:
                self.cache_hits += 1
                on_ready(line.value)
            else:
                line.waiters.append(on_ready)
            return False
        self._cache[address] = _CacheLine(_CacheState.PENDING,
                                          waiters=[on_ready])
        self.remote_fetches += 1
        op = Op.LD_CAIS_REQ if mergeable else Op.LOAD_REQ
        meta = {"chunk_bytes": chunk_bytes, "expected": expected}
        if not mergeable:
            meta.update(direct=True, requester=self.gpu_index)
        req = Message(op=op, src=gpu_node(self.gpu_index),
                      dst=gpu_node(address.home_gpu), address=address,
                      meta=meta)
        self._send(req)
        return True

    def would_fetch(self, address: Address) -> bool:
        """True if a fetch_remote for ``address`` would issue on the fabric
        (no cached or in-flight line exists)."""
        return address not in self._cache

    def invalidate_cache(self) -> None:
        """Drop all READY lines (between iterations/epochs)."""
        self._cache = {addr: line for addr, line in self._cache.items()
                       if line.state is _CacheState.PENDING}

    def _fill_cache(self, address: Address, value: Any) -> None:
        line = self._cache.get(address)
        if line is None or line.state is _CacheState.READY:
            raise ProtocolError(
                f"GPU {self.gpu_index}: unexpected load response for "
                f"{address}")
        line.state = _CacheState.READY
        line.value = value
        waiters, line.waiters = line.waiters, []
        for cb in waiters:
            cb(value)

    # ------------------------------------------------------------------
    # Reduction sink (home-side completion tracking)
    # ------------------------------------------------------------------
    def expect_reduction(self, address: Address, expected: int,
                         on_complete: Callable[[Any], None]) -> None:
        """Register interest in a chunk's reduction completing locally."""
        slot = self._reductions.get(address)
        if slot is None:
            slot = _ReductionSlot(expected=expected)
            self._reductions[address] = slot
        elif slot.expected < 0:
            # Contributions landed before anyone registered interest.
            slot.expected = expected
        elif slot.expected != expected:
            raise ProtocolError(
                f"reduction {address} expected-count mismatch")
        slot.callbacks.append(on_complete)
        self._maybe_complete_reduction(address, slot)

    def add_local_contribution(self, address: Address,
                               payload: Any = None) -> None:
        """Fold the home GPU's own partial into the chunk (local add)."""
        self._accumulate(address, contributions=1, payload=payload)

    def _accumulate(self, address: Address, contributions: int,
                    payload: Any) -> None:
        slot = self._reductions.get(address)
        if slot is None:
            slot = _ReductionSlot(expected=-1)   # expected set later
            self._reductions[address] = slot
        slot.contributions += contributions
        slot.acc = combine_payloads(slot.acc, payload)
        self._maybe_complete_reduction(address, slot)

    def _maybe_complete_reduction(self, address: Address,
                                  slot: _ReductionSlot) -> None:
        if slot.expected < 0 or slot.contributions < slot.expected:
            return
        callbacks, slot.callbacks = slot.callbacks, []
        for cb in callbacks:
            cb(slot.acc)

    def reduction_value(self, address: Address) -> Any:
        """Accumulated value for a chunk (tests)."""
        slot = self._reductions.get(address)
        return slot.acc if slot else None

    # ------------------------------------------------------------------
    # Store sink (push-mode AllGather arrivals)
    # ------------------------------------------------------------------
    def on_chunk_stored(self, address: Address,
                        callback: Callable[[Any], None]) -> None:
        """Fire ``callback`` when a pushed chunk lands (or already has)."""
        if self._stored.get(address, 0) > 0:
            callback(None)
            return
        self._store_callbacks.setdefault(address, []).append(callback)

    # ------------------------------------------------------------------
    # Message entry point (wired from the GPU's receive dispatch)
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> bool:
        """Process a memory-bound message; True when consumed."""
        if msg.op is Op.LOAD_REQ:
            self._serve_fill(msg)
            return True
        if msg.op is Op.MULTIMEM_LD_REDUCE_GATHER:
            self._serve_gather(msg)
            return True
        if msg.op in (Op.LD_CAIS_RESP, Op.LOAD_RESP,
                      Op.MULTIMEM_LD_REDUCE_RESP):
            self._fill_cache(msg.address, msg.payload)
            return True
        if msg.op is Op.STORE:
            self._on_store(msg)
            return True
        return False

    def _serve_fill(self, msg: Message) -> None:
        """Answer a fill/direct load after the HBM read latency."""
        self.sim.schedule(self.spec.hbm_latency_ns, self._send_fill, msg)

    def _send_fill(self, msg: Message) -> None:
        value = (self._local_value_fn(msg.address)
                 if self._local_value_fn else None)
        chunk = msg.meta["chunk_bytes"]
        if msg.meta.get("merge_fill"):
            resp = Message(op=Op.LD_CAIS_RESP, src=gpu_node(self.gpu_index),
                           dst=gpu_node(self.gpu_index), address=msg.address,
                           payload_bytes=chunk, payload=value,
                           meta={"merge_fill": True})
        else:
            resp = Message(op=Op.LOAD_RESP, src=gpu_node(self.gpu_index),
                           dst=gpu_node(msg.meta["requester"]),
                           address=msg.address, payload_bytes=chunk,
                           payload=value, meta={"direct": True})
        self._send(resp)

    def _serve_gather(self, msg: Message) -> None:
        self.sim.schedule(self.spec.hbm_latency_ns, self._send_gather, msg)

    def _send_gather(self, msg: Message) -> None:
        value = (self._local_value_fn(msg.address)
                 if self._local_value_fn else None)
        chunk = msg.meta["chunk_bytes"]
        resp = Message(op=Op.MULTIMEM_LD_REDUCE_RESP,
                       src=gpu_node(self.gpu_index),
                       dst=gpu_node(msg.meta["requester"]),
                       address=msg.address, payload_bytes=chunk,
                       payload=value,
                       meta={"nvls_pull": True,
                             "requester": msg.meta["requester"],
                             "chunk_bytes": chunk})
        self._send(resp)

    def _on_store(self, msg: Message) -> None:
        if msg.meta.get("reduced"):
            self._accumulate(msg.address,
                             contributions=msg.meta.get("contributions", 1),
                             payload=msg.payload)
            return
        self._stored[msg.address] = self._stored.get(msg.address, 0) + 1
        callbacks = self._store_callbacks.pop(msg.address, [])
        for cb in callbacks:
            cb(msg.payload)
