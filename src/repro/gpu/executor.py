"""Multi-GPU TB-granular execution engine.

The executor owns the GPUs, drives every thread block through its lifecycle,
and provides the *token* dependency fabric that systems use to wire
producer-consumer relationships at any granularity (whole kernels for the
barrier baselines, single tiles for CAIS's graph-level dataflow optimizer).

TB lifecycle::

    deps satisfied -> READY (queued on the GPU)
      -> slot granted
      -> [pre-launch TB-group sync]        (CAIS coordination)
      -> pre compute                        tb_pre_ns * jitter
      -> [pre-access TB-group sync]         (CAIS coordination)
      -> issue reductions / wait for loads  (remote phase)
      -> post compute                       tb_post_ns * jitter
      -> DONE: slot freed, completion callbacks fire

Execution variability (paper Section III-B): per-TB multiplicative jitter,
a per-kernel-launch per-GPU skew, and per-GPU shuffled dispatch order — all
drawn from named, seeded RNG streams so runs are reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import heapq

from ..common import fastpath
from ..common.config import SystemConfig
from ..common.errors import DeadlockError
from ..common.events import Simulator
from ..common.rng import RngPool
from ..obs import current_causality, current_metrics, current_tracer
from ..obs.causality import GEMM_COMPUTE, VECTOR_COMPUTE
from ..cais.coordination import SyncPhase
from ..faults.retry import RKEY_META
from ..interconnect.message import Message, Op, gpu_node
from ..interconnect.network import Network
from .gpu import Gpu
from .kernels import KernelInstance, block_indices
from .remote_ops import RemoteOp, RemoteOpKind, Transport
from .scheduler import FairSharePolicy, FifoPolicy, ShuffledPolicy
from .threadblock import ThreadBlock, TBState

Token = Hashable


class Executor:
    """Runs kernels across all GPUs of one simulated node."""

    def __init__(self, sim: Simulator, config: SystemConfig,
                 network: Network, local_value_fn=None,
                 throttle_window: Optional[int] = None,
                 jitter_enabled: bool = True,
                 fair_share: bool = False,
                 reduce_queue_limit: Optional[int] = None,
                 fault_state=None):
        self.sim = sim
        self.config = config
        self.network = network
        # Fault-injection state (repro.faults): when present, CAIS
        # reduction contributions ride the ack/retransmit protocol and
        # GPUs consume the resulting RED_CAIS_ACK control traffic.
        self._fault_state = fault_state
        self._red_seq = 0
        self.rng = RngPool(config.seed)
        self._jitter_enabled = jitter_enabled
        window = config.jitter.dispatch_shuffle_window if jitter_enabled else 1
        self.gpus: List[Gpu] = []
        for g in range(config.num_gpus):
            policy = (ShuffledPolicy(window, self.rng.stream(f"dispatch-{g}"))
                      if window > 1 else FifoPolicy())
            gpu = Gpu(sim, g, config.gpu, network, policy=policy,
                      local_value_fn=local_value_fn,
                      throttle_window=throttle_window,
                      reduce_queue_limit=reduce_queue_limit)
            if fair_share:
                # Asymmetric kernel overlapping: balance slots across
                # concurrently ready kernels (CAIS dataflow optimizer).
                gpu.policy = FairSharePolicy(
                    gpu, max(window, 1), self.rng.stream(f"dispatch-{g}"))
            gpu.on_dispatch = self._tb_start
            if fault_state is not None:
                gpu.handlers.append(self._on_red_ack)
            self.gpus.append(gpu)
        #: Optional reduction-VC dispatch pacing depth (ablation knob).
        self.reduce_queue_limit = reduce_queue_limit
        #: TB-aware request throttling (paper Section III-B-2): when True,
        #: a TB whose region is homed locally still joins the pre-access
        #: barrier, so a GPU whose contributions are local (and therefore
        #: free) cannot run a whole data region ahead of its peers — the
        #: "GPU ahead of its peer TBs" stall.
        self.tb_throttle = False
        self._tokens: set = set()
        self._token_waiters: Dict[Token, List[Callable[[], None]]] = {}
        self._kernel_remaining: Dict[int, int] = {}
        self._kernel_done_cbs: Dict[int, List[Callable[[], None]]] = {}
        self.total_compute_ns = 0.0
        self.tbs_completed = 0
        #: Optional per-kernel span recorder (set by the harness).
        self.timeline = None
        # Observability: TB lifecycles render one trace row per SM-slot
        # lane of each GPU process; lanes are recycled smallest-first so
        # the trace stays compact and deterministic.
        self._tr = current_tracer()
        self._mx = current_metrics()
        self._cz = current_causality()
        if self._mx.enabled:
            self._h_tb_latency = self._mx.histogram(
                "gpu.tb_issue_to_retire_ns")
            self._c_tbs = self._mx.counter("gpu.tbs_completed")
        self._free_lanes: List[List[int]] = [[] for _ in self.gpus]
        self._lanes_made: List[int] = [0] * len(self.gpus)
        self._lane_tracks: Dict[Tuple[int, int], int] = {}
        self._kernel_track = (self._tr.track("Executor", "kernels")
                              if self._tr.enabled else 0)
        # Kernel-span async ids are per-executor, NOT kernel_id: kernel_id
        # comes from a process-global counter, which would leak earlier
        # runs into the trace and break same-seed byte-identity.
        self._next_kernel_aid = 0
        # Engine fast-path (DESIGN.md §11): isolated pure-compute kernel
        # launches are evaluated arithmetically instead of event-by-event.
        # Observability sinks need the per-event lifecycle, so any of them
        # being live forces the reference path.
        self._fp_kernels = (fastpath.config().analytic_kernels
                            and fault_state is None
                            and not self._tr.enabled
                            and not self._mx.enabled
                            and not self._cz.enabled)
        self._fp_inflight = 0
        self.fastpath_kernels = 0
        self.fastpath_kernel_events_elided = 0
        self.fastpath_kernel_conflicts = 0

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    def _lane_acquire(self, gpu_index: int) -> int:
        free = self._free_lanes[gpu_index]
        if free:
            return heapq.heappop(free)
        lane = self._lanes_made[gpu_index]
        self._lanes_made[gpu_index] = lane + 1
        return lane

    def _lane_track(self, gpu_index: int, lane: int) -> int:
        key = (gpu_index, lane)
        track = self._lane_tracks.get(key)
        if track is None:
            track = self._tr.track(f"GPU {gpu_index}", f"sm-slot {lane}")
            self._lane_tracks[key] = track
        return track

    def _phase_begin(self, tb: ThreadBlock, phase: str) -> None:
        tb.obs_phase = self._tr.begin(
            self._lane_track(tb.gpu_index, tb.obs_lane), phase,
            self.sim.now, cat="tb-phase")

    def _phase_end(self, tb: ThreadBlock) -> None:
        if tb.obs_phase >= 0:
            self._tr.end(tb.obs_phase, self.sim.now)
            tb.obs_phase = -1

    # ------------------------------------------------------------------
    # Token dependency fabric
    # ------------------------------------------------------------------
    def signal(self, token: Token) -> None:
        """Mark ``token`` satisfied (idempotent); wakes its waiters."""
        if token in self._tokens:
            return
        self._tokens.add(token)
        for cb in self._token_waiters.pop(token, []):
            cb()

    def is_signalled(self, token: Token) -> bool:
        return token in self._tokens

    def when_all(self, tokens: Iterable[Token],
                 callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once every token has been signalled."""
        missing = [t for t in tokens if t not in self._tokens]
        if not missing:
            callback()
            return
        state = {"left": len(missing)}

        def arm() -> None:
            state["left"] -= 1
            if state["left"] == 0:
                callback()

        for token in missing:
            self._token_waiters.setdefault(token, []).append(arm)

    # ------------------------------------------------------------------
    # Kernel launch
    # ------------------------------------------------------------------
    def launch_kernel(self, kernel: KernelInstance,
                      on_complete: Optional[Callable[[], None]] = None,
                      isolated: bool = False) -> None:
        """Launch ``kernel`` on every GPU; ``on_complete`` fires when the
        last TB on the last GPU finishes.

        ``isolated=True`` is a caller guarantee that nothing else starts in
        the current event frame after this launch (no sibling kernels, no
        collectives).  Together with an empty event queue it makes the
        launch window provably free of concurrent activity, which is what
        lets the kernel fast-path (DESIGN.md §11) replay the slot pipeline
        arithmetically.  Callers that overlap kernels with other work must
        leave it False — the default costs only speed, never correctness.
        """
        if self._fp_kernels:
            if self._fp_inflight:
                # A fast-path window assumed exclusive use of the RNG
                # streams and SM slots until its completion event fires; a
                # launch inside the window breaks that assumption, so it is
                # counted loudly (the equivalence tests pin this at zero).
                self.fastpath_kernel_conflicts += 1
            elif isolated and self._kernel_fastpath_eligible(kernel):
                self._launch_kernel_fastpath(kernel, on_complete)
                return
        total = kernel.num_blocks() * len(self.gpus)
        self._kernel_remaining[kernel.kernel_id] = total
        if self.timeline is not None:
            handle = self.timeline.begin(kernel.name, self.sim.now)
            self._kernel_done_cbs.setdefault(kernel.kernel_id, []).append(
                lambda h=handle: self.timeline.end(h, self.sim.now))
        if self._tr.enabled:
            aid = self._next_kernel_aid
            self._next_kernel_aid += 1
            self._tr.async_begin(self._kernel_track, kernel.name, aid,
                                 self.sim.now, cat="kernel",
                                 args={"blocks": total})
            self._kernel_done_cbs.setdefault(kernel.kernel_id, []).append(
                lambda k=kernel, a=aid: self._tr.async_end(
                    self._kernel_track, k.name, a, self.sim.now,
                    cat="kernel"))
        if on_complete is not None:
            self._kernel_done_cbs.setdefault(
                kernel.kernel_id, []).append(on_complete)
        skew_stream = self.rng.stream("gpu-skew")
        for gpu in self.gpus:
            skew = (float(skew_stream.uniform(
                0.0, self.config.jitter.gpu_skew_ns))
                if self._jitter_enabled else 0.0)
            self.sim.schedule(kernel.launch_overhead_ns + skew,
                              self._enqueue_on_gpu, kernel, gpu)

    # ------------------------------------------------------------------
    # Kernel fast-path (DESIGN.md §11)
    # ------------------------------------------------------------------
    def _kernel_fastpath_eligible(self, kernel: KernelInstance) -> bool:
        """Can this launch be evaluated arithmetically, bit-exactly?

        Two families of conditions:

        * *Kernel shape* — every TB must be pure compute with no external
          coupling: no remote loads/reduces, no inter-TB dependency tokens,
          no per-TB completion callbacks, no TB-group sync phases.
        * *Isolation* — the event queue must be empty and every GPU idle
          and fault-free.  With nothing queued, no event can fire before
          the kernel's completion event, so nothing can contend for SM
          slots or interleave RNG draws mid-window: the specialized replay
          below is then *provably* the same computation the event path
          would perform, not an approximation of it.
        """
        if (kernel.remote_loads is not None
                or kernel.remote_reduces is not None
                or kernel.tb_deps is not None
                or kernel.on_tb_complete is not None
                or kernel.sync_prelaunch or kernel.sync_preaccess
                or kernel.num_blocks() == 0):
            return False
        if self.sim.pending() != 0 or self._fp_inflight:
            return False
        if any(self._kernel_remaining.values()):
            return False
        for gpu in self.gpus:
            if gpu.compute_slowdown != 1.0 or gpu._throttle_fraction != 1.0:
                return False
            if kernel.pool not in gpu._capacity:
                return False
            if any(gpu._used.values()) or any(gpu._ready.values()) \
                    or any(gpu._synced.values()):
                return False
            if not isinstance(gpu.policy, (FifoPolicy, ShuffledPolicy,
                                           FairSharePolicy)):
                return False
        return True

    def _launch_kernel_fastpath(self, kernel: KernelInstance,
                                on_complete: Optional[Callable[[], None]],
                                ) -> None:
        """Replay the SM slot pipeline arithmetically — bit-exactly.

        The event path fires four events per thread block (enqueue fill,
        pre done, post done) through the full dispatch machinery.  For an
        isolated pure-compute kernel every TB is interchangeable, so the
        ready queue reduces to a counter and the whole pipeline collapses
        to a tiny three-state heap replay that performs *the same float
        operations in the same order* as the event path:

        * RNG draws are replicated stream-for-stream: skews in GPU order,
          per-GPU jitter as a batched draw (bit-identical to the scalar
          sequence, verified by test), dispatch-shuffle picks drawn only
          when the window sees >1 candidate — exactly the event path's
          condition.  Which TB a pick selects is timing-irrelevant (all
          TBs identical); only the draw itself must advance the stream.
        * ``total_compute_ns`` accumulates in global event order via the
          merged heap; per-GPU busy integrals accrue at each completion
          with the event path's exact ``occupied * dt`` terms.

        One real event is scheduled at the computed end time to apply the
        state deltas and fire the kernel-completion callbacks.
        """
        sim = self.sim
        now = sim.now
        num_gpus = len(self.gpus)
        blocks = kernel.num_blocks()
        total = blocks * num_gpus
        self._kernel_remaining[kernel.kernel_id] = total
        if self.timeline is not None:
            handle = self.timeline.begin(kernel.name, now)
            self._kernel_done_cbs.setdefault(kernel.kernel_id, []).append(
                lambda h=handle: self.timeline.end(h, self.sim.now))
        if on_complete is not None:
            self._kernel_done_cbs.setdefault(
                kernel.kernel_id, []).append(on_complete)
        mag = self.config.jitter.tb_jitter
        jitter_on = self._jitter_enabled and mag != 0.0
        pre_ns = kernel.tb_pre_ns
        post_ns = kernel.tb_post_ns
        overhead = kernel.launch_overhead_ns
        skew_stream = self.rng.stream("gpu-skew")
        # Exactly 2 jitter draws per TB (pre + post, drawn even when
        # tb_post_ns == 0), consumed in per-GPU event order below.  A
        # batched draw is bit-identical to the scalar sequence and leaves
        # the stream in the same state; tolist() keeps the values exact.
        jit = ([self.rng.stream(f"tb-jitter-{g}").uniform(
                    -mag, mag, 2 * blocks).tolist()
                for g in range(num_gpus)] if jitter_on else None)
        jidx = [0] * num_gpus
        cap = []
        for g, gpu in enumerate(self.gpus):
            cap.append(gpu._capacity[kernel.pool])
            window = (1 if isinstance(gpu.policy, FifoPolicy)
                      else gpu.policy.window)
            # Dispatch-pick draws advance the per-GPU shuffle stream but
            # never affect timing (all TBs are identical), and their bound
            # sequence is deterministic: the initial fill dispatches with a
            # queue of one (no draw — the event path's bound > 1 gate),
            # then each slot refill sees min(window, ready) candidates with
            # ready counting down from ``blocks - fill`` to 1.  Replicate
            # the whole sequence up front: one batch for the constant
            # ``window`` prefix, scalars for the shrinking tail.
            r0 = blocks - min(blocks, cap[g])
            if window > 1 and r0 >= 2:
                rng = gpu.policy.rng
                if r0 >= window:
                    rng.integers(0, window, size=r0 - window + 1)
                    tail_start = window - 1
                else:
                    tail_start = r0
                for bound in range(tail_start, 1, -1):
                    rng.integers(0, bound)
        used = [0] * num_gpus
        ready = [0] * num_gpus
        integral = [gpu._busy_integral_ns for gpu in self.gpus]
        since = [gpu._busy_since for gpu in self.gpus]
        dispatched = [0] * num_gpus
        total_compute = self.total_compute_ns
        ENQ, AFTER_PRE, DONE = 0, 1, 2
        heap: List[tuple] = []
        seq = 0
        for g in range(num_gpus):
            skew = (float(skew_stream.uniform(
                0.0, self.config.jitter.gpu_skew_ns))
                if self._jitter_enabled else 0.0)
            heap.append((now + (overhead + skew), seq, ENQ, g))
            seq += 1
        heapq.heapify(heap)
        push, pop = heapq.heappush, heapq.heappop
        t_end = now
        while heap:
            t, _, kind, g = pop(heap)
            if kind == AFTER_PRE:
                if jitter_on:
                    j = 1.0 + float(jit[g][jidx[g]])
                    jidx[g] += 1
                else:
                    j = 1.0
                dur = post_ns * j
                total_compute += dur
                push(heap, (t + dur, seq, DONE, g))
                seq += 1
            elif kind == DONE:
                integral[g] += used[g] * (t - since[g])
                since[g] = t
                used[g] -= 1
                if t > t_end:
                    t_end = t
                if ready[g] > 0:
                    # Refill the freed slot (pick draw already replicated
                    # above); the second busy accrual the event path
                    # performs here is a zero-delta no-op.
                    ready[g] -= 1
                    used[g] += 1
                    dispatched[g] += 1
                    if jitter_on:
                        j = 1.0 + float(jit[g][jidx[g]])
                        jidx[g] += 1
                    else:
                        j = 1.0
                    dur = pre_ns * j
                    total_compute += dur
                    push(heap, (t + dur, seq, AFTER_PRE, g))
                    seq += 1
            else:                       # ENQ: initial fill, no pick draws
                fill = blocks if blocks < cap[g] else cap[g]
                ready[g] = blocks - fill
                intg, snc = integral[g], since[g]
                for u in range(fill):
                    intg += u * (t - snc)
                    snc = t
                    if jitter_on:
                        j = 1.0 + float(jit[g][jidx[g]])
                        jidx[g] += 1
                    else:
                        j = 1.0
                    dur = pre_ns * j
                    total_compute += dur
                    push(heap, (t + dur, seq, AFTER_PRE, g))
                    seq += 1
                used[g] = fill
                dispatched[g] = fill
                integral[g], since[g] = intg, snc
        self._fp_inflight += 1
        self.fastpath_kernels += 1
        self.fastpath_kernel_events_elided += num_gpus + 2 * total - 1

        def finish() -> None:
            self._fp_inflight -= 1
            for g, gpu in enumerate(self.gpus):
                gpu._busy_integral_ns = integral[g]
                gpu._busy_since = since[g]
                gpu.tbs_dispatched += dispatched[g]
            self.total_compute_ns = total_compute
            self.tbs_completed += total
            self._kernel_remaining[kernel.kernel_id] = 0
            for cb in self._kernel_done_cbs.pop(kernel.kernel_id, []):
                cb()

        sim.schedule_at(t_end, finish)

    def _enqueue_on_gpu(self, kernel: KernelInstance, gpu: Gpu) -> None:
        order = (kernel.block_order if kernel.block_order is not None
                 else block_indices(kernel.grid))
        for bidx in order:
            tb = ThreadBlock(kernel=kernel, gpu_index=gpu.index,
                             block_idx=bidx)
            deps = kernel.tb_deps(gpu.index, bidx) if kernel.tb_deps else []
            if deps:
                self.when_all(deps,
                              lambda tb=tb, gpu=gpu: self._enqueue_tb(
                                  gpu, tb))
            else:
                self._enqueue_tb(gpu, tb)

    def _enqueue_tb(self, gpu: Gpu, tb: ThreadBlock) -> None:
        # The ambient cause here is whatever made the TB ready: the kernel
        # launch event, or — when tb_deps gated it — the signal that
        # satisfied the last token (a producer TB's completion node).
        if self._cz.enabled:
            tb.cz_enq = self._cz.current
        gpu.enqueue(tb)

    # ------------------------------------------------------------------
    # TB lifecycle
    # ------------------------------------------------------------------
    def _tb_start(self, tb: ThreadBlock) -> None:
        # Pre-launch TB-group sync (if armed) happened in the GPU's
        # dispatcher, *before* the TB acquired its slot.
        if self._tr.enabled:
            tb.obs_lane = self._lane_acquire(tb.gpu_index)
            tb.obs_span = self._tr.begin(
                self._lane_track(tb.gpu_index, tb.obs_lane),
                f"{tb.kernel.name}{list(tb.block_idx)}", self.sim.now,
                cat="tb", args={"kernel": tb.kernel.name})
        self._tb_pre(tb)

    def _jitter(self, gpu_index: int) -> float:
        if not self._jitter_enabled:
            return 1.0
        return self.rng.jitter(f"tb-jitter-{gpu_index}",
                               self.config.jitter.tb_jitter)

    def _tb_pre(self, tb: ThreadBlock) -> None:
        tb.state = TBState.COMPUTE_PRE
        if self._tr.enabled:
            self._phase_begin(tb, "pre")
        if self._cz.enabled:
            tb.cz_pre_start = self.sim.now
            # The event that actually started the pre phase — a pre-launch
            # sync release, or the dispatch itself — so a TB gated by the
            # group-sync protocol traces back through the release chain.
            tb.cz_launch = self._cz.current
        duration = tb.kernel.tb_pre_ns * self._jitter(tb.gpu_index)
        slowdown = self.gpus[tb.gpu_index].compute_slowdown
        if slowdown != 1.0:              # straggler fault window
            duration *= slowdown
        self.total_compute_ns += duration
        self.sim.schedule(duration, self._tb_after_pre, tb)

    def _compute_category(self, tb: ThreadBlock) -> str:
        return (VECTOR_COMPUTE if tb.kernel.compute_class == "vector"
                else GEMM_COMPUTE)

    def _tb_after_pre(self, tb: ThreadBlock) -> None:
        if self._tr.enabled:
            self._phase_end(tb)
        kernel = tb.kernel
        gpu = self.gpus[tb.gpu_index]
        if self._cz.enabled:
            # The pre-compute node: charged to the kernel's compute class,
            # caused by readiness ("dep" edge: token/launch wait) and the
            # slot grant ("slot" edge: ready-queue wait).  Everything the
            # TB does next — sync requests, reductions, loads — inherits
            # this node as its ambient cause.
            tb.cz_last = self._cz.node(
                self._compute_category(tb), tb.cz_pre_start, self.sim.now,
                f"{kernel.name}{list(tb.block_idx)} pre",
                parents=((tb.cz_enq, "dep"), (tb.cz_disp, "slot"),
                         (tb.cz_launch, "launch")))
            self._cz.current = tb.cz_last
        loads = (kernel.remote_loads(tb.gpu_index, tb.block_idx)
                 if kernel.remote_loads else [])
        reduces = (kernel.remote_reduces(tb.gpu_index, tb.block_idx)
                   if kernel.remote_reduces else [])
        group = kernel.group_for(tb.block_idx)
        # Reducing TBs always join the pre-access barrier when throttling
        # is on — including the region's home GPU, whose contributions are
        # local adds: without that, the home runs a whole region ahead and
        # its later requests arrive out of alignment.  Load-side TBs join
        # only when they will actually issue (cache piggybackers and the
        # home shard add sync rounds with nothing to align).
        if reduces:
            participates = bool(reduces) if self.tb_throttle else any(
                op.address.home_gpu != tb.gpu_index for op in reduces)
            expected = (len(self.gpus) if self.tb_throttle
                        else len(self.gpus) - 1)
        else:
            participates = any(
                op.address.home_gpu != tb.gpu_index and
                gpu.memory.would_fetch(op.address) for op in loads)
            expected = len(self.gpus) - 1
        if kernel.sync_preaccess and group is not None and participates:
            tb.state = TBState.SYNC_ACCESS
            gpu.synchronizer.request_sync(
                group, SyncPhase.ACCESS, expected,
                lambda: self._tb_remote_synced(tb, loads, reduces))
        else:
            self._tb_remote(tb, loads, reduces)

    def _tb_remote_synced(self, tb: ThreadBlock, loads: List[RemoteOp],
                          reduces: List[RemoteOp]) -> None:
        # Released by the pre-access barrier: if nothing later (a load
        # fill) overwrites it, the post phase is attributed to the sync.
        if self._cz.enabled:
            tb.cz_release = self._cz.current
            tb.cz_release_kind = "sync"
        self._tb_remote(tb, loads, reduces)

    def _tb_remote(self, tb: ThreadBlock, loads: List[RemoteOp],
                   reduces: List[RemoteOp]) -> None:
        tb.state = TBState.REMOTE
        gpu = self.gpus[tb.gpu_index]
        remote_loads = [op for op in loads
                        if op.address.home_gpu != tb.gpu_index]
        if self._tr.enabled and remote_loads:
            self._phase_begin(tb, "remote")
        # Reductions are fire-and-forget (pacing happened at dispatch
        # admission); the TB holds its slot only while loads are pending.
        for op in reduces:
            self._issue_reduce(gpu, op)
        tb.loads_outstanding = len(remote_loads)
        if tb.loads_outstanding == 0:
            self._tb_post(tb)
            return
        for op in remote_loads:
            gpu.memory.fetch_remote(
                op.address, op.chunk_bytes,
                mergeable=op.mergeable, expected=op.expected,
                on_ready=lambda _value, tb=tb: self._tb_load_ready(tb))

    def _issue_reduce(self, gpu: Gpu, op: RemoteOp) -> None:
        if op.kind is not RemoteOpKind.REDUCE:
            raise ValueError(f"not a reduction: {op}")
        if op.address.home_gpu == gpu.index:
            gpu.memory.add_local_contribution(op.address, op.payload)
            return
        if op.transport is Transport.CAIS:
            meta = {"expected": op.expected}
            state = self._fault_state
            if state is not None:
                self._red_seq += 1
                rkey = ("red", gpu.index, op.address.home_gpu,
                        op.address.offset, self._red_seq)
                meta[RKEY_META] = rkey
            msg = Message(op=Op.RED_CAIS, src=gpu_node(gpu.index),
                          dst=gpu_node(op.address.home_gpu),
                          payload_bytes=op.chunk_bytes, address=op.address,
                          payload=op.payload, meta=meta)
            # TB-aware throttling: each mergeable request spends a credit;
            # the switch returns it when a peer's matching request arrives
            # (second-arrival crediting), so an ahead GPU stalls here.
            if state is None:
                gpu.synchronizer.with_credit(lambda m=msg: gpu.send(m))
            else:
                # Reliable delivery: the merge unit acks each contribution
                # by rkey; retransmits bypass the credit window (the credit
                # was spent by the first copy) and reroute automatically if
                # the original plane has since failed.
                def send_tracked(m=msg, op=op, key=rkey) -> None:
                    gpu.send(m)

                    def resend(attempt: int) -> None:
                        copy = Message(
                            op=Op.RED_CAIS, src=gpu_node(gpu.index),
                            dst=gpu_node(op.address.home_gpu),
                            payload_bytes=op.chunk_bytes,
                            address=op.address, payload=op.payload,
                            meta={"expected": op.expected, RKEY_META: key,
                                  "retry": attempt})
                        gpu.send(copy)

                    state.retransmitter.track(key, resend)

                gpu.synchronizer.with_credit(send_tracked)
        elif op.transport is Transport.NVLS:
            msg = Message(op=Op.MULTIMEM_RED, src=gpu_node(gpu.index),
                          dst=gpu_node(op.address.home_gpu),
                          payload_bytes=op.chunk_bytes, address=op.address,
                          payload=op.payload, meta={"expected": op.expected})
            gpu.send(msg)
        else:
            msg = Message(op=Op.STORE, src=gpu_node(gpu.index),
                          dst=gpu_node(op.address.home_gpu),
                          payload_bytes=op.chunk_bytes, address=op.address,
                          payload=op.payload,
                          meta={"reduced": True, "contributions": 1,
                                "partial": True})
            gpu.send(msg)

    def _on_red_ack(self, msg: Message) -> bool:
        """Consume merge-unit acks for tracked reduction contributions."""
        if msg.op is Op.RED_CAIS_ACK and RKEY_META in msg.meta:
            self._fault_state.retransmitter.ack(msg.meta[RKEY_META])
            return True
        return False

    def _tb_load_ready(self, tb: ThreadBlock) -> None:
        tb.loads_outstanding -= 1
        if tb.loads_outstanding == 0:
            if self._cz.enabled:
                # The last load fill is what released the post phase.
                tb.cz_release = self._cz.current
                tb.cz_release_kind = "wire"
            self._tb_post(tb)

    def _tb_post(self, tb: ThreadBlock) -> None:
        if self._tr.enabled:
            self._phase_end(tb)          # remote phase (if it opened)
            self._phase_begin(tb, "post")
        if self._cz.enabled:
            tb.cz_post_start = self.sim.now
        tb.state = TBState.COMPUTE_POST
        duration = tb.kernel.tb_post_ns * self._jitter(tb.gpu_index)
        slowdown = self.gpus[tb.gpu_index].compute_slowdown
        if slowdown != 1.0:              # straggler fault window
            duration *= slowdown
        self.total_compute_ns += duration
        self.sim.schedule(duration, self._tb_done, tb)

    def _tb_done(self, tb: ThreadBlock) -> None:
        tb.state = TBState.DONE
        tb.complete_time = self.sim.now
        self.tbs_completed += 1
        if self._tr.enabled:
            self._phase_end(tb)
            if tb.obs_span >= 0:
                self._tr.end(tb.obs_span, self.sim.now)
                tb.obs_span = -1
            if tb.obs_lane >= 0:
                heapq.heappush(self._free_lanes[tb.gpu_index], tb.obs_lane)
                tb.obs_lane = -1
        if self._mx.enabled:
            self._h_tb_latency.record(self.sim.now - tb.dispatch_time)
            self._c_tbs.inc()
        if self._cz.enabled:
            # The post-compute node: sequenced after the TB's own pre
            # phase and caused by whatever released it (last load fill,
            # sync release, or plain sequencing).  Set as ambient *before*
            # the slot release and completion callbacks so the next TB's
            # dispatch, token signals, and kernel-done chains inherit it.
            tb.cz_last = self._cz.node(
                self._compute_category(tb), tb.cz_post_start, self.sim.now,
                f"{tb.kernel.name}{list(tb.block_idx)} post",
                parents=((tb.cz_last, "seq"),
                         (tb.cz_release, tb.cz_release_kind)))
            self._cz.current = tb.cz_last
        self.gpus[tb.gpu_index].release_slot(tb)
        kernel = tb.kernel
        if kernel.on_tb_complete is not None:
            kernel.on_tb_complete(tb.gpu_index, tb.block_idx)
        left = self._kernel_remaining[kernel.kernel_id] - 1
        self._kernel_remaining[kernel.kernel_id] = left
        if left == 0:
            for cb in self._kernel_done_cbs.pop(kernel.kernel_id, []):
                cb()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation to completion; returns the makespan (ns)."""
        self.sim.run(until=until)
        stuck = {kid: left for kid, left in self._kernel_remaining.items()
                 if left > 0}
        if stuck and until is None:
            outstanding = self.sim.outstanding_report()
            detail = ("; outstanding work: " + "; ".join(outstanding)
                      if outstanding else "")
            raise DeadlockError(
                f"event queue drained with unfinished kernels: {stuck} "
                f"(missing dependency signals or sync releases?){detail}")
        return self.sim.now
