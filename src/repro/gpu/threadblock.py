"""Thread-block runtime state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from .kernels import KernelInstance


class TBState(enum.Enum):
    WAITING_DEPS = "waiting-deps"
    READY = "ready"
    SYNC_LAUNCH = "sync-launch"
    COMPUTE_PRE = "compute-pre"
    SYNC_ACCESS = "sync-access"
    REMOTE = "remote"
    COMPUTE_POST = "compute-post"
    DONE = "done"


@dataclass
class ThreadBlock:
    """One TB of one kernel on one GPU."""

    kernel: KernelInstance
    gpu_index: int
    block_idx: Tuple[int, ...]
    state: TBState = TBState.WAITING_DEPS
    loads_outstanding: int = 0
    #: Pre-launch TB-group sync already granted (paper Section III-B-2).
    prelaunch_synced: bool = False
    dispatch_time: float = field(default=-1.0)
    complete_time: float = field(default=-1.0)
    #: Tracing state (set by the executor only when tracing is enabled):
    #: the SM-slot lane this TB renders on, and its open span handles.
    obs_lane: int = -1
    obs_span: int = -1
    obs_phase: int = -1

    @property
    def pool(self) -> str:
        return self.kernel.pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TB({self.kernel.name}{list(self.block_idx)}@gpu"
                f"{self.gpu_index}, {self.state.value})")
