"""Thread-block runtime state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from .kernels import KernelInstance


class TBState(enum.Enum):
    WAITING_DEPS = "waiting-deps"
    READY = "ready"
    SYNC_LAUNCH = "sync-launch"
    COMPUTE_PRE = "compute-pre"
    SYNC_ACCESS = "sync-access"
    REMOTE = "remote"
    COMPUTE_POST = "compute-post"
    DONE = "done"


@dataclass
class ThreadBlock:
    """One TB of one kernel on one GPU."""

    kernel: KernelInstance
    gpu_index: int
    block_idx: Tuple[int, ...]
    state: TBState = TBState.WAITING_DEPS
    loads_outstanding: int = 0
    #: Pre-launch TB-group sync already granted (paper Section III-B-2).
    prelaunch_synced: bool = False
    dispatch_time: float = field(default=-1.0)
    complete_time: float = field(default=-1.0)
    #: Tracing state (set by the executor only when tracing is enabled):
    #: the SM-slot lane this TB renders on, and its open span handles.
    obs_lane: int = -1
    obs_span: int = -1
    obs_phase: int = -1
    #: Causal recording state (repro.obs.causality; set only when a
    #: recorder is installed): cause ids for becoming ready (``cz_enq``),
    #: winning a slot (``cz_disp``), the last compute node emitted
    #: (``cz_last``), and whatever released the post phase (``cz_release``
    #: with its edge kind), plus the phase start times the nodes span.
    cz_enq: int = -1
    cz_disp: int = -1
    cz_launch: int = -1
    cz_last: int = -1
    cz_release: int = -1
    cz_release_kind: str = "seq"
    cz_pre_start: float = -1.0
    cz_post_start: float = -1.0

    @property
    def pool(self) -> str:
        return self.kernel.pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TB({self.kernel.name}{list(self.block_idx)}@gpu"
                f"{self.gpu_index}, {self.state.value})")
