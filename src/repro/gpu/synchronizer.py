"""GPU-side synchronizer module (paper Section III-B-3, Fig. 8b).

Each GPU carries one synchronizer that interfaces with the TB and warp
schedulers.  It implements the two synchronization points:

* **pre-launch** — a TB registers its Group ID before dispatch and stays
  *pending* until the switch's Group Sync Table confirms all GPUs
  registered;
* **pre-access** — a warp hitting its first ``*.cais`` instruction waits
  until all TBs of the group reached the same point.

Both are empty-packet exchanges (one flit each way).  The synchronizer also
hosts the credit-based request throttle fed by the merge unit's completion
CREDITs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..cais.coordination import CreditThrottle, SyncPhase, plane_for_group
from ..interconnect.message import Message, Op, gpu_node, switch_node
from ..interconnect.network import Network


class Synchronizer:
    """Per-GPU TB-group synchronization endpoint."""

    def __init__(self, network: Network, gpu_index: int,
                 throttle_window: Optional[int] = None):
        self.network = network
        self.gpu_index = gpu_index
        self._pending: Dict[Tuple[int, SyncPhase],
                            List[Callable[[], None]]] = {}
        self.throttle = (CreditThrottle(throttle_window)
                         if throttle_window else None)
        self.syncs_requested = 0

    # ------------------------------------------------------------------
    # Sync protocol
    # ------------------------------------------------------------------
    def request_sync(self, group_id: int, phase: SyncPhase, expected: int,
                     on_release: Callable[[], None]) -> None:
        """Register for a group sync; ``on_release`` fires at broadcast."""
        key = (group_id, phase)
        waiters = self._pending.setdefault(key, [])
        waiters.append(on_release)
        if len(waiters) > 1:
            return                        # request already in flight
        self.syncs_requested += 1
        plane = plane_for_group(group_id, self.network.config.num_switches)
        # Steer around failed planes; the remap is shared by all GPUs, so
        # a group still converges on one (healthy) sync table.
        plane = self.network.route_plane(plane)
        msg = Message(op=Op.SYNC_REQ, src=gpu_node(self.gpu_index),
                      dst=switch_node(plane), group_id=group_id,
                      meta={"phase": phase.value, "expected": expected})
        self.network.up_links[(self.gpu_index, plane)].send(msg)

    # ------------------------------------------------------------------
    # Message entry point
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> bool:
        """Process a control message; True when consumed."""
        if msg.op is Op.SYNC_RELEASE:
            phase = SyncPhase(msg.meta["phase"])
            waiters = self._pending.pop((msg.group_id, phase), [])
            for cb in waiters:
                cb()
            return True
        if msg.op is Op.CREDIT:
            # The merge unit broadcasts completion credits to every
            # participant; GPUs that did not issue (e.g. the home GPU of a
            # load session) simply ignore theirs.
            if self.throttle is not None and self.throttle.in_flight > 0:
                self.throttle.release()
            return True
        return False

    # ------------------------------------------------------------------
    # Throttling
    # ------------------------------------------------------------------
    def with_credit(self, issue: Callable[[], None]) -> None:
        """Run ``issue`` once a throttle credit is available (or at once
        when throttling is disabled)."""
        if self.throttle is None:
            issue()
        else:
            self.throttle.acquire(issue)
