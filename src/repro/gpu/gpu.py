"""One GPU device: SM slot pools, TB dispatch, message endpoint.

The execution model is TB-granular: a GPU owns
``num_sms * tb_slots_per_sm`` resident-TB slots.  Slots are grouped into
named *pools* so the CAIS dataflow optimizer can partition SMs between
concurrently running kernels with complementary traffic (asymmetric kernel
overlapping, Section III-C-2); by default a single ``"default"`` pool holds
every slot.

Messages delivered by the fabric are offered to the synchronizer (sync
releases, throttle credits) and then the memory controller (loads, fills,
stores, gathers).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.config import GpuSpec
from ..common.errors import ConfigError, SimulationError
from ..common.events import Simulator
from ..interconnect.message import Message
from ..interconnect.network import Network
from .memory import MemoryController
from .scheduler import DispatchPolicy, FifoPolicy, effective_capacity
from .synchronizer import Synchronizer
from .threadblock import ThreadBlock, TBState

DEFAULT_POOL = "default"


class Gpu:
    """Device model registered as the fabric endpoint for one GPU index."""

    def __init__(self, sim: Simulator, index: int, spec: GpuSpec,
                 network: Network, policy: Optional[DispatchPolicy] = None,
                 local_value_fn=None, throttle_window: Optional[int] = None,
                 reduce_queue_limit: Optional[int] = None):
        #: TB-aware request throttling (paper Section III-B-2): a TB whose
        #: kernel issues mergeable reductions is not dispatched while this
        #: GPU's reduction VCs hold >= this many messages, keeping all
        #: GPUs' request streams in lockstep with the link drain rate.
        self.reduce_queue_limit = reduce_queue_limit
        self.sim = sim
        self.index = index
        self.spec = spec
        self.network = network
        self.policy = policy or FifoPolicy()
        self.memory = MemoryController(sim, index, spec, send=self.send,
                                       local_value_fn=local_value_fn)
        self.synchronizer = Synchronizer(network, index,
                                         throttle_window=throttle_window)
        total = spec.num_sms * spec.tb_slots_per_sm
        self._capacity: Dict[str, int] = {DEFAULT_POOL: total}
        self._used: Dict[str, int] = {DEFAULT_POOL: 0}
        self._ready: Dict[str, List[ThreadBlock]] = {DEFAULT_POOL: []}
        # Pre-launch coordination state: TBs *pending* on a group sync do
        # not hold an SM slot (paper Section III-B-2); released TBs queue
        # here with dispatch priority.
        self._synced: Dict[str, List[ThreadBlock]] = {DEFAULT_POOL: []}
        self._sync_pending: Dict[str, int] = {DEFAULT_POOL: 0}
        self._pace_armed: Dict[str, bool] = {}
        #: Set by the executor: invoked with a TB when a slot is granted.
        self.on_dispatch: Optional[Callable[[ThreadBlock], None]] = None
        #: Extra message handlers (collective drivers register here); each
        #: is offered incoming messages before the synchronizer/memory.
        self.handlers: List[Callable[[Message], bool]] = []
        #: Resident TBs per kernel id (read by FairSharePolicy to balance
        #: SMs across concurrently running kernels).
        self.running_per_kernel: Dict[int, int] = {}
        self.tbs_dispatched = 0
        # Fault-injection state (repro.faults): a straggler window scales
        # every TB's compute time; an SM-throttle window caps the usable
        # slot count.  Both default to the exact fault-free values.
        self.compute_slowdown = 1.0
        self._throttle_fraction = 1.0
        # Slot-occupancy integral (slot-ns) for GPU-utilization metrics.
        self._busy_integral_ns = 0.0
        self._busy_since = 0.0
        network.register_gpu(index, self.receive)

    # ------------------------------------------------------------------
    # Slot pools
    # ------------------------------------------------------------------
    @property
    def total_slots(self) -> int:
        return self.spec.num_sms * self.spec.tb_slots_per_sm

    def set_pools(self, capacities: Dict[str, int]) -> None:
        """Partition the SM slots into named pools (asymmetric overlap)."""
        if sum(capacities.values()) > self.total_slots:
            raise ConfigError(
                f"pool capacities {capacities} exceed {self.total_slots} "
                f"slots on GPU {self.index}")
        if any(c <= 0 for c in capacities.values()):
            raise ConfigError(f"pool capacities must be positive: "
                              f"{capacities}")
        if any(self._used.get(p, 0) for p in self._used):
            raise SimulationError("cannot repartition pools mid-kernel")
        self._capacity = dict(capacities)
        self._used = {p: 0 for p in capacities}
        self._ready = {p: self._ready.get(p, []) for p in capacities}
        self._synced = {p: self._synced.get(p, []) for p in capacities}
        self._sync_pending = {p: self._sync_pending.get(p, 0)
                              for p in capacities}

    def pool_capacity(self, pool: str) -> int:
        if pool not in self._capacity:
            raise ConfigError(f"GPU {self.index} has no pool {pool!r}; "
                              f"pools: {sorted(self._capacity)}")
        return self._capacity[pool]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def enqueue(self, tb: ThreadBlock) -> None:
        """Queue a dependency-free TB for dispatch."""
        self.pool_capacity(tb.pool)
        tb.state = TBState.READY
        self._ready[tb.pool].append(tb)
        self._try_dispatch(tb.pool)

    def release_slot(self, tb: ThreadBlock) -> None:
        """Return the slot held by ``tb`` and refill its pool."""
        pool = tb.pool
        if self._used[pool] <= 0:
            raise SimulationError(f"slot underflow in pool {pool!r}")
        self._accrue_busy()
        self._used[pool] -= 1
        kid = tb.kernel.kernel_id
        self.running_per_kernel[kid] -= 1
        if self.running_per_kernel[kid] == 0:
            del self.running_per_kernel[kid]
        self._try_dispatch(pool)

    def set_sm_throttle(self, fraction: float) -> None:
        """Cap the usable SM-slot fraction (fault window); 1.0 restores.

        Already-resident TBs keep their slots; the cap only gates new
        dispatches, like SMs being taken offline as they drain.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(
                f"SM throttle fraction must be in (0, 1], got {fraction}")
        restored = fraction > self._throttle_fraction
        self._throttle_fraction = fraction
        if restored:
            for pool in self._capacity:
                self._try_dispatch(pool)

    def _effective_capacity(self, pool: str) -> int:
        capacity = self._capacity[pool]
        if self._throttle_fraction >= 1.0:
            return capacity
        return effective_capacity(capacity, self._throttle_fraction)

    def _try_dispatch(self, pool: str) -> None:
        while self._used[pool] < self._effective_capacity(pool):
            if self._synced[pool]:
                # Released pre-launch syncs dispatch with priority so the
                # cross-GPU alignment the sync bought is not re-shuffled.
                tb = self._synced[pool].pop(0)
            elif self._ready[pool]:
                tb = self.policy.pick(self._ready[pool])
                if self._needs_prelaunch_sync(tb):
                    # Register the TB group; the TB stays *pending* without
                    # holding an SM slot until the switch broadcasts the
                    # release (paper Fig. 7d).  Registrations run up to two
                    # waves ahead of dispatch so a GPU's registration time
                    # never depends on its own slot availability — that is
                    # what keeps the cross-GPU registration order aligned.
                    self._park_for_sync(tb)
                    if self._sync_pending[pool] >= 2 * self._capacity[pool]:
                        break
                    continue
            else:
                break
            if not self._admit(tb, pool):
                # Reduction-VC backlog too deep: defer (with priority) and
                # retry when the links drain — TB-aware throttling.
                self._synced[pool].insert(0, tb)
                break
            self._accrue_busy()
            self._used[pool] += 1
            self.tbs_dispatched += 1
            kid = tb.kernel.kernel_id
            self.running_per_kernel[kid] = \
                self.running_per_kernel.get(kid, 0) + 1
            tb.dispatch_time = self.sim.now
            if self.on_dispatch is None:
                raise SimulationError(
                    f"GPU {self.index} has no dispatch handler")
            self.on_dispatch(tb)


    def _admit(self, tb: ThreadBlock, pool: str) -> bool:
        """TB-aware throttling gate: pace reducing kernels to link drain."""
        if (self.reduce_queue_limit is None or
                tb.kernel.remote_reduces is None):
            return True
        from ..interconnect.message import TrafficClass
        for plane in range(self.network.config.num_switches):
            link = self.network.up_links[(self.index, plane)]
            if link.queue_depth(TrafficClass.REDUCTION) >= \
                    self.reduce_queue_limit:
                if not self._pace_armed.get(pool):
                    self._pace_armed[pool] = True

                    def wake(pool=pool) -> None:
                        self._pace_armed[pool] = False
                        self._try_dispatch(pool)

                    link.wait_for_room(TrafficClass.REDUCTION,
                                       self.reduce_queue_limit, wake)
                return False
        return True

    def _needs_prelaunch_sync(self, tb: ThreadBlock) -> bool:
        return (tb.kernel.sync_prelaunch and not tb.prelaunch_synced and
                tb.kernel.group_for(tb.block_idx) is not None)

    def _park_for_sync(self, tb: ThreadBlock) -> None:
        from ..cais.coordination import SyncPhase
        tb.state = TBState.SYNC_LAUNCH
        group = tb.kernel.group_for(tb.block_idx)
        self._sync_pending[tb.pool] += 1
        self.synchronizer.request_sync(
            group, SyncPhase.LAUNCH, self.network.config.num_gpus,
            lambda tb=tb: self._on_prelaunch_release(tb))

    def _on_prelaunch_release(self, tb: ThreadBlock) -> None:
        tb.prelaunch_synced = True
        self._sync_pending[tb.pool] -= 1
        self._synced[tb.pool].append(tb)
        self._try_dispatch(tb.pool)

    def _accrue_busy(self) -> None:
        now = self.sim.now
        occupied = sum(self._used.values())
        self._busy_integral_ns += occupied * (now - self._busy_since)
        self._busy_since = now

    def slot_busy_ns(self) -> float:
        """Integral of occupied slots over time (slot-nanoseconds)."""
        self._accrue_busy()
        return self._busy_integral_ns

    def utilization(self, makespan_ns: float) -> float:
        """Fraction of SM slot capacity occupied over ``makespan_ns``."""
        if makespan_ns <= 0:
            return 0.0
        return self.slot_busy_ns() / (self.total_slots * makespan_ns)

    def outstanding_work(self) -> str:
        """One-line summary of unfinished work (deadlock diagnostics).

        Empty string when this GPU is fully idle.
        """
        busy = sum(self._used.values())
        ready = sum(len(q) for q in self._ready.values())
        synced = sum(len(q) for q in self._synced.values())
        pending = sum(self._sync_pending.values())
        if not (busy or ready or synced or pending):
            return ""
        parts = []
        if busy:
            parts.append(f"{busy} resident TBs")
        if ready:
            parts.append(f"{ready} ready")
        if synced:
            parts.append(f"{synced} sync-released")
        if pending:
            parts.append(f"{pending} sync-pending")
        return f"gpu {self.index}: " + ", ".join(parts)

    def ready_count(self, pool: str = DEFAULT_POOL) -> int:
        return len(self._ready.get(pool, []))

    def busy_slots(self, pool: str = DEFAULT_POOL) -> int:
        return self._used.get(pool, 0)

    # ------------------------------------------------------------------
    # Fabric endpoint
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Inject a message into the fabric from this GPU."""
        self.network.send_from_gpu(self.index, msg)

    def receive(self, msg: Message) -> None:
        for handler in self.handlers:
            if handler(msg):
                return
        if self.synchronizer.handle(msg):
            return
        if self.memory.handle(msg):
            return
        raise SimulationError(
            f"GPU {self.index} cannot handle {msg}")
