"""repro: reproduction of CAIS (HPCA 2026) and its full substrate stack."""

__version__ = "1.0.0"
