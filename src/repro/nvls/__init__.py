"""NVLink SHARP (NVLS) in-switch computing: the communication-centric baseline."""

from .engine import NvlsEngine

__all__ = ["NvlsEngine"]
