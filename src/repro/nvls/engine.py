"""NVLink SHARP (NVLS) in-switch computing engine.

Implements the communication-centric primitives the paper analyses in
Fig. 1(g), following the public description in Klenk et al. (ISCA'20) [24]:

* ``multimem.st`` — **push-mode multicast**: a GPU stores once; the switch
  replicates the data to every group member (AllGather's transport).
* ``multimem.ld_reduce`` — **pull-mode reduction**: a GPU issues one request;
  the switch gathers one contribution from each member, reduces in-flight,
  and returns a single combined response (ReduceScatter's transport).
* ``multimem.red`` — **push-mode reduction**: every member pushes its
  contribution; the switch accumulates and writes the combined result to the
  home GPU.

These primitives operate *between global barriers*: they are agnostic to the
compute kernels around them, which is precisely the limitation CAIS removes.
The switch-side datapaths here (session tracking, in-flight accumulation,
response generation) are reused by the CAIS merge unit — the paper's Fig. 6
marks those as the "reused from NVLS" blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ProtocolError
from ..common.functional import combine_payloads as _combine
from ..interconnect.message import Address, Message, Op, gpu_node
from ..interconnect.switch import Switch
from ..obs import current_causality, current_metrics, current_tracer
from ..obs.causality import SWITCH_MERGE


@dataclass
class _PullSession:
    """One in-flight ``multimem.ld_reduce``: gather, reduce, respond."""

    requester: int
    address: Address
    chunk_bytes: int
    expected: int
    received: int = 0
    acc: Any = None
    tag: Any = None                      # opaque requester tag, echoed back
    started_ns: float = 0.0
    obs_aid: int = -1                    # async-span id (tracing only)
    #: Causal-node ids of the hops delivering each contribution.
    cz_contribs: List[int] = field(default_factory=list)


@dataclass
class _PushSession:
    """One in-flight ``multimem.red``: accumulate pushes, write home."""

    address: Address
    chunk_bytes: int
    expected: int
    received: int = 0
    acc: Any = None
    on_complete_meta: Dict[str, Any] = field(default_factory=dict)
    started_ns: float = 0.0
    obs_aid: int = -1                    # async-span id (tracing only)
    #: Causal-node ids of the hops delivering each contribution.
    cz_contribs: List[int] = field(default_factory=list)


class NvlsEngine:
    """Switch engine implementing the three NVLS multimem primitives."""

    #: Marks this engine as an in-switch *compute* unit: an NVLS_FAIL fault
    #: kills it while the plane keeps forwarding plain traffic.
    COMPUTE_UNIT = True

    def __init__(self, fault_state=None) -> None:
        self._pull_sessions: Dict[Tuple[int, Address], _PullSession] = {}
        self._push_sessions: Dict[Address, _PushSession] = {}
        self.multicasts = 0
        self.pull_reductions = 0
        self.push_reductions = 0
        self.faulted = False
        self.faulted_drops = 0
        self._fault_state = fault_state
        self._tr = current_tracer()
        self._mx = current_metrics()
        self._cz = current_causality()
        self._next_aid = 0
        self._track = -1                 # resolved on first switch contact

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail(self, switch: Switch) -> None:
        """Kill the compute unit: abort in-flight sessions, swallow future
        multimem ops.  The comm layer learns of the fault via the shared
        fault state and reruns aborted collectives over the ring path."""
        if self.faulted:
            return
        self.faulted = True
        aborted = len(self._pull_sessions) + len(self._push_sessions)
        for session in list(self._pull_sessions.values()):
            self._session_close(switch, "pull", session)
        for session in list(self._push_sessions.values()):
            self._session_close(switch, "push", session)
        self._pull_sessions.clear()
        self._push_sessions.clear()
        if self._fault_state is not None:
            if aborted:
                self._fault_state.counters.bump("nvls_sessions_aborted",
                                                aborted)
            self._fault_state.nvls_unit_failed(switch.index)

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    def _session_open(self, switch: Switch, kind: str,
                      session: Any) -> None:
        if self._mx.enabled:
            self._mx.counter(f"nvls.{kind}_sessions").inc()
        session.started_ns = switch.sim.now
        if not self._tr.enabled:
            return
        if self._track < 0:
            self._track = self._tr.track(f"Switch {switch.index}", "NVLS")
        session.obs_aid = self._next_aid
        self._next_aid += 1
        self._tr.async_begin(self._track, f"nvls {kind}", session.obs_aid,
                             switch.sim.now, cat="nvls",
                             args={"expected": session.expected})

    def _session_close(self, switch: Switch, kind: str,
                       session: Any) -> None:
        if self._mx.enabled:
            self._mx.histogram("nvls.session_gather_ns").record(
                switch.sim.now - session.started_ns)
        if self._tr.enabled and session.obs_aid >= 0:
            self._tr.async_end(self._track, f"nvls {kind}", session.obs_aid,
                               switch.sim.now, cat="nvls")

    # ------------------------------------------------------------------
    # SwitchEngine interface
    # ------------------------------------------------------------------
    def process(self, switch: Switch, msg: Message, in_port: int) -> bool:
        if self.faulted:
            # A dead compute unit consumes (and loses) multimem traffic
            # addressed to it; plain forwarding is untouched.
            if msg.op in (Op.MULTIMEM_ST, Op.MULTIMEM_LD_REDUCE_REQ,
                          Op.MULTIMEM_RED) or (
                    msg.op is Op.MULTIMEM_LD_REDUCE_RESP
                    and "nvls_pull" in msg.meta):
                self.faulted_drops += 1
                return True
            return False
        if msg.op is Op.MULTIMEM_ST:
            self._multicast(switch, msg)
            return True
        if msg.op is Op.MULTIMEM_LD_REDUCE_REQ:
            self._start_pull(switch, msg)
            return True
        if msg.op is Op.MULTIMEM_LD_REDUCE_RESP and "nvls_pull" in msg.meta:
            self._pull_contribution(switch, msg)
            return True
        if msg.op is Op.MULTIMEM_RED:
            self._push_contribution(switch, msg)
            return True
        return False

    # ------------------------------------------------------------------
    # multimem.st — push multicast
    # ------------------------------------------------------------------
    def _multicast(self, switch: Switch, msg: Message) -> None:
        members = msg.meta.get("members")
        if not members:
            raise ProtocolError("multimem.st requires meta['members']")
        self.multicasts += 1
        if self._mx.enabled:
            self._mx.counter("nvls.multicasts").inc()
        for gpu in members:
            if gpu_node(gpu) == msg.src:
                continue
            copy = Message(op=Op.STORE, src=switch.node_id,
                           dst=gpu_node(gpu),
                           payload_bytes=msg.payload_bytes,
                           address=msg.address, payload=msg.payload,
                           meta=dict(msg.meta))
            switch.forward(copy)

    # ------------------------------------------------------------------
    # multimem.ld_reduce — pull reduction
    # ------------------------------------------------------------------
    def _start_pull(self, switch: Switch, msg: Message) -> None:
        members: List[int] = msg.meta.get("members") or []
        if not members:
            raise ProtocolError("multimem.ld_reduce requires meta['members']")
        if msg.address is None:
            raise ProtocolError("multimem.ld_reduce requires an address")
        requester = msg.src[1]
        key = (requester, msg.address)
        if key in self._pull_sessions:
            raise ProtocolError(f"duplicate ld_reduce session {key}")
        chunk = msg.meta.get("chunk_bytes", 0)
        session = _PullSession(
            requester=requester, address=msg.address, chunk_bytes=chunk,
            expected=len(members), tag=msg.meta.get("tag"))
        self._pull_sessions[key] = session
        self._session_open(switch, "pull", session)
        for gpu in members:
            gather = Message(op=Op.MULTIMEM_LD_REDUCE_GATHER,
                             src=switch.node_id, dst=gpu_node(gpu),
                             address=msg.address,
                             meta={"requester": requester,
                                   "chunk_bytes": chunk})
            switch.forward(gather)

    def _pull_contribution(self, switch: Switch, msg: Message) -> None:
        requester = msg.meta["requester"]
        key = (requester, msg.address)
        session = self._pull_sessions.get(key)
        if session is None:
            raise ProtocolError(f"ld_reduce contribution for unknown {key}")
        session.received += 1
        session.acc = _combine(session.acc, msg.payload)
        if self._cz.enabled:
            session.cz_contribs.append(self._cz.current)
        if session.received == session.expected:
            del self._pull_sessions[key]
            self.pull_reductions += 1
            self._session_close(switch, "pull", session)
            if self._cz.enabled:
                now = switch.sim.now
                self._cz.current = self._cz.node(
                    SWITCH_MERGE, now, now,
                    f"sw{switch.index} nvls pull join",
                    parents=tuple((c, "merge")
                                  for c in session.cz_contribs))
            resp = Message(op=Op.MULTIMEM_LD_REDUCE_RESP,
                           src=switch.node_id, dst=gpu_node(requester),
                           payload_bytes=session.chunk_bytes,
                           address=session.address, payload=session.acc,
                           meta={"completed": True, "tag": session.tag})
            switch.forward(resp)

    # ------------------------------------------------------------------
    # multimem.red — push reduction
    # ------------------------------------------------------------------
    def _push_contribution(self, switch: Switch, msg: Message) -> None:
        if msg.address is None:
            raise ProtocolError("multimem.red requires an address")
        expected = msg.meta.get("expected")
        if not expected:
            raise ProtocolError("multimem.red requires meta['expected']")
        session = self._push_sessions.get(msg.address)
        if session is None:
            session = _PushSession(address=msg.address,
                                   chunk_bytes=msg.payload_bytes,
                                   expected=expected,
                                   on_complete_meta=dict(msg.meta))
            self._push_sessions[msg.address] = session
            self._session_open(switch, "push", session)
        session.received += 1
        session.acc = _combine(session.acc, msg.payload)
        if self._cz.enabled:
            session.cz_contribs.append(self._cz.current)
        if session.received == session.expected:
            del self._push_sessions[msg.address]
            self.push_reductions += 1
            self._session_close(switch, "push", session)
            if self._cz.enabled:
                now = switch.sim.now
                self._cz.current = self._cz.node(
                    SWITCH_MERGE, now, now,
                    f"sw{switch.index} nvls push join",
                    parents=tuple((c, "merge")
                                  for c in session.cz_contribs))
            meta = dict(session.on_complete_meta)
            meta.update(reduced=True, contributions=session.received,
                        partial=False)
            result = Message(op=Op.STORE, src=switch.node_id,
                             dst=gpu_node(msg.address.home_gpu),
                             payload_bytes=session.chunk_bytes,
                             address=msg.address, payload=session.acc,
                             meta=meta)
            switch.forward(result)

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def open_sessions(self) -> int:
        """In-flight pull + push sessions (0 when the fabric is quiescent)."""
        return len(self._pull_sessions) + len(self._push_sessions)
