"""The systems under test (paper Section IV-C) behind one interface.

Every system takes the same logical workload graphs and returns a
:class:`~repro.systems.base.RunResult`; what differs is how each lowers
computation and communication — which is precisely the paper's comparison.

==============  ============================================================
System          Model
==============  ============================================================
TP-NVLS         Basic TP; kernel barriers; NVLS push AllReduce
SP-NVLS         TP+SP; barriers; NVLS pull RS + push AG
CoCoNet         Chunked GEMM->collective software pipeline; ring transport;
                SM contention from comm kernels; per-chunk launch overhead
FuseLib         Fused-kernel variant: no launch overhead, milder contention
T3              HW track&trigger: TB-level GEMM-RS and AG-GEMM overlap,
                coarse RS->LN->AG dependencies; direct DMA transport
CoCoNet-NVLS    CoCoNet with NVLS collectives
FuseLib-NVLS    FuseLib with NVLS collectives
T3-NVLS         T3 with DMA-based NVLS reductions and push AllGather
LADM            Locality-aware TB scheduling; direct remote reads; no
                in-switch computing, no overlap
CAIS            Full: merge unit + TB coordination + dataflow optimizer
CAIS-Base       merge unit only (barriers, no coordination/optimizer)
CAIS-Partial    + dataflow optimizer, no traffic control
CAIS-w/o-Coord  full minus TB coordination
==============  ============================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cais.dataflow import CaisRunner
from ..common.config import SystemConfig
from ..common.errors import WorkloadError
from ..gpu.remote_ops import Transport
from ..llm.graph import Graph
from ..llm.tiling import TilingConfig, reset_tensor_ids
from ..cais.compiler import reset_group_ids
from .base import BarrierRunner, Harness, NvlsComm, RingComm, RunResult
from .ladm import DirectComm
from .overlap import OverlapRunner
from .t3 import T3Runner

#: Optional per-GPU window of outstanding *unmatched* mergeable requests
#: (second-arrival crediting).  The shipped CAIS configuration leaves this
#: off: the home-inclusive pre-access barrier plus the compiler's
#: home-rotated TB ordering already keep every GPU's request stream in
#: lockstep (see DESIGN.md, "TB-aware throttling"); the credit window is
#: retained as an ablation knob.
CAIS_THROTTLE_WINDOW = None
#: SM fraction left for compute under software-overlap comm kernels.
COCONET_COMPUTE_FRACTION = 0.875
FUSELIB_COMPUTE_FRACTION = 0.94


class Session:
    """A live simulated node: harness plus the system's graph runner.

    Produced by :meth:`System.session`.  The session owns no control flow
    of its own — callers submit graphs through ``runner.run_graph`` /
    ``runner.run_graphs`` and drive ``harness.executor``.  ``finish()``
    quiesces background machinery (fault watchdogs) and renders the
    :class:`~repro.systems.base.RunResult`.
    """

    def __init__(self, name: str, harness: Harness, runner) -> None:
        self.name = name
        self.harness = harness
        self.runner = runner

    # Fault plumbing for in-simulation drivers (the serving loop reacts
    # to degradation and retry pressure mid-stream): None when the
    # config has faults disabled.
    @property
    def fault_state(self):
        return self.harness.fault_state

    @property
    def fault_injector(self):
        return self.harness.fault_injector

    @property
    def fault_schedule(self):
        return self.harness.fault_schedule

    def finish(self, **details) -> RunResult:
        self.harness.workload_complete()
        return self.harness.result(self.name, **details)


class System:
    """Base class: build a harness, lower the graphs, run, report."""

    name: str = "abstract"

    def __init__(self, config: SystemConfig,
                 tiling: Optional[TilingConfig] = None,
                 chunk_bytes: int = 262144, jitter: bool = True):
        self.config = config
        self.tiling = tiling or TilingConfig()
        self.chunk_bytes = chunk_bytes
        self.jitter = jitter

    # -- subclass hooks -------------------------------------------------
    def _build(self) -> Harness:
        raise NotImplementedError

    def _runner(self, harness: Harness):
        raise NotImplementedError

    # -- entry point ----------------------------------------------------
    def session(self) -> "Session":
        """Build a fresh simulated node ready to execute workload graphs.

        Resets the per-simulation id counters, constructs the harness and
        the system-specific runner, and hands both back.  :meth:`run` is
        the one-shot convenience wrapper; callers that decide the next
        graph *from inside the simulation* (the serving workload layer,
        which builds each continuous-batching iteration from the sim-time
        state of the request queue) drive the session incrementally
        instead.
        """
        reset_tensor_ids()
        reset_group_ids()
        harness = self._build()
        return Session(self.name, harness, self._runner(harness))

    def run(self, graphs: List[Graph]) -> RunResult:
        """Execute ``graphs`` in sequence on a fresh simulated node."""
        if not graphs:
            raise WorkloadError("no graphs supplied")
        session = self.session()
        harness, runner = session.harness, session.runner
        finished = {"done": False}

        def _done() -> None:
            finished["done"] = True
            harness.workload_complete()

        runner.run_graphs(graphs, on_done=_done)
        harness.executor.run()
        if not finished["done"]:
            raise WorkloadError(
                f"{self.name}: graphs did not run to completion")
        return harness.result(self.name)


# ---------------------------------------------------------------------------
# Tensor parallelism with NVLS (barrier baselines)
# ---------------------------------------------------------------------------

class TpNvls(System):
    """Basic TP with NVLS-accelerated AllReduce (Megatron + NVLS)."""

    name = "TP-NVLS"

    def _build(self) -> Harness:
        return Harness(self.config, nvls=True, jitter=self.jitter)

    def _runner(self, harness: Harness):
        return BarrierRunner(harness,
                             NvlsComm(harness, self.chunk_bytes),
                             tiling=self.tiling)


class SpNvls(TpNvls):
    """TP + sequence parallelism with NVLS RS/AG (Korthikanti + NVLS)."""

    name = "SP-NVLS"


# ---------------------------------------------------------------------------
# Software overlap baselines
# ---------------------------------------------------------------------------

class CoCoNet(System):
    """Software pipelining of GEMM with its collective (ring transport)."""

    name = "CoCoNet"
    compute_fraction = COCONET_COMPUTE_FRACTION
    fused_kernel = False

    def _comm(self, harness: Harness):
        return RingComm(harness, self.chunk_bytes)

    def _build(self) -> Harness:
        harness = Harness(self.config, nvls=False, jitter=self.jitter)
        harness.restrict_compute_slots(self.compute_fraction)
        return harness

    def _runner(self, harness: Harness):
        overhead = 0.0 if self.fused_kernel else None
        return OverlapRunner(harness, self._comm(harness),
                             tiling=self.tiling,
                             launch_overhead_ns=overhead)


class FuseLib(CoCoNet):
    """Fused compute+collective kernels: no launch overhead."""

    name = "FuseLib"
    compute_fraction = FUSELIB_COMPUTE_FRACTION
    fused_kernel = True


class CoCoNetNvls(CoCoNet):
    """CoCoNet driving NVLS multimem collectives."""

    name = "CoCoNet-NVLS"

    def _build(self) -> Harness:
        harness = Harness(self.config, nvls=True, jitter=self.jitter)
        harness.restrict_compute_slots(self.compute_fraction)
        return harness

    def _comm(self, harness: Harness):
        return NvlsComm(harness, self.chunk_bytes)


class FuseLibNvls(CoCoNetNvls):
    """FuseLib driving NVLS multimem collectives."""

    name = "FuseLib-NVLS"
    compute_fraction = FUSELIB_COMPUTE_FRACTION
    fused_kernel = True


# ---------------------------------------------------------------------------
# Hardware-assisted overlap (T3)
# ---------------------------------------------------------------------------

class T3(System):
    """Transparent track & trigger with direct DMA transport."""

    name = "T3"
    nvls = False

    def _build(self) -> Harness:
        return Harness(self.config, nvls=self.nvls, jitter=self.jitter)

    def _runner(self, harness: Harness):
        return T3Runner(harness, tiling=self.tiling, nvls=self.nvls)


class T3Nvls(T3):
    """T3 with the DMA-based NVLS reduction design."""

    name = "T3-NVLS"
    nvls = True


# ---------------------------------------------------------------------------
# Locality-aware scheduling (no in-switch computing, no overlap)
# ---------------------------------------------------------------------------

class Ladm(System):
    """LADM: direct remote reads with a locality bonus."""

    name = "LADM"

    def _build(self) -> Harness:
        return Harness(self.config, jitter=self.jitter)

    def _runner(self, harness: Harness):
        return BarrierRunner(harness,
                             DirectComm(harness, self.chunk_bytes),
                             tiling=self.tiling)


# ---------------------------------------------------------------------------
# CAIS and its ablation variants
# ---------------------------------------------------------------------------

class Cais(System):
    """Full CAIS: compute-aware ISA + coordination + dataflow optimizer."""

    name = "CAIS"
    coordination = True
    dataflow = True
    traffic_control = True

    def _build(self) -> Harness:
        throttle = CAIS_THROTTLE_WINDOW if self.coordination else None
        harness = Harness(self.config, merge=True,
                          sync_tables=self.coordination,
                          traffic_control=self.traffic_control,
                          throttle_window=throttle,
                          fair_share=self.dataflow,
                          jitter=self.jitter)
        return harness

    def _runner(self, harness: Harness):
        return CaisRunner(harness, tiling=self.tiling,
                          dataflow=self.dataflow,
                          coordination=self.coordination)


class CaisBase(Cais):
    """Compute-aware ISA + merging only: global barriers stay."""

    name = "CAIS-Base"
    coordination = False
    dataflow = False
    traffic_control = False


class CaisPartial(Cais):
    """Base + dataflow optimizer, without traffic control (Fig. 15/16)."""

    name = "CAIS-Partial"
    traffic_control = False


class CaisNoCoord(Cais):
    """Full CAIS minus merging-aware TB coordination (Fig. 13/14)."""

    name = "CAIS-w/o-Coord"
    coordination = False


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SYSTEM_CLASSES: Dict[str, Callable[..., System]] = {
    cls.name: cls for cls in (
        TpNvls, SpNvls, CoCoNet, FuseLib, T3,
        CoCoNetNvls, FuseLibNvls, T3Nvls, Ladm,
        Cais, CaisBase, CaisPartial, CaisNoCoord,
    )
}

#: The paper's Fig. 11 baseline ordering.
BASELINE_ORDER = ["TP-NVLS", "SP-NVLS", "CoCoNet", "FuseLib", "T3",
                  "CoCoNet-NVLS", "FuseLib-NVLS", "T3-NVLS", "LADM"]


def make_system(name: str, config: SystemConfig, **kwargs) -> System:
    """Instantiate a system by its paper name."""
    if name not in SYSTEM_CLASSES:
        raise WorkloadError(f"unknown system {name!r}; "
                            f"known: {sorted(SYSTEM_CLASSES)}")
    return SYSTEM_CLASSES[name](config, **kwargs)
