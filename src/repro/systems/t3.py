"""T3: hardware-assisted transparent tracking & triggering (Pati et al.).

T3 instruments the memory system so that a GEMM's tile stores *trigger*
the corresponding ReduceScatter transfer via DMA — fine-grained overlap of
a GEMM with its following collective, without software chunking.  Per the
paper we extend it with AG-GEMM overlap: the downstream GEMM's TBs consume
gathered rows as they arrive.

What T3 keeps **coarse** (and what CAIS removes) is the *cross-kernel*
dependency: ReduceScatter must fully finish before LayerNorm starts, and
LayerNorm before the AllGather begins — so the reduction-heavy and
load-heavy phases never co-run and the asymmetric traffic of Fig. 10 goes
unbalanced.

Transports: plain T3 uses direct DMA remote writes/reads; T3-NVLS adopts
the DMA-based NVLS design [24], pushing reductions through the switch's
``multimem.red`` path (merged in-flight) while the AllGather remains a
push multicast whose receivers gate the consumer GEMM's TBs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.errors import WorkloadError
from ..gpu.remote_ops import Transport
from ..interconnect.message import Address
from ..llm.graph import CommKind, Graph, LogicalOp, OpKind
from ..llm.tiling import (
    TilingConfig,
    ag_gemm_kernel,
    ceil_div,
    compute_kernel,
    gemm_rs_kernel,
    make_layout,
    reduction_sub_chunks,
)
from .base import Harness

DTYPE_BYTES = 2


class T3Runner:
    """Lower and execute a graph the T3 way."""

    def __init__(self, harness: Harness,
                 tiling: Optional[TilingConfig] = None,
                 nvls: bool = False,
                 launch_overhead_ns: Optional[float] = None):
        self.harness = harness
        self.executor = harness.executor
        self.tiling = tiling or TilingConfig()
        self.nvls = nvls
        self.reduce_transport = Transport.NVLS if nvls else Transport.DIRECT
        self.launch_overhead_ns = (
            harness.config.gpu.kernel_launch_overhead_ns
            if launch_overhead_ns is None else launch_overhead_ns)

    # ------------------------------------------------------------------
    def run_graph(self, graph: Graph,
                  on_done: Optional[Callable[[], None]] = None) -> None:
        # RS absorbed into its producer GEMM; AG absorbed into consumers.
        rs_of_gemm: Dict[str, str] = {}
        ag_consumers: Dict[str, List[str]] = {}
        absorbed: set = set()
        for op in graph.ops():
            if op.kind is not OpKind.COMM:
                continue
            if op.comm is CommKind.REDUCE_SCATTER and op.deps:
                producer = graph[op.deps[0]]
                if producer.kind is OpKind.GEMM:
                    rs_of_gemm[producer.name] = op.name
                    absorbed.add(op.name)
            elif op.comm is CommKind.ALL_GATHER:
                gemms = [c.name for c in graph.consumers_of(op.name)
                         if c.kind is OpKind.GEMM]
                if gemms:
                    ag_consumers[op.name] = gemms
                    absorbed.update(gemms)

        done = {op.name: False for op in graph.ops()}
        waiting = {op.name: len(op.deps) for op in graph.ops()}
        pending = {"count": len(done)}

        def finish(name: str) -> None:
            done[name] = True
            pending["count"] -= 1
            if pending["count"] == 0 and on_done is not None:
                on_done()
                return
            for consumer in graph.consumers_of(name):
                waiting[consumer.name] -= 1
                if waiting[consumer.name] == 0:
                    start(consumer)

        def start(op: LogicalOp) -> None:
            if op.name in absorbed and op.kind is not OpKind.COMM:
                return              # consumer GEMM launched by its AG
            if op.name in absorbed:
                return              # RS driven by its producer GEMM
            if op.name in rs_of_gemm:
                self._start_gemm_rs(graph, op, rs_of_gemm[op.name], finish)
                return
            if op.name in ag_consumers:
                self._start_ag_gemms(graph, op, ag_consumers[op.name],
                                     finish)
                return
            if op.kind is OpKind.COMM:
                raise WorkloadError(
                    f"T3 cannot lower collective {op.name} standalone")
            kernel = compute_kernel(op, self.harness.config.gpu, self.tiling,
                                    launch_overhead_ns=self.launch_overhead_ns)
            self.executor.launch_kernel(
                kernel, on_complete=lambda name=op.name: finish(name))

        for op in graph.topo_order():
            if waiting[op.name] == 0:
                start(op)

    def run_graphs(self, graphs: List[Graph],
                   on_done: Optional[Callable[[], None]] = None) -> None:
        if not graphs:
            raise WorkloadError("no graphs to run")

        def chain(index: int) -> None:
            if index == len(graphs):
                if on_done is not None:
                    on_done()
                return
            self.run_graph(graphs[index], on_done=lambda: chain(index + 1))

        chain(0)

    # ------------------------------------------------------------------
    # GEMM with tracked & triggered ReduceScatter
    # ------------------------------------------------------------------
    def _start_gemm_rs(self, graph: Graph, gemm_op: LogicalOp, rs_name: str,
                       finish: Callable[[str], None]) -> None:
        tp = self.harness.config.num_gpus
        shape = gemm_op.gemm
        layout = make_layout(rows=shape.m, row_bytes=shape.n * DTYPE_BYTES,
                             tp=tp, row_block=self.tiling.tile)
        num_col_tiles = ceil_div(shape.n, self.tiling.tile)
        kernel = gemm_rs_kernel(gemm_op, layout, self.harness.config.gpu,
                                self.tiling, tp=tp,
                                transport=self.reduce_transport,
                                launch_overhead_ns=self.launch_overhead_ns)
        tile_bytes = layout.block_bytes // num_col_tiles
        subs, sub_bytes = reduction_sub_chunks(tile_bytes,
                                               self.tiling.red_chunk_bytes)
        state = {"left": layout.num_blocks * num_col_tiles * subs}

        def sub_reduced(_value) -> None:
            state["left"] -= 1
            if state["left"] == 0:
                finish(rs_name)

        for mb in range(layout.num_blocks):
            memory = self.executor.gpus[layout.home_of_block(mb)].memory
            for nb in range(num_col_tiles):
                base = layout.address(mb, nb, tile_bytes)
                for c in range(subs):
                    memory.expect_reduction(
                        Address(base.home_gpu, base.offset + c * sub_bytes),
                        expected=tp, on_complete=sub_reduced)
        self.executor.launch_kernel(
            kernel, on_complete=lambda: finish(gemm_op.name))

    # ------------------------------------------------------------------
    # AllGather overlapped with its consumer GEMMs
    # ------------------------------------------------------------------
    def _start_ag_gemms(self, graph: Graph, ag_op: LogicalOp,
                        gemm_names: List[str],
                        finish: Callable[[str], None]) -> None:
        tp = self.harness.config.num_gpus
        g2 = graph[gemm_names[0]]
        layout = make_layout(rows=g2.gemm.m,
                             row_bytes=g2.gemm.k * DTYPE_BYTES, tp=tp,
                             row_block=self.tiling.tile)
        if self.nvls:
            self._push_all_gather(layout)
        for name in gemm_names:
            gemm = graph[name]
            if gemm.gemm.m != layout.rows:
                # wgrad-style consumer (reads the gathered tensor along K):
                # no per-row overlap applies; plain compute, its traffic
                # rides its sibling's fetches through the chunk cache.
                kernel = compute_kernel(
                    gemm, self.harness.config.gpu, self.tiling,
                    launch_overhead_ns=self.launch_overhead_ns)
            elif self.nvls:
                kernel = self._push_gated_gemm(gemm, layout)
            else:
                kernel = ag_gemm_kernel(gemm, layout,
                                        self.harness.config.gpu, self.tiling,
                                        tp=tp, transport=Transport.DIRECT,
                                        gated_on_ln=False,
                                        launch_overhead_ns=self.launch_overhead_ns)
            self.executor.launch_kernel(
                kernel, on_complete=lambda n=name: finish(n))
        finish(ag_op.name)

    def _push_all_gather(self, layout) -> None:
        """NVLS multicast push of every locally homed row block; arrivals
        signal per-(block, gpu) tokens that gate the consumer TBs."""
        from ..interconnect.message import Message, Op, gpu_node
        executor = self.executor
        for mb in range(layout.num_blocks):
            home = layout.home_of_block(mb)
            for gpu in executor.gpus:
                if gpu.index == home:
                    continue
                token = ("t3push", layout.tensor_id, mb, gpu.index)
                addr = layout.address(mb, 0, layout.block_bytes)
                gpu.memory.on_chunk_stored(
                    addr, lambda _v, t=token: executor.signal(t))
            msg = Message(op=Op.MULTIMEM_ST, src=gpu_node(home),
                          dst=gpu_node(home), payload_bytes=layout.block_bytes,
                          address=layout.address(mb, 0, layout.block_bytes),
                          meta={"members": list(range(len(executor.gpus)))})
            executor.gpus[home].send(msg)

    def _push_gated_gemm(self, gemm_op: LogicalOp, layout):
        tp = self.harness.config.num_gpus
        tile = self.tiling.tile
        shape = gemm_op.gemm
        grid = (ceil_div(shape.m, tile), ceil_div(shape.n, tile))
        from ..gpu.kernels import KernelInstance
        from ..llm.tiling import gemm_tile_time_ns
        tb_ns = gemm_tile_time_ns(tile, tile, shape.k,
                                  self.harness.config.gpu)

        def deps(gpu: int, bidx):
            mb = bidx[0]
            if layout.home_of_block(mb) == gpu:
                return []
            return [("t3push", layout.tensor_id, mb, gpu)]

        return KernelInstance(name=gemm_op.name, grid=grid, tb_pre_ns=0.0,
                              tb_post_ns=tb_ns, tb_deps=deps,
                              launch_overhead_ns=self.launch_overhead_ns)
