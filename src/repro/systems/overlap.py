"""Software compute-communication overlap baselines (CoCoNet / FuseLib).

Both systems pipeline a GEMM with its *following* collective by splitting
the GEMM output into row partitions: as soon as partition ``i``'s kernel
finishes, the collective for that slice starts while partition ``i+1`` is
still computing (CoCoNet's software scheduling [19]; FuseLib fuses the two
into one persistent kernel, removing launch overheads [44]).

Two costs distinguish them from hardware approaches, both modelled here:

* **SM contention** — the communication kernels occupy SMs, shrinking the
  compute pool (``Harness.restrict_compute_slots``);
* **launch overhead** — CoCoNet launches one kernel per partition;
  FuseLib's fused kernel pays it once.

Neither overlaps a collective with the *following* GEMM (AG -> GEMM runs
as a barrier), which is exactly the flexibility the paper credits CAIS
with (Section V-A-3).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

from ..collectives.analytic import maybe_fastpath
from ..common.errors import WorkloadError
from ..gpu.kernels import KernelInstance
from ..llm.graph import CommKind, Graph, LogicalOp, OpKind
from ..llm.tiling import TilingConfig, ceil_div, compute_kernel
from .base import CommImpl, Harness

#: Row partitions used for GEMM->collective pipelining.
DEFAULT_PARTITIONS = 4


class OverlapRunner:
    """Chunked GEMM -> collective pipelining with barrier fallback."""

    def __init__(self, harness: Harness, comm: CommImpl,
                 tiling: Optional[TilingConfig] = None,
                 partitions: int = DEFAULT_PARTITIONS,
                 launch_overhead_ns: Optional[float] = None):
        if partitions < 1:
            raise WorkloadError(f"partitions must be >= 1: {partitions}")
        self.harness = harness
        self.comm = maybe_fastpath(harness, comm)
        self.tiling = tiling or TilingConfig()
        self.partitions = partitions
        self.launch_overhead_ns = (
            harness.config.gpu.kernel_launch_overhead_ns
            if launch_overhead_ns is None else launch_overhead_ns)

    # ------------------------------------------------------------------
    def run_graph(self, graph: Graph,
                  on_done: Optional[Callable[[], None]] = None) -> None:
        absorbed = self._absorbed_comms(graph)
        done: Dict[str, bool] = {op.name: False for op in graph.ops()}
        waiting = {op.name: len(op.deps) for op in graph.ops()}
        pending = {"count": len(done)}

        # See BarrierRunner.run_graph: a lone successor started from an
        # otherwise-idle frame may use the executor's kernel fast-path.
        # Pipelined GEMM partitions never qualify — overlapping their
        # collective slices is the whole point of this runner.
        starting = {"depth": 0}

        def finish(name: str) -> None:
            done[name] = True
            pending["count"] -= 1
            if pending["count"] == 0 and on_done is not None:
                on_done()
                return
            ready = []
            for consumer in graph.consumers_of(name):
                waiting[consumer.name] -= 1
                if waiting[consumer.name] == 0:
                    ready.append(consumer)
            solo = len(ready) == 1 and starting["depth"] == 0
            for consumer in ready:
                start(consumer, solo)

        def start(op: LogicalOp, solo: bool = False) -> None:
            starting["depth"] += 1
            try:
                if op.name in absorbed.values():
                    return           # driven by its producer GEMM
                if op.name in absorbed:
                    self._start_pipelined(graph, op, absorbed[op.name],
                                          finish)
                    return
                if op.kind is OpKind.COMM:
                    self.comm.run(op.comm, op.comm_bytes,
                                  lambda name=op.name: finish(name))
                    return
                kernel = compute_kernel(
                    op, self.harness.config.gpu, self.tiling,
                    launch_overhead_ns=self.launch_overhead_ns)
                self.harness.executor.launch_kernel(
                    kernel, on_complete=lambda name=op.name: finish(name),
                    isolated=solo)
            finally:
                starting["depth"] -= 1

        roots = [op for op in graph.topo_order() if waiting[op.name] == 0]
        for op in roots:
            start(op, solo=len(roots) == 1)

    def run_graphs(self, graphs: List[Graph],
                   on_done: Optional[Callable[[], None]] = None) -> None:
        if not graphs:
            raise WorkloadError("no graphs to run")

        def chain(index: int) -> None:
            if index == len(graphs):
                if on_done is not None:
                    on_done()
                return
            self.run_graph(graphs[index], on_done=lambda: chain(index + 1))

        chain(0)

    # ------------------------------------------------------------------
    def _absorbed_comms(self, graph: Graph) -> Dict[str, str]:
        """Map producer GEMM name -> collective it pipelines with."""
        pairs: Dict[str, str] = {}
        for op in graph.ops():
            if op.kind is not OpKind.COMM:
                continue
            if op.comm not in (CommKind.ALL_REDUCE,
                               CommKind.REDUCE_SCATTER):
                continue             # AG -> GEMM is NOT overlapped here
            if len(op.deps) != 1:
                continue
            producer = graph[op.deps[0]]
            if producer.kind is OpKind.GEMM and producer.name not in pairs:
                pairs[producer.name] = op.name
        return pairs

    def _start_pipelined(self, graph: Graph, gemm_op: LogicalOp,
                         comm_name: str,
                         finish: Callable[[str], None]) -> None:
        comm_op = graph[comm_name]
        shape = gemm_op.gemm
        tile = self.tiling.tile
        partitions = min(self.partitions, max(1, ceil_div(shape.m, tile)))
        rows = ceil_div(ceil_div(shape.m, tile), partitions)
        grid = (rows, ceil_div(shape.n, tile))
        k = self.harness.config.num_gpus
        per_slice = (comm_op.comm_bytes // partitions) // k * k
        slices = [per_slice] * (partitions - 1)
        slices.append(comm_op.comm_bytes - per_slice * (partitions - 1))
        state = {"kernels": partitions, "comms": partitions}

        def kernel_done(index: int) -> None:
            self.comm.run(comm_op.comm, slices[index],
                          lambda: comm_done())
            state["kernels"] -= 1
            if state["kernels"] == 0:
                finish(gemm_op.name)

        def comm_done() -> None:
            state["comms"] -= 1
            if state["comms"] == 0:
                finish(comm_name)

        base = compute_kernel(gemm_op, self.harness.config.gpu, self.tiling,
                              launch_overhead_ns=self.launch_overhead_ns)
        tb_ns = base.tb_pre_ns

        def launch_partition(index: int) -> None:
            # Partitions run strictly in sequence: partition i's collective
            # slice overlaps partition i+1's compute (the software
            # pipeline); launching them all at once would finish them all
            # at once and serialize every collective at the end.
            kernel = KernelInstance(
                name=f"{gemm_op.name}.p{index}", grid=grid, tb_pre_ns=tb_ns,
                launch_overhead_ns=self.launch_overhead_ns)

            def done(i=index) -> None:
                kernel_done(i)
                if i + 1 < partitions:
                    launch_partition(i + 1)

            self.harness.executor.launch_kernel(kernel, on_complete=done)

        launch_partition(0)
