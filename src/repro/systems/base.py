"""System-under-test scaffolding shared by every baseline and by CAIS.

A :class:`Harness` assembles one simulated node — event engine, fabric,
switch engines, GPUs/executor — according to a system's feature set (NVLS
engines? CAIS merge unit? group-sync tables? traffic control? throttling?).

A :class:`BarrierRunner` executes a logical graph the way the
kernel-barrier baselines do: an op starts when all its graph dependencies
completed; compute ops run TB-granular on the executor, collective ops run
through a pluggable :class:`CommImpl` (ring or NVLS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from ..cais.coordination import GroupSyncTable
from ..cais.merge_unit import MergeUnit
from ..collectives.analytic import maybe_fastpath
from ..collectives.nvls_collectives import NvlsCollective
from ..collectives.ring import RingCollective
from ..common.config import SystemConfig
from ..common.errors import SimulationError, WorkloadError
from ..common.events import Simulator
from ..faults import FaultInjector, FaultSchedule, FaultState
from ..gpu.executor import Executor
from ..interconnect.network import Network
from ..llm.graph import CommKind, Graph, LogicalOp, OpKind
from ..llm.tiling import TilingConfig, compute_kernel
from ..metrics.merge_stats import MergeStats
from ..metrics.timeline import Timeline
from ..nvls.engine import NvlsEngine
from ..obs import (current_causality, current_metrics, current_request_log,
                   current_timeseries, current_tracer)
from ..obs.causality import BARRIER_SYNC
from ..obs.critical_path import CriticalPath, annotate_tracer, \
    extract_critical_path
from ..obs.timeseries import annotate_windows


@dataclass
class RunResult:
    """Outcome of running one workload graph (or graph sequence)."""

    system: str
    makespan_ns: float
    compute_ns: float
    tbs_completed: int
    events: int
    merge_stats: Optional[MergeStats] = None
    network: Optional[Network] = None
    #: Mean fraction of SM slot capacity occupied across GPUs — the paper's
    #: Section II observation: "GPU utilization can drop below 60%, even
    #: when NVLS is enabled".
    gpu_utilization: float = 0.0
    #: Per-kernel spans (launch -> completion) for Gantt-style breakdowns.
    timeline: Optional[Timeline] = None
    #: The observability registry active during the run (None when metrics
    #: were disabled); folded into JSON exports by ``metrics/export.py``.
    metrics: Optional[object] = None
    details: Dict[str, float] = field(default_factory=dict)
    #: Makespan attribution (repro.obs.critical_path), populated only when
    #: a causality recorder was installed for the run; the per-category
    #: nanoseconds also land in ``details`` under ``explain.<category>``.
    critical_path: Optional[CriticalPath] = None
    #: Windowed time-series sink active during the run (None when the sink
    #: was disabled); consumed by ``repro report``.
    timeseries: Optional[object] = None
    #: Per-request span log (serving workloads only, None when disabled).
    request_log: Optional[object] = None

    def average_bandwidth_utilization(self) -> float:
        """Mean utilization across all links and both directions, over the
        whole run (the Fig. 15 metric) — a system that serializes compute
        and communication phases leaves its links idle during compute and
        scores lower than one that overlaps them."""
        if self.network is None or self.makespan_ns <= 0:
            return 0.0
        return self.network.average_utilization(0.0, self.makespan_ns)

    def headline(self) -> Dict[str, float]:
        """Deterministic headline scalars, keyed exactly like the matrix
        path's :func:`repro.experiments.ledger.summary_metrics`, so a
        direct-CLI run and the identical ``SimTask`` append
        interchangeable ledger records."""
        link_bytes = 0
        if self.network is not None:
            link_bytes = sum(link.tracker.bytes_transferred
                             for link in self.network.all_links())
        return {
            "makespan_ns": self.makespan_ns,
            "compute_ns": self.compute_ns,
            "tbs_completed": self.tbs_completed,
            "events": self.events,
            "gpu_utilization": self.gpu_utilization,
            "avg_bandwidth_utilization":
                self.average_bandwidth_utilization(),
            "link_bytes_total": link_bytes,
        }


class Harness:
    """One simulated node configured for a specific system."""

    def __init__(self, config: SystemConfig, *,
                 nvls: bool = False,
                 merge: bool = False,
                 merge_capacity: Optional[int] = "spec",
                 merge_timeout: Optional[float] = "spec",
                 merge_eviction_policy: str = "lru",
                 sync_tables: bool = False,
                 traffic_control: bool = False,
                 throttle_window: Optional[int] = None,
                 reduce_queue_limit: Optional[int] = None,
                 fair_share: bool = False,
                 jitter: bool = True,
                 local_value_fn=None):
        self.config = config
        self.sim = Simulator()
        # Fast-path opt-in (DESIGN.md §11): fault injection rules out both
        # batched link windows (a mid-window fault could not unwind a
        # committed serialization) and the analytic collective bypass.
        self.network = Network(self.sim, config,
                               traffic_control=traffic_control,
                               allow_fastpath=not config.faults.enabled)
        #: Functional payloads force the event path: the analytic bypass
        #: replays timing and counters, not data values.
        self.local_values = local_value_fn is not None
        #: Collectives currently observed or replayed by the analytic
        #: fast-path; its eligibility gate requires this to be zero.
        self.fastpath_inflight = 0
        self.fastpath_comms: List[object] = []
        #: Per-node signature table for the analytic fast-path — scoped
        #: here so runs stay deterministic regardless of process history.
        self.fastpath_signatures: Dict[tuple, object] = {}
        # Fault injection (repro.faults): the state object is threaded
        # through every resilience-aware component; None keeps the
        # fault-free construction path untouched.
        self.fault_state: Optional[FaultState] = None
        self.fault_schedule: Optional[FaultSchedule] = None
        if config.faults.enabled:
            self.fault_state = FaultState(self.sim, config.faults)
            self.fault_schedule = FaultSchedule.build(config)
        self.merge_stats: Optional[MergeStats] = None
        if merge:
            self.merge_stats = MergeStats()
            capacity = (config.switch.merge_table_entries
                        if merge_capacity == "spec" else merge_capacity)
            timeout = (config.switch.merge_timeout_ns
                       if merge_timeout == "spec" else merge_timeout)
            for sw in self.network.switches:
                sw.attach_engine(MergeUnit(
                    self.merge_stats, config.num_gpus,
                    capacity_entries=capacity, timeout_ns=timeout,
                    emit_credits=throttle_window is not None,
                    eviction_policy=merge_eviction_policy,
                    fault_state=self.fault_state))
        if nvls:
            for sw in self.network.switches:
                sw.attach_engine(NvlsEngine(fault_state=self.fault_state))
        if sync_tables:
            for sw in self.network.switches:
                sw.attach_engine(GroupSyncTable())
        self.executor = Executor(self.sim, config, self.network,
                                 local_value_fn=local_value_fn,
                                 throttle_window=throttle_window,
                                 jitter_enabled=jitter,
                                 fair_share=fair_share,
                                 reduce_queue_limit=reduce_queue_limit,
                                 fault_state=self.fault_state)
        self.timeline = Timeline()
        self.executor.timeline = self.timeline
        # Outstanding-work diagnostics: registered unconditionally (they are
        # only consulted when a stall is being turned into a DeadlockError).
        for gpu in self.executor.gpus:
            self.sim.register_work_reporter(gpu.outstanding_work)
        for sw in self.network.switches:
            self.sim.register_work_reporter(sw.outstanding_work)
        self.sim.register_work_reporter(self._links_outstanding)
        self.fault_injector: Optional[FaultInjector] = None
        if self.fault_state is not None:
            self.fault_injector = FaultInjector(self, self.fault_state,
                                                self.fault_schedule)
            self.fault_injector.install()

    def workload_complete(self) -> None:
        """Notify fault machinery that the workload's last op finished.

        Cancels faults not yet injected plus all resilience timers, so the
        event queue drains and the recorded makespan is the workload's
        completion time, not the fault-schedule horizon.  No-op without
        fault injection.
        """
        if self.fault_injector is not None:
            self.fault_injector.quiesce()

    def _links_outstanding(self) -> str:
        queued = sum(link.queue_depth() for link in self.network.all_links())
        down = sum(1 for link in self.network.all_links() if link.is_down)
        if not queued and not down:
            return ""
        parts = []
        if queued:
            parts.append(f"{queued} queued messages")
        if down:
            parts.append(f"{down} links down")
        return "fabric: " + ", ".join(parts)

    def restrict_compute_slots(self, fraction: float) -> None:
        """Model SM contention from resident communication kernels
        (CoCoNet/FuseLib software overlap): shrink the compute pool."""
        if not 0 < fraction <= 1:
            raise WorkloadError(f"fraction must be in (0,1], got {fraction}")
        for gpu in self.executor.gpus:
            slots = max(1, int(gpu.total_slots * fraction))
            gpu.set_pools({"default": slots})

    def _fastpath_details(self) -> Dict[str, float]:
        """Fast-path activity for this run's details/report (DESIGN.md §11).

        Keys are emitted only when the corresponding layer actually did
        something, so disabled runs produce byte-identical outputs to a
        build that predates the fast-path entirely.
        """
        out: Dict[str, float] = {}
        windows = messages = elided = 0
        for link in self.network.all_links():
            windows += link.fastpath_windows_opened
            messages += link.fastpath_messages
            elided += link.fastpath_events_elided
        if messages:
            out["fastpath.link_windows"] = float(windows)
            out["fastpath.link_messages"] = float(messages)
        analytic = sum(c.analytic_ops for c in self.fastpath_comms)
        calibrations = sum(c.calibrations for c in self.fastpath_comms)
        blacklists = sum(c.blacklists for c in self.fastpath_comms)
        disagreements = sum(c.analytic_disagreements
                            for c in self.fastpath_comms)
        elided += sum(c.events_elided for c in self.fastpath_comms)
        ex = self.executor
        if ex.fastpath_kernels:
            out["fastpath.kernel_launches"] = float(ex.fastpath_kernels)
            elided += ex.fastpath_kernel_events_elided
        if ex.fastpath_kernel_conflicts:
            out["fastpath.kernel_conflicts"] = float(
                ex.fastpath_kernel_conflicts)
        if analytic or calibrations:
            out["fastpath.analytic_ops"] = float(analytic)
            out["fastpath.calibrations"] = float(calibrations)
        if blacklists:
            out["fastpath.blacklists"] = float(blacklists)
        if disagreements:
            out["fastpath.analytic_disagreements"] = float(disagreements)
        if elided:
            out["fastpath.events_elided"] = float(elided)
        return out

    def result(self, system: str, **details: float) -> RunResult:
        makespan = self.sim.now
        gpu_util = (sum(g.utilization(makespan)
                        for g in self.executor.gpus) /
                    len(self.executor.gpus)) if makespan > 0 else 0.0
        # Run teardown: close anything still open so nothing is silently
        # dropped (kernels abandoned by a deadlock or an `until=` cutoff
        # appear flagged instead of vanishing), and publish final engine
        # health gauges.
        self.timeline.flush(makespan)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.flush(makespan)
        self.sim.publish_metrics()
        metrics = current_metrics()
        if self.fault_state is not None:
            merged = self.fault_state.counters.as_details()
            merged.update(details)
            details = merged
        for key, value in self._fastpath_details().items():
            details.setdefault(key, value)
        critical_path: Optional[CriticalPath] = None
        cz = current_causality()
        if cz.enabled and len(cz):
            # Makespan attribution: walk the causal DAG back from the
            # makespan-defining event; verify() guarantees the per-category
            # nanoseconds sum exactly to the makespan.
            critical_path = extract_critical_path(cz, makespan)
            for category, ns in sorted(critical_path.attribution().items()):
                details[f"explain.{category}"] = ns
                if metrics.enabled:
                    metrics.gauge(f"explain.{category}_ns").set(ns)
            if tracer.enabled:
                annotate_tracer(tracer, critical_path)
        ts = current_timeseries()
        if ts.enabled and tracer.enabled:
            annotate_windows(tracer, ts, makespan)
        reqlog = current_request_log()
        return RunResult(system=system, makespan_ns=makespan,
                         compute_ns=self.executor.total_compute_ns,
                         tbs_completed=self.executor.tbs_completed,
                         events=self.sim.events_processed,
                         merge_stats=self.merge_stats,
                         network=self.network,
                         gpu_utilization=gpu_util,
                         timeline=self.timeline,
                         metrics=metrics if metrics.enabled else None,
                         details=dict(details),
                         critical_path=critical_path,
                         timeseries=ts if ts.enabled else None,
                         request_log=reqlog if reqlog.enabled else None)


class CommImpl(Protocol):
    """Collective transport used by barrier/overlap runners."""

    def run(self, kind: CommKind, nbytes: int,
            on_complete: Callable[[], None],
            on_chunk: Optional[Callable[[int, int, int], None]] = None
            ) -> None:
        ...  # pragma: no cover - protocol


class RingComm:
    """Ring transport adapter (CoCoNet / FuseLib / T3 / LADM baselines)."""

    #: Analytic fast-path signature tag (repro.collectives.analytic).
    fastpath_transport = "ring"

    def __init__(self, harness: Harness, chunk_bytes: int = 262144):
        self.chunk_bytes = chunk_bytes
        self.driver = RingCollective(harness.network, harness.executor.gpus,
                                     chunk_bytes=chunk_bytes,
                                     fault_state=harness.fault_state)

    def run(self, kind, nbytes, on_complete, on_chunk=None):
        if kind is CommKind.ALL_REDUCE:
            self.driver.all_reduce(nbytes, on_complete, on_chunk)
        elif kind is CommKind.REDUCE_SCATTER:
            self.driver.reduce_scatter(nbytes, on_complete, on_chunk)
        elif kind is CommKind.ALL_GATHER:
            self.driver.all_gather(nbytes, on_complete, on_chunk)
        else:  # pragma: no cover - enum is exhaustive
            raise WorkloadError(f"unknown collective {kind}")


class NvlsComm:
    """NVLS multimem transport adapter (TP-NVLS / SP-NVLS / *-NVLS).

    Under fault injection the adapter is the graceful-degradation seam:
    when a switch's NVLS compute unit fails, in-flight NVLS runs are
    aborted cleanly and re-executed on a reliable ring transport, and all
    subsequent collectives go straight to the ring.  Every fallback is
    counted in the run's fault counters.
    """

    #: Analytic fast-path signature tag (repro.collectives.analytic).
    fastpath_transport = "nvls"

    def __init__(self, harness: Harness, chunk_bytes: int = 262144):
        self.harness = harness
        self.chunk_bytes = chunk_bytes
        self.driver = NvlsCollective(harness.network, harness.executor.gpus,
                                     chunk_bytes=chunk_bytes)
        self._fault_state = harness.fault_state
        self._ring: Optional[RingCollective] = None
        #: run_id -> (kind, nbytes, on_complete, on_chunk) for runs that
        #: must be replayed on the ring if the NVLS unit dies mid-flight.
        self._active: Dict[int, tuple] = {}
        if self._fault_state is not None:
            self._fault_state.on_nvls_fault(self._abort_active)

    def run(self, kind, nbytes, on_complete, on_chunk=None):
        state = self._fault_state
        if state is None:
            self._dispatch(self.driver, kind, nbytes, on_complete, on_chunk)
            return
        if state.nvls_faulted:
            state.counters.bump("nvls_fallbacks")
            self._dispatch(self._ring_driver(), kind, nbytes, on_complete,
                           on_chunk)
            return
        holder = {}

        def done() -> None:
            self._active.pop(holder.get("id"), None)
            on_complete()

        run_id = self._dispatch(self.driver, kind, nbytes, done, on_chunk)
        holder["id"] = run_id
        self._active[run_id] = (kind, nbytes, on_complete, on_chunk)

    def _dispatch(self, driver, kind, nbytes, on_complete, on_chunk):
        if kind is CommKind.ALL_REDUCE:
            return driver.all_reduce(nbytes, on_complete, on_chunk)
        if kind is CommKind.REDUCE_SCATTER:
            return driver.reduce_scatter(nbytes, on_complete, on_chunk)
        if kind is CommKind.ALL_GATHER:
            return driver.all_gather(nbytes, on_complete, on_chunk)
        raise WorkloadError(f"unknown collective {kind}")
        # pragma: no cover - enum is exhaustive

    def _ring_driver(self) -> RingCollective:
        if self._ring is None:
            self._ring = RingCollective(self.harness.network,
                                        self.harness.executor.gpus,
                                        chunk_bytes=self.chunk_bytes,
                                        fault_state=self._fault_state)
        return self._ring

    def _abort_active(self) -> None:
        """NVLS unit died: abort in-flight runs, replay them on the ring."""
        state = self._fault_state
        for run_id, (kind, nbytes, on_complete, on_chunk) in \
                list(self._active.items()):
            if not self.driver.abort(run_id):
                continue
            del self._active[run_id]
            state.counters.bump("nvls_aborts")
            state.counters.bump("nvls_fallbacks")
            self._dispatch(self._ring_driver(), kind, nbytes, on_complete,
                           on_chunk)


class BarrierRunner:
    """Kernel-barrier execution of a logical graph.

    Each op starts when its graph dependencies complete (parallel branches
    do run concurrently); there is no overlap between a producer kernel and
    its collective — the paper's global-barrier pattern.
    """

    def __init__(self, harness: Harness, comm: CommImpl,
                 tiling: Optional[TilingConfig] = None,
                 launch_overhead_ns: Optional[float] = None):
        self.harness = harness
        self.comm = maybe_fastpath(harness, comm)
        self.tiling = tiling or TilingConfig()
        self.launch_overhead_ns = (
            harness.config.gpu.kernel_launch_overhead_ns
            if launch_overhead_ns is None else launch_overhead_ns)
        self._cz = current_causality()

    def run_graph(self, graph: Graph,
                  on_done: Optional[Callable[[], None]] = None) -> None:
        """Wire the whole graph; completion fires ``on_done``."""
        done: Dict[str, bool] = {op.name: False for op in graph.ops()}
        waiting: Dict[str, int] = {}
        pending = {"count": len(done)}
        # Depth of start() frames on the stack: a collective completing
        # synchronously re-enters finish() below an unfinished start loop,
        # in which case a nested launch is NOT the frame's only activity.
        starting = {"depth": 0}
        cz = self._cz

        def finish(name: str) -> None:
            if cz.enabled:
                # Op boundary: consumers launched below are caused by this
                # completion (the kernel's last TB or the collective's
                # last chunk, carried in as the ambient cause).
                now = self.harness.sim.now
                cz.current = cz.node(BARRIER_SYNC, now, now,
                                     f"op {name} done",
                                     parents=((cz.current, "dep"),))
            done[name] = True
            pending["count"] -= 1
            if pending["count"] == 0 and on_done is not None:
                on_done()
                return
            ready = []
            for consumer in graph.consumers_of(name):
                waiting[consumer.name] -= 1
                if waiting[consumer.name] == 0:
                    ready.append(consumer)
            # A lone successor is the only thing this frame starts, which
            # is what lets the executor's kernel fast-path engage; parallel
            # branches (e.g. dgrad + wgrad) do run concurrently and must
            # take the event path.
            solo = len(ready) == 1 and starting["depth"] == 0
            for consumer in ready:
                start(consumer, solo)

        def start(op: LogicalOp, solo: bool = False) -> None:
            starting["depth"] += 1
            try:
                if op.kind is OpKind.COMM:
                    self.comm.run(op.comm, op.comm_bytes,
                                  lambda name=op.name: finish(name))
                else:
                    kernel = compute_kernel(
                        op, self.harness.config.gpu, self.tiling,
                        launch_overhead_ns=self.launch_overhead_ns)
                    self.harness.executor.launch_kernel(
                        kernel,
                        on_complete=lambda name=op.name: finish(name),
                        isolated=solo)
            finally:
                starting["depth"] -= 1

        order = graph.topo_order()
        for op in order:
            waiting[op.name] = len(op.deps)
        roots = [op for op in order if waiting[op.name] == 0]
        for op in roots:
            start(op, solo=len(roots) == 1)

    def run_graphs(self, graphs: List[Graph],
                   on_done: Optional[Callable[[], None]] = None) -> None:
        """Run graphs strictly in sequence (e.g. forward then backward)."""
        if not graphs:
            raise WorkloadError("no graphs to run")

        def chain(index: int) -> None:
            if index == len(graphs):
                if on_done is not None:
                    on_done()
                return
            self.run_graph(graphs[index], on_done=lambda: chain(index + 1))

        chain(0)
