"""LADM: locality-centric TB scheduling (Khairy et al., MICRO'20).

LADM places thread blocks to maximize data locality *within* a GPU (or
multi-chip module), which reduces remote-access volume by a modest factor,
but it is communication-unaware: there are no collective algorithms, no
in-switch computing, and no compute-communication overlap.  Partial-result
aggregation therefore happens by **direct remote reads**: every GPU pulls
every peer's partial tensor and reduces locally — (K-1) x tensor bytes per
GPU instead of the ~1x an in-switch AllReduce moves.  That traffic blow-up
is why the paper reports CAIS ~7.6x faster (Section V-A).

The locality benefit is modelled as a fraction of remote chunks satisfied
locally (``locality_fraction``).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..common.errors import WorkloadError
from ..gpu.remote_ops import Transport
from ..interconnect.message import Address
from ..llm.graph import CommKind
from .base import Harness

_run_ids = itertools.count(1)
_LADM_BASE = 1 << 58


class DirectComm:
    """Collectives realized as unmerged direct remote reads.

    LADM has no collective library: consumers are replicated and read the
    producer's data remotely on demand, so *every* aggregation — whether a
    graph says AllReduce or ReduceScatter+AllGather — degenerates to each
    GPU pulling every peer's full partial tensor and reducing locally
    ((K-1) x tensor bytes per GPU).  ``locality_fraction`` models the share
    of accesses LADM's placement turns local (it cannot reduce aggregation
    traffic itself — every remote byte is semantically needed).
    """

    def __init__(self, harness: Harness, chunk_bytes: int = 262144,
                 locality_fraction: float = 0.05):
        if not 0 <= locality_fraction < 1:
            raise WorkloadError(
                f"locality_fraction must be in [0,1): {locality_fraction}")
        self.harness = harness
        self.chunk_bytes = chunk_bytes
        self.locality_fraction = locality_fraction
        self.k = harness.config.num_gpus

    def run(self, kind: CommKind, nbytes: int,
            on_complete: Callable[[], None], on_chunk=None) -> None:
        if nbytes <= 0 or nbytes % self.k:
            raise WorkloadError(f"bad collective size {nbytes}")
        run_id = next(_run_ids)
        # Every GPU reads every peer's full partial tensor (AR semantics);
        # RS/AG in the graph are collective *algorithms* LADM cannot run.
        per_peer_bytes = nbytes
        chunks = -(-per_peer_bytes // self.chunk_bytes)
        fetched = max(1, int(round(chunks * (1 - self.locality_fraction))))
        state = {"left": self.k * (self.k - 1) * fetched}

        def one_done(_value) -> None:
            state["left"] -= 1
            if state["left"] == 0:
                on_complete()

        for gpu in self.harness.executor.gpus:
            for peer in range(self.k):
                if peer == gpu.index:
                    continue
                for c in range(fetched):
                    offset = (_LADM_BASE + run_id * (1 << 40) +
                              (gpu.index * self.k + peer) * (1 << 32) +
                              c * self.chunk_bytes)
                    gpu.memory.fetch_remote(
                        Address(peer, offset), self.chunk_bytes,
                        mergeable=False, expected=1, on_ready=one_done)
