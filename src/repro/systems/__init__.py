"""Systems under test: the paper's nine baselines and CAIS variants."""

from .base import (
    BarrierRunner,
    CommImpl,
    Harness,
    NvlsComm,
    RingComm,
    RunResult,
)
from .ladm import DirectComm
from .overlap import OverlapRunner
from .systems import (
    BASELINE_ORDER,
    SYSTEM_CLASSES,
    Cais,
    CaisBase,
    CaisNoCoord,
    CaisPartial,
    CoCoNet,
    CoCoNetNvls,
    FuseLib,
    FuseLibNvls,
    Ladm,
    Session,
    SpNvls,
    System,
    T3,
    T3Nvls,
    TpNvls,
    make_system,
)
from .t3 import T3Runner

__all__ = [
    "BASELINE_ORDER",
    "BarrierRunner",
    "Cais",
    "CaisBase",
    "CaisNoCoord",
    "CaisPartial",
    "CoCoNet",
    "CoCoNetNvls",
    "CommImpl",
    "DirectComm",
    "FuseLib",
    "FuseLibNvls",
    "Harness",
    "Ladm",
    "NvlsComm",
    "OverlapRunner",
    "RingComm",
    "RunResult",
    "SYSTEM_CLASSES",
    "Session",
    "SpNvls",
    "System",
    "T3",
    "T3Nvls",
    "T3Runner",
    "TpNvls",
    "make_system",
]
