"""Unidirectional NVLink model.

A link is a bandwidth server: messages queue, serialize back to back at the
link rate, then arrive after a fixed propagation latency.  Serialization of
the next message overlaps the propagation of the previous one (wormhole-like
pipelining at message granularity).

Two queueing disciplines are supported, matching the paper's traffic-control
ablation (Section III-C, Figs. 15/16):

* **FIFO** (default): a single queue — a burst of large reduction chunks
  head-of-line blocks small load requests behind it.
* **Virtual channels**: one queue per :class:`TrafficClass` with round-robin
  arbitration, which is CAIS's traffic control.

Fast path (batched serialization windows)
-----------------------------------------
A FIFO link with no fault state is a *deterministic* bandwidth server: at
``send()`` time the message's whole trajectory is already decided —
``start = max(link_free, now)``, ``end = start + serialization`` — because
no contending traffic class can reorder the queue and no fault can derate
the rate mid-window.  When :mod:`repro.common.fastpath` enables
``link_windows`` the link exploits this: it keeps a running window-end
cursor instead of a queue, performs all per-chunk accounting (bandwidth
tracker, metrics, queue-delay samples) immediately with the *exact* same
timestamps the event path would produce, and schedules only the delivery —
eliding the per-chunk end-of-serialization events that dominate the event
population.  Legality conditions and the demotion protocol are described in
DESIGN.md §11; round-robin (traffic-control) links and links with any fault
state always use the reference event path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..common.config import LinkSpec
from ..common.errors import SimulationError
from ..common.events import Simulator
from ..metrics.bandwidth import BandwidthTracker
from ..obs import current_causality, current_metrics, current_tracer
from ..obs.causality import LINK_SERIALIZATION, NO_CAUSE
from .message import Message, TrafficClass

_RR_ORDER = (TrafficClass.CONTROL, TrafficClass.LOAD, TrafficClass.REDUCTION)


class Link:
    """One direction of a GPU<->switch NVLink connection.

    ``fastpath_windows=True`` opts the link into the batched-window fast
    path (see module docstring); it silently stays on the reference event
    path when tracing or causal recording is active (their outputs are
    sensitive to event interleaving) and demotes itself permanently the
    moment any fault state appears.
    """

    def __init__(self, sim: Simulator, spec: LinkSpec, name: str,
                 traffic_control: bool = False,
                 fastpath_windows: bool = False):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.traffic_control = traffic_control
        self.tracker = BandwidthTracker()
        #: Set at wiring time; invoked with each delivered message.
        self.deliver: Optional[Callable[[Message], None]] = None
        self._queues: Dict[TrafficClass, Deque[Message]] = {
            tc: deque() for tc in _RR_ORDER}
        self._rr_index = 0
        self._busy = False
        self.peak_queue_depth = 0
        # Fault-injection state (repro.faults): bandwidth derating, transient
        # outage, and a per-message drop/corrupt hook.  Defaults leave the
        # fault-free fast path bit-identical (factor 1.0 multiplies exactly).
        self._bw_factor = 1.0
        self._down = False
        self._fault_hook: Optional[Callable[[Message], bool]] = None
        # Backpressure waiters: (traffic class, threshold, callback).
        self._room_waiters: Deque = deque()
        #: Deliveries scheduled but not yet consumed (wire in flight);
        #: :meth:`idle` needs this for network-quiescence checks.
        self.inflight_deliveries = 0
        # Observability (captured at wiring time; null objects when off).
        self._tr = current_tracer()
        self._mx = current_metrics()
        self._obs_on = self._tr.enabled or self._mx.enabled
        self._track = (self._tr.track("Fabric", name)
                       if self._tr.enabled else 0)
        if self._mx.enabled:
            self._h_qdelay = self._mx.histogram("link.queue_delay_ns")
            self._c_msgs = self._mx.counter("link.messages")
            self._c_bytes = self._mx.counter("link.bytes")
            self._g_qdepth = self._mx.gauge("link.peak_queue_depth")
            self._c_fp_windows = self._mx.counter("sim.fastpath.link_windows")
            self._c_fp_elided = self._mx.counter("sim.fastpath.events_elided")
        # msg id -> enqueue time, for queueing-delay accounting; entries
        # live only while the message sits in a queue, so ids are stable.
        self._enqueued_at: Dict[int, float] = {}
        self._tx_span = -1
        # Causal recording (repro.obs.causality): the cause ambient at
        # send() is remembered per queued message; serialization becomes a
        # node whose "queue" edge charges HOL wait, and the delivery event
        # inherits that node so receivers see the wire as their cause.
        self._cz = current_causality()
        self._cz_pending: Dict[int, int] = {}
        self._cz_tx = NO_CAUSE
        # Fused downstream hop: (dispatch, port, hop_ns), wired by the
        # Network when the receiver is a switch and fusing is legal.
        self._fused_hop: Optional[Tuple[Callable[..., None], int, float]] = \
            None
        # Batched-window fast-path state.
        self._lazy = (fastpath_windows and not traffic_control
                      and not self._tr.enabled and not self._cz.enabled)
        self._free_at = 0.0             # window-end cursor
        self._pending_starts: Deque[float] = deque()
        self._boundary_armed = False
        #: Fast-path accounting (always-on plain ints, aggregated by the
        #: harness into engine-throughput observability).
        self.fastpath_windows_opened = 0
        self.fastpath_messages = 0
        self.fastpath_events_elided = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Enqueue ``msg`` for transmission."""
        if self._lazy:
            self._send_lazy(msg)
            return
        if self.deliver is None:
            raise SimulationError(f"link {self.name} is not wired")
        queue = self._queue_for(msg)
        queue.append(msg)
        depth = sum(len(q) for q in self._queues.values())
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        if self._obs_on:
            now = self.sim.now
            self._enqueued_at[id(msg)] = now
            if self._tr.enabled:
                self._tr.counter(self._track, "queue_depth", now, depth)
            if self._mx.enabled:
                self._g_qdepth.set(self.peak_queue_depth)
        if self._cz.enabled:
            self._cz_pending[id(msg)] = self._cz.current
        if not self._busy:
            self._start_next()

    def _send_lazy(self, msg: Message) -> None:
        """Fast path: commit the message's serialization window now.

        Produces the exact per-chunk timestamps of the event path — the
        window start is the event path's serialization-start instant, the
        end is ``start + wire_bytes/bandwidth`` with identical float
        arithmetic — but schedules only the delivery event.
        """
        if self.deliver is None:
            raise SimulationError(f"link {self.name} is not wired")
        sim = self.sim
        now = sim.now
        wire = msg.wire_bytes()
        serialization = wire / self.spec.bandwidth_gbps
        start = self._free_at
        if start <= now:
            start = now
            self.fastpath_windows_opened += 1
            if self._mx.enabled:
                self._c_fp_windows.inc()
        end = start + serialization
        self._free_at = end
        self.tracker.record(start, end, wire)
        # Queue-depth accounting mirrors the event path: the new message
        # counts at send time (even when it starts immediately), waiting
        # messages are those whose window hasn't opened yet.
        pending = self._pending_starts
        while pending and pending[0] <= now:
            pending.popleft()
        depth = len(pending) + 1
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        if start > now:
            pending.append(start)
        if self._mx.enabled:
            # Same values in the same (FIFO = send) order as the event
            # path records them at each service start.
            self._h_qdelay.record(start - now)
            self._c_msgs.inc()
            self._c_bytes.inc(wire)
            self._g_qdepth.set(self.peak_queue_depth)
            self._c_fp_elided.inc()
        self.fastpath_messages += 1
        self.fastpath_events_elided += 1
        self.inflight_deliveries += 1
        # Delivery at end + latency, with the event path's association
        # order: (start + ser) computed first, then + latency [, then
        # + hop].  One event instead of two (or three when fused).
        fused = self._fused_hop
        if fused is not None:
            self.fastpath_events_elided += 1
            if self._mx.enabled:
                self._c_fp_elided.inc()
            arrival = end + self.spec.latency_ns
            sim.schedule_at(arrival + fused[2], self._deliver_fused, msg)
        else:
            sim.schedule_at(end + self.spec.latency_ns,
                            self._deliver_event, msg)

    def queue_depth(self, traffic_class: Optional[TrafficClass] = None) -> int:
        """Messages currently waiting (not including the one serializing)."""
        if self._lazy:
            pending = self._pending_starts
            now = self.sim.now
            while pending and pending[0] <= now:
                pending.popleft()
            return len(pending)
        if traffic_class is not None and self.traffic_control:
            return len(self._queues[traffic_class])
        return sum(len(q) for q in self._queues.values())

    def wait_for_room(self, traffic_class: TrafficClass, limit: int,
                      callback: Callable[[], None]) -> None:
        """Run ``callback`` once the class's queue is below ``limit``.

        This is the finite-virtual-channel backpressure that CAIS's
        TB-aware request throttling rides on: an issuing TB stalls while
        its reduction VC is full, so no GPU's request stream runs ahead of
        its peers by more than the VC depth.
        """
        if limit < 1:
            raise SimulationError(f"backpressure limit must be >= 1")
        if self.queue_depth(traffic_class) < limit:
            callback()
        else:
            self._room_waiters.append((traffic_class, limit, callback))
            if self._lazy:
                self._arm_boundary()

    def _admit_waiters(self) -> None:
        while self._room_waiters:
            traffic_class, limit, callback = self._room_waiters[0]
            if self.queue_depth(traffic_class) >= limit:
                return
            self._room_waiters.popleft()
            callback()

    def _arm_boundary(self) -> None:
        """Schedule a waiter re-check at the next window-open instant.

        Window opens are exactly the instants the event path pops the next
        message off the queue (end of the previous serialization), so
        admission times match the event path.
        """
        if self._boundary_armed or not self._pending_starts:
            return
        self._boundary_armed = True
        self.sim.schedule_at(self._pending_starts[0], self._on_boundary)

    def _on_boundary(self) -> None:
        self._boundary_armed = False
        self._admit_waiters()
        if self._room_waiters:
            self._arm_boundary()

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_bandwidth_factor(self, factor: float) -> None:
        """Derate (or restore) the link rate; applies to future messages."""
        if factor <= 0.0:
            raise SimulationError(
                f"link {self.name}: bandwidth factor must be > 0, "
                f"got {factor}")
        self._demote()
        self._bw_factor = factor

    def set_down(self, down: bool) -> None:
        """Take the link out of (or back into) service.

        A message already serializing finishes (committed flits drain) but
        nothing new starts; queued traffic resumes when the link comes up.
        """
        self._demote()
        self._down = down
        if not down and not self._busy:
            self._start_next()

    @property
    def fault_hook(self) -> Optional[Callable[[Message], bool]]:
        """Per-message drop/corrupt hook; installing one demotes the link
        off the batched-window fast path (windows cannot be unwound)."""
        return self._fault_hook

    @fault_hook.setter
    def fault_hook(self, hook: Optional[Callable[[Message], bool]]) -> None:
        if hook is not None:
            self._demote()
        self._fault_hook = hook

    @property
    def is_down(self) -> bool:
        return self._down

    def _demote(self) -> None:
        """Leave the batched-window fast path permanently.

        Windows already committed (delivery events scheduled) drain at
        their committed times — the fast path is only ever enabled for
        fault-free harnesses, so demotion mid-traffic can only happen via
        direct API use; the link stays busy until the committed cursor
        passes and the event path takes over from there.
        """
        if not self._lazy:
            return
        self._lazy = False
        self._pending_starts.clear()
        self._boundary_armed = False
        if self._free_at > self.sim.now:
            self._busy = True
            self.sim.schedule_at(self._free_at, self._drain_committed)

    def _drain_committed(self) -> None:
        self._busy = False
        if not self._down:
            self._start_next()
        self._admit_waiters()

    # ------------------------------------------------------------------
    # Quiescence
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """No message queued, serializing, or on the wire."""
        if self.inflight_deliveries:
            return False
        if self._lazy:
            return self._free_at <= self.sim.now
        return (not self._busy
                and not any(self._queues.values()))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _queue_for(self, msg: Message) -> Deque[Message]:
        if self.traffic_control:
            return self._queues[msg.traffic_class]
        return self._queues[TrafficClass.CONTROL]   # single shared FIFO

    def _pick_next(self) -> Optional[Message]:
        if not self.traffic_control:
            queue = self._queues[TrafficClass.CONTROL]
            return queue.popleft() if queue else None
        # Round-robin across non-empty classes, continuing after the class
        # served last so no class starves (paper: RR arbitration between the
        # load and reduction virtual channels).
        for step in range(len(_RR_ORDER)):
            idx = (self._rr_index + step) % len(_RR_ORDER)
            queue = self._queues[_RR_ORDER[idx]]
            if queue:
                self._rr_index = (idx + 1) % len(_RR_ORDER)
                return queue.popleft()
        return None

    def _start_next(self) -> None:
        if self._down:
            self._busy = False
            return
        msg = self._pick_next()
        if msg is None:
            self._busy = False
            return
        self._busy = True
        bandwidth = self.spec.bandwidth_gbps
        if self._bw_factor != 1.0:
            bandwidth *= self._bw_factor
        serialization = msg.wire_bytes() / bandwidth
        now = self.sim.now
        self.tracker.record(now, now + serialization, msg.wire_bytes())
        if self._obs_on:
            enq = self._enqueued_at.pop(id(msg), now)
            if self._mx.enabled:
                self._h_qdelay.record(now - enq)
                self._c_msgs.inc()
                self._c_bytes.inc(msg.wire_bytes())
            if self._tr.enabled:
                self._tx_span = self._tr.begin(
                    self._track, f"tx {msg.op.value}", now, cat="link",
                    args={"bytes": msg.wire_bytes(),
                          "queued_ns": now - enq})
        if self._cz.enabled:
            self._cz_tx = self._cz.node(
                LINK_SERIALIZATION, now, now + serialization,
                f"tx {msg.op.value} {self.name}",
                parents=((self._cz_pending.pop(id(msg), NO_CAUSE),
                          "queue"),))
        self.sim.schedule(serialization, self._on_serialized, msg)

    def _deliver_event(self, msg: Message) -> None:
        self.inflight_deliveries -= 1
        self.deliver(msg)

    def _deliver_fused(self, msg: Message) -> None:
        """Delivery fused with the downstream switch hop: the message is
        handed straight to the switch's dispatch at arrival + hop time."""
        self.inflight_deliveries -= 1
        fused = self._fused_hop
        fused[0](msg, fused[1])

    def _on_serialized(self, msg: Message) -> None:
        if self._tr.enabled and self._tx_span >= 0:
            self._tr.end(self._tx_span, self.sim.now)
            self._tx_span = -1
        # Downstream events — the delivery, any retransmission timers the
        # fault hook arms, and waiters resumed by the link freeing up — are
        # all caused by this transmission (one message serializes at a
        # time, so the single saved node id is the right one).
        if self._cz.enabled:
            self._cz.current = self._cz_tx
        # The fault hook may drop the message on the wire (True) or mark it
        # corrupted in place; either way link-level bandwidth was consumed.
        if self._fault_hook is None or not self._fault_hook(msg):
            fused = self._fused_hop
            self.inflight_deliveries += 1
            if fused is not None:
                # Same association order as the unfused path: arrival =
                # (end + latency), dispatch at arrival + hop.
                arrival = self.sim.now + self.spec.latency_ns
                self.fastpath_events_elided += 1
                if self._mx.enabled:
                    self._c_fp_elided.inc()
                self.sim.schedule_at(arrival + fused[2],
                                     self._deliver_fused, msg)
            else:
                self.sim.schedule(self.spec.latency_ns,
                                  self._deliver_event, msg)
        self._start_next()
        self._admit_waiters()
