"""Topology descriptions for the simulated node (paper Section IV-A).

The evaluated machine replicates a DGX-H100: every GPU connects to every
NVSwitch plane with one bidirectional link.  :class:`Topology` is the
declarative description (who connects to whom, with what link spec);
:class:`~repro.interconnect.network.Network` instantiates it.  Scaled
variants (16/32 GPUs for Fig. 17) keep the 4-plane fully-connected shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..common.config import LinkSpec, SystemConfig
from ..common.errors import ConfigError


@dataclass(frozen=True)
class Topology:
    """A bipartite GPU<->switch wiring description."""

    num_gpus: int
    num_switches: int
    link: LinkSpec

    def __post_init__(self) -> None:
        if self.num_gpus < 2 or self.num_switches < 1:
            raise ConfigError(f"invalid topology {self}")

    def links(self) -> List[Tuple[int, int]]:
        """Every (gpu, switch) pair that is wired (fully connected)."""
        return [(g, s) for g in range(self.num_gpus)
                for s in range(self.num_switches)]

    def bisection_bandwidth_gbps(self) -> float:
        """One-direction bisection bandwidth of the fabric in GB/s.

        Splitting the GPUs in half, all traffic crosses through the switch
        planes; each half drives ``num_gpus/2`` GPU-side links per plane.
        """
        return (self.num_gpus / 2) * self.num_switches * \
            self.link.bandwidth_gbps

    def per_gpu_bandwidth_gbps(self) -> float:
        """Aggregate one-direction bandwidth of one GPU (all planes)."""
        return self.num_switches * self.link.bandwidth_gbps


def dgx_h100_topology(config: SystemConfig) -> Topology:
    """The DGX-H100-like wiring the paper simulates."""
    return Topology(num_gpus=config.num_gpus,
                    num_switches=config.num_switches, link=config.link)
