"""The interconnect fabric: GPUs x switch planes, fully wired.

Replicates the DGX-H100 topology the paper simulates (Section IV-A): every
GPU has one bidirectional link to each of the 4 NVSwitch planes.  Addressed
traffic picks its plane with the deterministic address hash (so mergeable
requests converge); unaddressed traffic stripes round-robin.

GPU-side endpoints are registered by the GPU model (or by test stubs) — the
fabric only requires a ``receive(msg)`` callable per GPU.

Causal recording (:mod:`repro.obs.causality`) needs no explicit threading
here: a message injected via :meth:`Network.send_from_gpu` is enqueued on
an up link under the sender's ambient cause, each link transmission becomes
a ``link_serialization`` node, each switch hop a node categorized by the
consumed op, and delivery events carry the producing node as their ambient
cause — so the fabric propagates cause ids end to end through the ordinary
event flow, including across plane reroutes after a fault.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..common import fastpath
from ..common.config import SystemConfig
from ..common.errors import RoutingError, SimulationError
from ..common.events import Simulator
from ..obs import current_causality, current_tracer
from .link import Link
from .message import Address, Message
from .routing import plane_for_address, plane_for_stripe
from .switch import Switch


class Network:
    """All links and switches of one multi-GPU node.

    ``allow_fastpath`` opts the fabric into the batched-link-window layer
    (:mod:`repro.common.fastpath`): harnesses pass False when fault
    injection is configured, since committed serialization windows cannot
    be unwound by a mid-window fault.  The layer additionally stands down
    by itself when tracing or causal recording is active (their outputs
    depend on event interleaving) or when the global config disables it.
    """

    def __init__(self, sim: Simulator, config: SystemConfig,
                 traffic_control: bool = False,
                 allow_fastpath: bool = True):
        self.sim = sim
        self.config = config
        self.traffic_control = traffic_control
        self.fastpath_windows = (
            allow_fastpath and fastpath.config().link_windows
            and not current_tracer().enabled
            and not current_causality().enabled)
        self.switches: List[Switch] = [
            Switch(sim, config.switch, s, config.num_gpus)
            for s in range(config.num_switches)
        ]
        self._gpu_receivers: Dict[int, Callable[[Message], None]] = {}
        # Fault-injection state: planes taken out of service and the
        # deterministic remap of new traffic onto the survivors.
        self._failed_planes: Set[int] = set()
        self._healthy_planes: List[int] = list(range(config.num_switches))
        self.reroutes = 0
        # Links keyed by (gpu, switch): "up" is GPU -> switch, "down" is
        # switch -> GPU.
        self.up_links: Dict[Tuple[int, int], Link] = {}
        self.down_links: Dict[Tuple[int, int], Link] = {}
        fp = self.fastpath_windows
        for g in range(config.num_gpus):
            for s in range(config.num_switches):
                up = Link(sim, config.link, f"gpu{g}->sw{s}",
                          traffic_control=traffic_control,
                          fastpath_windows=fp)
                # Bind loop variables explicitly; a bare lambda would close
                # over the loop cell and mis-deliver every message.
                up.deliver = self._make_switch_delivery(s, g)
                if fp:
                    # Fuse the wire delivery with the switch's fixed hop:
                    # one event carries the message straight to dispatch.
                    up._fused_hop = (self.switches[s]._dispatch, g,
                                     config.switch.hop_latency_ns)
                self.up_links[(g, s)] = up

                down = Link(sim, config.link, f"sw{s}->gpu{g}",
                            traffic_control=traffic_control,
                            fastpath_windows=fp)
                down.deliver = self._make_gpu_delivery(g)
                self.down_links[(g, s)] = down
                self.switches[s].down_links[g] = down

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _make_switch_delivery(self, switch_index: int,
                              gpu_index: int) -> Callable[[Message], None]:
        switch = self.switches[switch_index]
        return lambda msg: switch.receive(msg, gpu_index)

    def _make_gpu_delivery(self, gpu_index: int) -> Callable[[Message], None]:
        def deliver(msg: Message) -> None:
            receiver = self._gpu_receivers.get(gpu_index)
            if receiver is None:
                raise SimulationError(
                    f"no receiver registered for GPU {gpu_index}")
            receiver(msg)
        return deliver

    def register_gpu(self, gpu_index: int,
                     receiver: Callable[[Message], None]) -> None:
        """Attach the endpoint that consumes messages delivered to a GPU."""
        if not 0 <= gpu_index < self.config.num_gpus:
            raise RoutingError(f"no such GPU: {gpu_index}")
        self._gpu_receivers[gpu_index] = receiver

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_plane(self, plane: int) -> None:
        """Remove a switch plane from service for all *new* injections.

        In-flight traffic on the plane still drains (the switch keeps
        forwarding; its compute engines are failed separately), which gives
        sessions already homed there a graceful exit.  The last healthy
        plane can never be failed.
        """
        if plane in self._failed_planes:
            return
        survivors = [s for s in range(self.config.num_switches)
                     if s != plane and s not in self._failed_planes]
        if not survivors:
            raise SimulationError(
                f"cannot fail switch plane {plane}: it is the last "
                f"healthy plane")
        self._failed_planes.add(plane)
        self._healthy_planes = survivors

    def route_plane(self, plane: int) -> int:
        """Steer a nominal plane choice around failed planes.

        The remap is a pure function of the nominal plane and the shared
        failed set, so every GPU redirects a given address to the *same*
        surviving plane — mergeable traffic still converges.
        """
        if plane not in self._failed_planes:
            return plane
        self.reroutes += 1
        healthy = self._healthy_planes
        return healthy[plane % len(healthy)]

    @property
    def failed_planes(self) -> Set[int]:
        return set(self._failed_planes)

    def install_fault_hook(
            self, hook: Callable[[Message], bool]) -> None:
        """Arm the per-message drop/corrupt hook on every link."""
        for link in self.all_links():
            link.fault_hook = hook

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def plane_for(self, msg: Message, stripe: Optional[int] = None) -> int:
        """Switch plane a message travels through."""
        if msg.address is not None:
            plane = plane_for_address(msg.address, self.config.num_switches)
        else:
            plane = plane_for_stripe(
                stripe if stripe is not None else msg.msg_id,
                self.config.num_switches)
        if self._failed_planes:
            plane = self.route_plane(plane)
        return plane

    def send_from_gpu(self, gpu_index: int, msg: Message,
                      stripe: Optional[int] = None) -> int:
        """Inject ``msg`` from GPU ``gpu_index``; returns the plane used."""
        plane = self.plane_for(msg, stripe)
        self.up_links[(gpu_index, plane)].send(msg)
        return plane

    # ------------------------------------------------------------------
    # Quiescence
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """No message queued, serializing, on a wire, in a switch hop, or
        held by an open in-switch engine session.

        The analytic collective bypass (DESIGN.md §11) requires this
        before it may replay a calibrated phase: any concurrent traffic
        would contend for link bandwidth and invalidate the closed form.
        """
        for link in self.up_links.values():
            if not link.idle():
                return False
        for link in self.down_links.values():
            if not link.idle():
                return False
        for switch in self.switches:
            if switch.inflight_hops or not switch.engines_idle():
                return False
        return True

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def all_links(self) -> List[Link]:
        """Every link in the fabric (both directions)."""
        return list(self.up_links.values()) + list(self.down_links.values())

    def average_utilization(self, t0: float, t1: float) -> float:
        """Mean utilization across all links and both directions (Fig. 15)."""
        links = self.all_links()
        return sum(l.tracker.utilization(t0, t1) for l in links) / len(links)

    def active_span(self) -> Tuple[float, float]:
        """[first activity, last activity] across the whole fabric."""
        links = [l for l in self.all_links() if l.tracker.messages]
        if not links:
            return (0.0, 0.0)
        return (min(l.tracker.first_activity() for l in links),
                max(l.tracker.last_activity() for l in links))
