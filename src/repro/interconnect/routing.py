"""Deterministic routing across NVSwitch planes (paper Section III-A-5).

Mergeable requests to the same address must converge at the same switch, so
CAIS uses a deterministic hash of the request address to pick the plane.
LLM workloads issue regular, evenly distributed chunk addresses, so the hash
also balances load across the four planes.

We reuse the same scheme for all addressed traffic (plain, NVLS and CAIS),
which matches how NVSwitch systems stripe by address.  Unaddressed traffic
(e.g. ring-collective sends) is striped round-robin by chunk index through
:func:`plane_for_stripe`.
"""

from __future__ import annotations

from .message import Address

#: Plane-interleave granularity: consecutive 8 KiB regions rotate planes,
#: the address-interleaved striping real NVSwitch systems use.  A hash
#: would satisfy the paper's "lightweight hash on the request address" just
#: as well, but at chunk granularity its binomial imbalance leaves the
#: busiest plane ~10-15% over average and distorts every bandwidth-bound
#: comparison; deterministic interleave matches hardware behaviour.
INTERLEAVE_SHIFT = 13


def plane_for_address(address: Address, num_planes: int) -> int:
    """Switch plane responsible for ``address``.

    Deterministic: every request for the same address — from any GPU —
    returns the same plane, guaranteeing merge convergence.  The region
    index is folded at several scales before the modulo so that chunk
    streams with power-of-two strides (32 KB tiles, 1 MB row blocks, ...)
    still rotate evenly across planes instead of aliasing onto one.
    """
    if num_planes <= 0:
        raise ValueError(f"num_planes must be positive, got {num_planes}")
    region = address.offset >> INTERLEAVE_SHIFT
    folded = (region + (region >> 2) + (region >> 4) + (region >> 6) +
              (region >> 8) + (region >> 10) + (region >> 12))
    return (folded + address.home_gpu) % num_planes


def plane_for_stripe(stripe_index: int, num_planes: int) -> int:
    """Plane for the ``stripe_index``-th chunk of an unaddressed stream."""
    if num_planes <= 0:
        raise ValueError(f"num_planes must be positive, got {num_planes}")
    return stripe_index % num_planes
