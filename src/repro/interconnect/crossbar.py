"""Flit-level input-queued crossbar switch (the BookSim-fidelity model).

The main fabric (:mod:`repro.interconnect.network`) models contention at
message granularity for speed.  This module provides the detailed model the
paper's BookSim2 substrate corresponds to — virtual-channel input queues
with credit flow control, per-output round-robin arbitration, one flit per
port per cycle — so the message-granular approximation can be *validated*
against it (see ``tests/unit/test_crossbar.py``: single-flow latency, fair
sharing, permutation throughput, and the head-of-line-blocking effect that
motivates virtual channels).

It is intentionally self-contained (its own injectors/sinks) and used for
micro-validation, not inside the end-to-end experiments: flit-level Python
simulation of a full LLM layer would take hours.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..common.config import LinkSpec, SwitchSpec
from ..common.errors import ConfigError, SimulationError
from ..common.events import Simulator


@dataclass
class CrossbarMessage:
    """A message injected into the crossbar."""

    msg_id: int
    in_port: int
    out_port: int
    nbytes: int
    vc: int = 0
    inject_time: float = -1.0
    deliver_time: float = -1.0


@dataclass
class _Flit:
    msg: CrossbarMessage
    is_tail: bool


class CrossbarSwitch:
    """An input-queued, virtual-channel, credit-flow-controlled crossbar.

    Time advances in flit cycles (one flit per port per direction per
    cycle at the link rate).  Per cycle:

    1. each output port's round-robin arbiter grants one requesting
       (input, VC) whose head flit targets it;
    2. granted flits traverse; tail flits complete their message and fire
       the output's delivery callback;
    3. freed buffer slots return credits to the injectors, which feed more
       flits into the input VCs.
    """

    def __init__(self, sim: Simulator, switch_spec: SwitchSpec,
                 link_spec: LinkSpec, num_ports: int):
        if num_ports < 2:
            raise ConfigError(f"need >= 2 ports, got {num_ports}")
        self.sim = sim
        self.spec = switch_spec
        self.link = link_spec
        self.num_ports = num_ports
        self.cycle_ns = link_spec.flit_bytes / link_spec.bandwidth_gbps
        # input port -> vc -> buffered flits (finite: vc_depth).
        self._vcs: List[List[Deque[_Flit]]] = [
            [deque() for _ in range(switch_spec.num_vcs)]
            for _ in range(num_ports)]
        # Per-VC pending injection queues: the upstream wire interleaves
        # flits of different VCs (virtual-channel flow control), so a
        # message stalled on a full VC does not block other VCs' traffic
        # at the source.
        self._pending: List[List[Deque[_Flit]]] = [
            [deque() for _ in range(switch_spec.num_vcs)]
            for _ in range(num_ports)]
        self._rr: List[int] = [0] * num_ports      # per-output arbiter state
        self._vc_rr: List[int] = [0] * num_ports   # per-input VC pick state
        self._inj_rr: List[int] = [0] * num_ports  # per-input wire VC state
        self._deliver: Dict[int, Callable[[CrossbarMessage], None]] = {}
        self._next_id = 0
        self._tick_armed = False
        self.flits_switched = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Configuration / injection
    # ------------------------------------------------------------------
    def set_delivery(self, out_port: int,
                     callback: Callable[[CrossbarMessage], None]) -> None:
        self._deliver[out_port] = callback

    def inject(self, in_port: int, out_port: int, nbytes: int,
               vc: Optional[int] = None) -> CrossbarMessage:
        """Queue a message for injection at ``in_port``."""
        if not 0 <= in_port < self.num_ports or \
                not 0 <= out_port < self.num_ports:
            raise SimulationError(f"bad ports {in_port}->{out_port}")
        chosen_vc = (out_port % self.spec.num_vcs) if vc is None else vc
        if not 0 <= chosen_vc < self.spec.num_vcs:
            raise SimulationError(f"bad VC {chosen_vc}")
        msg = CrossbarMessage(msg_id=self._next_id, in_port=in_port,
                              out_port=out_port, nbytes=nbytes,
                              vc=chosen_vc, inject_time=self.sim.now)
        self._next_id += 1
        flits = max(1, -(-nbytes // self.link.flit_bytes))
        for i in range(flits):
            self._pending[in_port][chosen_vc].append(
                _Flit(msg=msg, is_tail=(i == flits - 1)))
        self._arm()
        return msg

    # ------------------------------------------------------------------
    # Cycle engine
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        if not self._tick_armed:
            self._tick_armed = True
            self.sim.schedule(self.cycle_ns, self._tick)

    def _has_work(self) -> bool:
        return (any(vc for port in self._pending for vc in port) or
                any(vc for port in self._vcs for vc in port))

    def _tick(self) -> None:
        self._tick_armed = False
        # Phase 1: per-output arbitration over input VCs' head flits.
        granted: List[Tuple[int, int]] = []       # (in_port, vc)
        for out in range(self.num_ports):
            start = self._rr[out]
            for step in range(self.num_ports):
                in_port = (start + step) % self.num_ports
                vc_index = self._head_vc_for(in_port, out)
                if vc_index is not None:
                    granted.append((in_port, vc_index))
                    self._rr[out] = (in_port + 1) % self.num_ports
                    break
        # Phase 2: traverse granted flits.
        for in_port, vc_index in granted:
            flit = self._vcs[in_port][vc_index].popleft()
            self.flits_switched += 1
            if flit.is_tail:
                flit.msg.deliver_time = self.sim.now
                self.messages_delivered += 1
                callback = self._deliver.get(flit.msg.out_port)
                if callback is not None:
                    callback(flit.msg)
        # Phase 3: credits freed -> refill input VCs from injection queues.
        for in_port in range(self.num_ports):
            self._refill(in_port)
        if self._has_work():
            self._arm()

    def _head_vc_for(self, in_port: int, out_port: int) -> Optional[int]:
        """The next VC (round-robin) whose head flit targets ``out_port``."""
        vcs = self._vcs[in_port]
        start = self._vc_rr[in_port]
        for step in range(len(vcs)):
            idx = (start + step) % len(vcs)
            if vcs[idx] and vcs[idx][0].msg.out_port == out_port:
                self._vc_rr[in_port] = (idx + 1) % len(vcs)
                return idx
        return None

    def _refill(self, in_port: int) -> None:
        """Deliver at most one upstream flit into this port's buffers.

        The wire carries one flit per cycle, round-robining across the VCs
        that both have pending flits and downstream credits — a VC stalled
        on a full buffer does not block the wire for other VCs.
        """
        queues = self._pending[in_port]
        start = self._inj_rr[in_port]
        for step in range(len(queues)):
            idx = (start + step) % len(queues)
            pending = queues[idx]
            if not pending:
                continue
            vc = self._vcs[in_port][pending[0].msg.vc]
            if len(vc) < self.spec.vc_depth:
                vc.append(pending.popleft())
                self._inj_rr[in_port] = (idx + 1) % len(queues)
                return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def vc_occupancy(self, in_port: int, vc: int) -> int:
        return len(self._vcs[in_port][vc])

    def idle(self) -> bool:
        return not self._has_work()
