"""NVSwitch model.

The switch is deliberately thin: it applies a fixed internal hop latency,
then offers each message to its attached *engines* in order (the NVLS
multicast/reduction engine, the CAIS merge unit, the CAIS group-sync table —
whichever the experiment configures).  The first engine that consumes the
message handles it; otherwise the message is unicast-forwarded toward its
destination GPU.  Output contention and arbitration live in the output
:class:`~repro.interconnect.link.Link` objects.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Protocol

from ..common.config import SwitchSpec
from ..common.errors import RoutingError
from ..common.events import Simulator
from ..obs import current_causality, current_metrics, current_tracer
from ..obs.causality import (BARRIER_SYNC, LINK_SERIALIZATION, SWITCH_MERGE)
from .link import Link
from .message import Message, NodeId, Op

#: Ops whose in-switch hop is compute (NVLS reduction/multicast or CAIS
#: merge-table work) rather than plain forwarding — the distinction that
#: lets critical-path attribution show merge time on TP-NVLS's path.
_MERGE_OPS = frozenset({
    Op.MULTIMEM_ST, Op.MULTIMEM_LD_REDUCE_REQ, Op.MULTIMEM_LD_REDUCE_GATHER,
    Op.MULTIMEM_LD_REDUCE_RESP, Op.MULTIMEM_RED,
    Op.RED_CAIS, Op.LD_CAIS_REQ, Op.LD_CAIS_RESP,
})
#: Control-plane ops: sync/credit handling is barrier machinery.
_SYNC_OPS = frozenset({Op.SYNC_REQ, Op.SYNC_RELEASE, Op.CREDIT})


def _hop_category(op: Op) -> str:
    if op in _MERGE_OPS:
        return SWITCH_MERGE
    if op in _SYNC_OPS:
        return BARRIER_SYNC
    return LINK_SERIALIZATION


class SwitchEngine(Protocol):
    """In-switch processing engine (NVLS, CAIS merge unit, sync table)."""

    def process(self, switch: "Switch", msg: Message, in_port: int) -> bool:
        """Handle ``msg`` arriving on ``in_port``; True if consumed."""
        ...  # pragma: no cover - protocol


class Switch:
    """One NVSwitch plane connecting all GPUs."""

    def __init__(self, sim: Simulator, spec: SwitchSpec, index: int,
                 num_gpus: int):
        self.sim = sim
        self.spec = spec
        self.index = index
        self.num_gpus = num_gpus
        self.node_id: NodeId = ("sw", index)
        #: Output links toward each GPU, wired by the Network.
        self.down_links: Dict[int, Link] = {}
        self.engines: List[SwitchEngine] = []
        #: Set by fault injection when the whole plane is out of service for
        #: new traffic (in-flight messages still drain through it).
        self.failed = False
        self.messages_handled = 0
        #: Messages inside the hop-latency pipeline (received, dispatch
        #: pending) — network-quiescence bookkeeping.  Fused link
        #: deliveries bypass :meth:`receive` and are tracked by the link.
        self.inflight_hops = 0
        self.ops_seen: Counter = Counter()
        self._tr = current_tracer()
        self._mx = current_metrics()
        self._cz = current_causality()
        if self._mx.enabled:
            self._c_msgs = self._mx.counter(f"switch.{index}.messages")
        # Port tracks are created lazily — only ports that see traffic
        # appear in the trace.
        self._port_tracks: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def attach_engine(self, engine: SwitchEngine) -> None:
        """Add an in-switch engine; engines are offered messages in order."""
        self.engines.append(engine)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def receive(self, msg: Message, in_port: int) -> None:
        """Entry point for messages arriving from GPU ``in_port``."""
        self.inflight_hops += 1
        self.sim.schedule(self.spec.hop_latency_ns, self._dispatch_from_wire,
                          msg, in_port)

    def _dispatch_from_wire(self, msg: Message, in_port: int) -> None:
        self.inflight_hops -= 1
        self._dispatch(msg, in_port)

    def engines_idle(self) -> bool:
        """True when no attached engine has an open session."""
        for engine in self.engines:
            count_fn = getattr(engine, "open_sessions", None)
            if count_fn is not None and count_fn():
                return False
        return True

    def _dispatch(self, msg: Message, in_port: int) -> None:
        self.messages_handled += 1
        self.ops_seen[msg.op] += 1
        if self._tr.enabled:
            track = self._port_tracks.get(in_port)
            if track is None:
                track = self._tr.track(f"Switch {self.index}",
                                       f"port {in_port}")
                self._port_tracks[in_port] = track
            self._tr.instant(track, msg.op.value, self.sim.now,
                             cat="switch",
                             args={"bytes": msg.payload_bytes})
        if self._mx.enabled:
            self._c_msgs.inc()
        if self._cz.enabled:
            # The hop latency was spent getting here; the ambient cause is
            # the delivery that carried the message in ("wire" edge).
            now = self.sim.now
            self._cz.current = self._cz.node(
                _hop_category(msg.op), now - self.spec.hop_latency_ns, now,
                f"sw{self.index} {msg.op.value}",
                parents=((self._cz.current, "wire"),))
        for engine in self.engines:
            if engine.process(self, msg, in_port):
                return
        self.forward(msg)

    def outstanding_work(self) -> str:
        """One-line summary of open engine sessions (deadlock diagnostics).

        Empty string when the plane is quiescent — engines expose their
        in-flight state via an ``open_sessions()`` method when they have one.
        """
        opens = []
        for engine in self.engines:
            count_fn = getattr(engine, "open_sessions", None)
            if count_fn is None:
                continue
            count = count_fn()
            if count:
                opens.append(f"{type(engine).__name__}={count}")
        if not opens:
            return ""
        state = " (failed)" if self.failed else ""
        return f"switch {self.index}{state}: open sessions " + \
            ", ".join(opens)

    def forward(self, msg: Message) -> None:
        """Unicast ``msg`` out the port toward its destination GPU."""
        kind, gpu_index = msg.dst
        if kind != "gpu":
            raise RoutingError(
                f"switch {self.index} cannot forward to {msg.dst}")
        link = self.down_links.get(gpu_index)
        if link is None:
            raise RoutingError(
                f"switch {self.index} has no port toward GPU {gpu_index}")
        link.send(msg)
