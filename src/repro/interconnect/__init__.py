"""Interconnect substrate: NVLink links, NVSwitch planes, routing, fabric."""

from .crossbar import CrossbarMessage, CrossbarSwitch
from .link import Link
from .message import (
    Address,
    Message,
    NodeId,
    Op,
    TrafficClass,
    gpu_node,
    switch_node,
)
from .network import Network
from .routing import plane_for_address, plane_for_stripe
from .switch import Switch, SwitchEngine
from .topology import Topology, dgx_h100_topology

__all__ = [
    "Address",
    "CrossbarMessage",
    "CrossbarSwitch",
    "Link",
    "Message",
    "Network",
    "NodeId",
    "Op",
    "Switch",
    "Topology",
    "dgx_h100_topology",
    "SwitchEngine",
    "TrafficClass",
    "gpu_node",
    "plane_for_address",
    "plane_for_stripe",
    "switch_node",
]
