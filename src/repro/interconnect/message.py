"""Messages exchanged between GPUs and switches.

A message models one *logical transfer* — a data chunk, a small control
request, or a sync packet — rather than an individual flit.  Serialization
cost on a link is computed from :meth:`Message.wire_bytes`, which charges the
16-byte flit header once per 128-byte packet, matching the paper's NVLink
configuration (16 B flits, single-flit header, 128 B coalesced packets).

Operation kinds cover the three protocol families in the paper:

* plain remote memory ops (direct load/store/atomic-reduce, used by LADM and
  the ring collectives),
* NVLS ``multimem`` ops (push multicast store, pull load-reduce, push
  reduce — Fig. 1(g)),
* CAIS ``*.cais`` ops (the compute-aware ISA extension, Fig. 4), plus the
  TB-group sync and throttling-credit control packets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from ..common.ids import IdAllocator

NodeId = Tuple[str, int]                 # ("gpu", 3) or ("sw", 0)

CONTROL_BYTES = 16                       # empty/control packet = one flit
FLIT_BYTES = 16
PACKET_BYTES = 128


def gpu_node(index: int) -> NodeId:
    """NodeId of GPU ``index``."""
    return ("gpu", index)


def switch_node(index: int) -> NodeId:
    """NodeId of switch plane ``index``."""
    return ("sw", index)


class Op(enum.Enum):
    """Operation carried by a message."""

    # Plain remote memory semantics (no in-switch computing).
    LOAD_REQ = "load.req"
    LOAD_RESP = "load.resp"
    STORE = "store"
    RED = "red"                          # remote atomic reduction (write-add)

    # NVLS multimem family (communication-centric in-switch computing).
    MULTIMEM_ST = "multimem.st"          # push-mode multicast store
    MULTIMEM_LD_REDUCE_REQ = "multimem.ld_reduce.req"    # pull-mode
    MULTIMEM_LD_REDUCE_GATHER = "multimem.ld_reduce.gather"
    MULTIMEM_LD_REDUCE_RESP = "multimem.ld_reduce.resp"
    MULTIMEM_RED = "multimem.red"        # push-mode in-switch reduction

    # CAIS compute-aware family (this paper's ISA extension).
    LD_CAIS_REQ = "ld.cais.req"
    LD_CAIS_RESP = "ld.cais.resp"
    RED_CAIS = "red.cais"
    RED_CAIS_ACK = "red.cais.ack"

    # Control plane: TB-group synchronization and throttling credits.
    SYNC_REQ = "sync.req"
    SYNC_RELEASE = "sync.release"
    CREDIT = "credit"

    # Reliability plane (repro.faults): per-chunk delivery ack for the
    # retransmitting ring collective.
    CHUNK_ACK = "chunk.ack"


class TrafficClass(enum.Enum):
    """Virtual-channel class used by CAIS traffic control (Section III-C)."""

    LOAD = "load"
    REDUCTION = "reduction"
    CONTROL = "control"


#: Ops that request data and therefore ride the LOAD class.
_LOAD_OPS = {Op.LOAD_REQ, Op.LOAD_RESP, Op.LD_CAIS_REQ, Op.LD_CAIS_RESP,
             Op.MULTIMEM_LD_REDUCE_REQ, Op.MULTIMEM_LD_REDUCE_GATHER,
             Op.MULTIMEM_LD_REDUCE_RESP}
_REDUCTION_OPS = {Op.RED, Op.RED_CAIS, Op.RED_CAIS_ACK, Op.MULTIMEM_RED,
                  Op.STORE, Op.MULTIMEM_ST}


@dataclass(frozen=True)
class Address:
    """A chunk-granular global address: the home GPU plus a byte offset."""

    home_gpu: int
    offset: int

    def __post_init__(self) -> None:
        if self.home_gpu < 0 or self.offset < 0:
            raise ValueError(f"invalid address {self}")


#: Message-id stream (plane striping hashes on it); an IdAllocator so the
#: analytic collective bypass can advance it exactly as the event path
#: would have (see repro.collectives.analytic).
_msg_ids = IdAllocator()


@dataclass
class Message:
    """One logical transfer between two nodes.

    ``payload_bytes`` is the data volume carried (0 for pure control
    packets); ``payload`` optionally carries a functional value (used by
    correctness tests to verify in-switch reductions numerically).
    """

    op: Op
    src: NodeId
    dst: NodeId
    payload_bytes: int = 0
    address: Optional[Address] = None
    payload: Any = None
    group_id: Optional[int] = None       # TB group / multicast group
    meta: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=_msg_ids)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload: {self.payload_bytes}")

    @property
    def traffic_class(self) -> TrafficClass:
        """Virtual-channel class this message travels in."""
        if self.op in _LOAD_OPS:
            return TrafficClass.LOAD
        if self.op in _REDUCTION_OPS:
            return TrafficClass.REDUCTION
        return TrafficClass.CONTROL

    def wire_bytes(self) -> int:
        """Bytes occupied on the wire, including per-packet flit headers."""
        if self.payload_bytes == 0:
            return CONTROL_BYTES
        packets = -(-self.payload_bytes // PACKET_BYTES)   # ceil division
        return self.payload_bytes + packets * FLIT_BYTES

    def reply(self, op: Op, payload_bytes: int = 0, **meta: Any) -> "Message":
        """Build a response travelling back to this message's source."""
        return Message(op=op, src=self.dst, dst=self.src,
                       payload_bytes=payload_bytes, address=self.address,
                       group_id=self.group_id, meta=dict(meta))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.op.value}, {self.src}->{self.dst}, "
                f"{self.payload_bytes}B, addr={self.address})")


#: Metadata key marking a message damaged in flight (repro.faults).  The
#: payload itself is left intact so a buggy receiver that *uses* a corrupt
#: message shows up as silent value corruption in the correctness checks.
CORRUPTED_META = "corrupted"


def mark_corrupted(msg: Message) -> None:
    """Flag ``msg`` as damaged on the wire (checksum failure at receive)."""
    msg.meta[CORRUPTED_META] = True


def is_corrupted(msg: Message) -> bool:
    return bool(msg.meta.get(CORRUPTED_META))
