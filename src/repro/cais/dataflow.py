"""Graph-level dataflow optimizer (paper Section III-C, Fig. 9).

The optimizer exploits the TB-level producer-consumer relationships that
compute-aware in-switch computing unlocks:

* **Chain detection** — find ``GEMM -> ReduceScatter -> [vector ops] ->
  AllGather -> GEMM(s)`` sequences in the logical graph (the paper's
  GEMM-RS + LN + AG-GEMM pipelines, Fig. 12's L1-L4).
* **Deep kernel fusion** — lower the whole chain at once: the GEMM issues
  ``red.cais`` epilogues per tile, LayerNorm TBs gate on per-row-block
  reduction tokens, and the downstream GEMM's TBs gate on per-row LN
  tokens and pull their rows with ``ld.cais`` — consumer TBs launch as soon
  as their inputs exist, long before producer kernels finish.
* **Asymmetric kernel overlapping** — because reduction traffic loads the
  GPU->switch direction and load traffic the switch->GPU direction
  (Fig. 10), running the chain's stages concurrently balances both link
  directions; the executor's fair-share dispatch partitions SMs between
  the concurrently-ready kernels.

The same lowering with TB-gating disabled reproduces **CAIS-Base** (ISA and
merging only, global barriers between kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from typing import TYPE_CHECKING

from ..common.errors import WorkloadError
from ..gpu.executor import Executor
from ..gpu.kernels import KernelInstance
from ..gpu.remote_ops import Transport
from ..llm.graph import CommKind, Graph, LogicalOp, OpKind
from ..obs import current_causality
from ..obs.causality import BARRIER_SYNC

if TYPE_CHECKING:   # pragma: no cover - typing only
    from ..llm.tiling import ActivationLayout, TilingConfig

DTYPE_BYTES = 2


def _tiling_module():
    """Deferred import: repro.llm.tiling imports the CAIS compiler, so a
    module-level import here would close a package-level cycle."""
    from ..llm import tiling
    return tiling


@dataclass
class FusedChain:
    """One fused communication pipeline found in a graph.

    Either a GEMM-RS + [vectors] + AG-GEMM chain (``rs``/``ag``, TP+SP
    style) or a GEMM-AR + [replicated vectors] + GEMM chain (``ar``,
    Basic-TP style — the paper's AR-GEMM/GEMM-AR read+write semantics)."""

    gemm1: Optional[str]                 # producer GEMM of the RS/AR
    rs: Optional[str]                    # ReduceScatter op
    vectors: List[str] = field(default_factory=list)
    ag: Optional[str] = None             # AllGather op
    ar: Optional[str] = None             # AllReduce op (basic TP)
    gemm2s: List[str] = field(default_factory=list)

    def members(self) -> List[str]:
        out = []
        if self.gemm1:
            out.append(self.gemm1)
        if self.rs:
            out.append(self.rs)
        if self.ar:
            out.append(self.ar)
        out.extend(self.vectors)
        if self.ag:
            out.append(self.ag)
        out.extend(self.gemm2s)
        return out


def find_chains(graph: Graph) -> List[FusedChain]:
    """Detect fusable communication chains.

    Every COMM op lands in exactly one chain: ReduceScatters open a chain
    from their producer GEMM and absorb the downstream vector ops; if the
    vector run ends at an AllGather, the AG and its consumer GEMMs join the
    same chain.  AllGathers not reached that way (e.g. a layer-entry
    LN -> AG -> QKV) form their own chain with a vector producer.
    """
    chains: List[FusedChain] = []
    claimed: Set[str] = set()

    for op in graph.topo_order():
        if op.kind is not OpKind.COMM or op.name in claimed:
            continue
        if op.comm is CommKind.REDUCE_SCATTER:
            chain = FusedChain(gemm1=None, rs=op.name)
            producer = graph[op.deps[0]] if op.deps else None
            if producer is not None and producer.kind is OpKind.GEMM:
                chain.gemm1 = producer.name
            cursor = op
            while True:
                consumers = graph.consumers_of(cursor.name)
                if len(consumers) != 1:
                    break
                nxt = consumers[0]
                if nxt.kind is OpKind.VECTOR:
                    chain.vectors.append(nxt.name)
                    cursor = nxt
                    continue
                if (nxt.kind is OpKind.COMM and
                        nxt.comm is CommKind.ALL_GATHER):
                    chain.ag = nxt.name
                    chain.gemm2s = [c.name
                                    for c in graph.consumers_of(nxt.name)
                                    if c.kind is OpKind.GEMM]
                    break
                break
            chains.append(chain)
            claimed.update(chain.members())
        elif op.comm is CommKind.ALL_REDUCE:
            # Basic-TP chain: the AllReduce dissolves into a red.cais
            # epilogue (write semantics) plus on-demand ld.cais reads by
            # the replicated consumers (read semantics) — Fig. 1(c)/(f).
            chain = FusedChain(gemm1=None, rs=None, ar=op.name)
            producer = graph[op.deps[0]] if op.deps else None
            if producer is not None and producer.kind is OpKind.GEMM:
                chain.gemm1 = producer.name
            cursor = op
            while True:
                consumers = graph.consumers_of(cursor.name)
                if len(consumers) != 1:
                    break
                nxt = consumers[0]
                if nxt.kind is OpKind.VECTOR and nxt.name not in claimed:
                    chain.vectors.append(nxt.name)
                    cursor = nxt
                    continue
                break
            if chain.vectors:
                chain.gemm2s = [
                    c.name for c in graph.consumers_of(chain.vectors[-1])
                    if c.kind is OpKind.GEMM]
            chains.append(chain)
            claimed.update(chain.members())
        elif op.comm is CommKind.ALL_GATHER:
            # AG not absorbed by an upstream RS chain: gate on its vector
            # producer (or start unglued when the producer is a GEMM).
            chain = FusedChain(gemm1=None, rs=None, ag=op.name)
            if op.deps:
                producer = graph[op.deps[0]]
                if (producer.kind is OpKind.VECTOR and
                        producer.name not in claimed and
                        len(graph.consumers_of(producer.name)) == 1):
                    chain.vectors = [producer.name]
            chain.gemm2s = [c.name for c in graph.consumers_of(op.name)
                            if c.kind is OpKind.GEMM]
            chains.append(chain)
            claimed.update(chain.members())
    return chains


class CaisRunner:
    """Lower and execute a logical graph with compute-aware in-switch
    computing.

    ``dataflow=True`` enables the graph-level optimizer (TB-gated chains +
    fair-share asymmetric overlap is configured on the executor);
    ``dataflow=False`` reproduces CAIS-Base: the same fused ``*.cais``
    kernels but with global barriers between them.
    ``coordination=True`` arms pre-launch/pre-access TB-group sync.
    """

    #: All merging-aware coordination features (Fig. 13b ablation stages).
    ALL_COORDINATION = frozenset(
        {"order", "prelaunch", "preaccess", "throttle"})

    def __init__(self, harness, tiling: Optional[TilingConfig] = None,
                 dataflow: bool = True, coordination: bool = True,
                 coordination_features: Optional[frozenset] = None,
                 transport: Transport = Transport.CAIS,
                 launch_overhead_ns: Optional[float] = None):
        self.harness = harness
        self.executor: Executor = harness.executor
        self.tiling = tiling or _tiling_module().TilingConfig()
        self.dataflow = dataflow
        self.coordination = coordination
        if coordination_features is not None:
            self.features = frozenset(coordination_features)
        else:
            self.features = (self.ALL_COORDINATION if coordination
                             else frozenset())
        self.executor.tb_throttle = "throttle" in self.features
        self.transport = transport
        self.launch_overhead_ns = (
            harness.config.gpu.kernel_launch_overhead_ns
            if launch_overhead_ns is None else launch_overhead_ns)
        self._cz = current_causality()

    # ------------------------------------------------------------------
    # Graph execution
    # ------------------------------------------------------------------
    def run_graph(self, graph: Graph,
                  on_done: Optional[Callable[[], None]] = None) -> None:
        chains = find_chains(graph)
        chain_of: Dict[str, FusedChain] = {}
        head_of: Dict[int, str] = {}
        for chain in chains:
            head = chain.members()[0]
            head_of[id(chain)] = head
            for member in chain.members():
                chain_of[member] = chain

        done: Dict[str, bool] = {op.name: False for op in graph.ops()}
        waiting = {op.name: len(op.deps) for op in graph.ops()}
        pending = {"count": len(done)}

        cz = self._cz

        def finish(name: str) -> None:
            if done[name]:
                raise WorkloadError(f"op {name} finished twice")
            if cz.enabled:
                # Op boundary marker (see BarrierRunner.run_graph).
                now = self.harness.sim.now
                cz.current = cz.node(BARRIER_SYNC, now, now,
                                     f"op {name} done",
                                     parents=((cz.current, "dep"),))
            done[name] = True
            pending["count"] -= 1
            if pending["count"] == 0 and on_done is not None:
                on_done()
                return
            for consumer in graph.consumers_of(name):
                waiting[consumer.name] -= 1
                if waiting[consumer.name] == 0:
                    start(consumer)

        def start(op: LogicalOp) -> None:
            chain = chain_of.get(op.name)
            if chain is None:
                self._start_plain(graph, op, finish)
                return
            if op.name != head_of[id(chain)]:
                return          # launched (or to be launched) by its head
            self._start_chain(graph, chain, finish)

        for op in graph.topo_order():
            if waiting[op.name] == 0:
                start(op)

    def run_graphs(self, graphs: List[Graph],
                   on_done: Optional[Callable[[], None]] = None) -> None:
        """Run graphs strictly in sequence (forward then backward)."""
        if not graphs:
            raise WorkloadError("no graphs to run")

        def chain_next(index: int) -> None:
            if index == len(graphs):
                if on_done is not None:
                    on_done()
                return
            self.run_graph(graphs[index],
                           on_done=lambda: chain_next(index + 1))

        chain_next(0)

    # ------------------------------------------------------------------
    # Plain (non-chain) ops
    # ------------------------------------------------------------------
    def _start_plain(self, graph: Graph, op: LogicalOp,
                     finish: Callable[[str], None]) -> None:
        if op.kind is OpKind.COMM:
            raise WorkloadError(
                f"CAIS lowering left collective {op.name} unfused "
                f"(graph {graph.name}); use SP-style graphs")
        kernel = _tiling_module().compute_kernel(
            op, self.harness.config.gpu, self.tiling,
                                launch_overhead_ns=self.launch_overhead_ns)
        self.executor.launch_kernel(
            kernel, on_complete=lambda: finish(op.name))

    # ------------------------------------------------------------------
    # Fused chains
    # ------------------------------------------------------------------
    def _start_chain(self, graph: Graph, chain: FusedChain,
                     finish: Callable[[str], None]) -> None:
        if chain.ar is not None:
            self._start_ar_chain(graph, chain, finish)
            return
        _t = _tiling_module()
        spec = self.harness.config.gpu
        tp = self.harness.config.num_gpus
        tiling = self.tiling
        executor = self.executor

        # ---------------- GEMM-RS stage ----------------
        rs_layout = None
        num_col_tiles = 0
        if chain.rs is not None:
            if chain.gemm1 is None:
                raise WorkloadError(
                    f"ReduceScatter {chain.rs} has no GEMM producer; "
                    f"CAIS lowers RS as a GEMM epilogue")
            gemm1_op = graph[chain.gemm1]
            shape = gemm1_op.gemm
            rs_layout = _t.make_layout(rows=shape.m,
                                    row_bytes=shape.n * DTYPE_BYTES, tp=tp,
                                    row_block=tiling.tile)
            num_col_tiles = _t.ceil_div(shape.n, tiling.tile)
            k1 = _t.gemm_rs_kernel(gemm1_op, rs_layout, spec, tiling, tp=tp,
                                transport=self.transport,
                                launch_overhead_ns=self.launch_overhead_ns)
            self._arm_coordination(k1)
            self._register_reductions(rs_layout, num_col_tiles, tp)
            rs_done_tokens = [("red", rs_layout.tensor_id, mb, nb)
                              for mb in range(rs_layout.num_blocks)
                              for nb in range(num_col_tiles)]
            executor.when_all(rs_done_tokens,
                              lambda name=chain.rs: finish(name))
            executor.launch_kernel(
                k1, on_complete=lambda name=chain.gemm1: finish(name))

        # ---------------- fused vector (LN) stage ----------------
        ln_layout = None
        if chain.vectors:
            base_layout = rs_layout
            if base_layout is None:
                # AG-only chain: the vector producer defines the tensor.
                vec0 = graph[chain.vectors[0]]
                rows, row_bytes = self._vector_tensor_dims(graph, chain, vec0,
                                                           tp)
                base_layout = _t.make_layout(rows=rows, row_bytes=row_bytes,
                                          tp=tp, row_block=tiling.tile)
            ln_layout = _t.make_layout(rows=base_layout.rows,
                                    row_bytes=base_layout.row_bytes, tp=tp,
                                    row_block=tiling.tile)
            fused_vec = self._fuse_vectors(graph, chain.vectors)
            gated = self.dataflow and chain.rs is not None
            kv = _t.ln_kernel(fused_vec, base_layout, ln_layout,
                           num_col_tiles=num_col_tiles, spec=spec,
                           tiling=tiling, gated_on_rs=gated,
                           launch_overhead_ns=self.launch_overhead_ns)
            kv.on_tb_complete = self._make_ln_signal(ln_layout)

            def finish_vectors() -> None:
                for name in chain.vectors:
                    finish(name)

            launch_vec = lambda: executor.launch_kernel(
                kv, on_complete=finish_vectors)
            if gated or chain.rs is None:
                launch_vec()
            else:
                # CAIS-Base: barrier — vector waits for the full RS.
                executor.when_all(
                    [("red", rs_layout.tensor_id, mb, nb)
                     for mb in range(rs_layout.num_blocks)
                     for nb in range(num_col_tiles)], launch_vec)

        # ---------------- AG-GEMM stage ----------------
        if chain.ag is not None:
            in_layout = ln_layout if ln_layout is not None else rs_layout
            if in_layout is None:
                # Barrier producer (e.g. a GEMM feeding the AG directly):
                # the chain head is the AG op itself, so the producer has
                # already finished — every row is ready now.
                g2 = graph[chain.gemm2s[0]] if chain.gemm2s else None
                if g2 is None:
                    raise WorkloadError(
                        f"AllGather {chain.ag} has no GEMM consumer")
                in_layout = _t.make_layout(rows=g2.gemm.m,
                                        row_bytes=g2.gemm.k * DTYPE_BYTES,
                                        tp=tp, row_block=tiling.tile)
                for mb in range(in_layout.num_blocks):
                    executor.signal(("ln", in_layout.tensor_id, mb))
            elif ln_layout is None:
                # RS feeding AG directly: rows become available per block as
                # reductions complete; bridge red tokens to ln tokens.
                self._bridge_rs_to_ln(rs_layout, num_col_tiles)

            def finish_ag(name=chain.ag) -> None:
                finish(name)

            if self.dataflow:
                # Data is ready row-by-row; the AG op itself is "done" when
                # every row token exists.
                self.executor.when_all(
                    [("ln", in_layout.tensor_id, mb)
                     for mb in range(in_layout.num_blocks)], finish_ag)
            gemm2_kernels: List[Tuple[KernelInstance, str]] = []
            barrier_consumers: List[str] = []
            for g2_name in chain.gemm2s:
                g2 = graph[g2_name]
                if g2.gemm.m != in_layout.rows:
                    # Consumes the gathered tensor along its K dimension
                    # (a wgrad): no per-row tiling applies — run it as a
                    # barrier consumer once every row is available.  Its
                    # remote traffic is shared with the row-tiled sibling
                    # through the per-GPU chunk cache.
                    barrier_consumers.append(g2_name)
                    continue
                k2 = _t.ag_gemm_kernel(g2, in_layout, spec, tiling, tp=tp,
                                    transport=self.transport,
                                    gated_on_ln=True,
                                    launch_overhead_ns=self.launch_overhead_ns)
                self._arm_coordination(k2)
                gemm2_kernels.append((k2, g2_name))
            if barrier_consumers:
                all_rows = [("ln", in_layout.tensor_id, mb)
                            for mb in range(in_layout.num_blocks)]

                def launch_barrier_consumers() -> None:
                    for name in barrier_consumers:
                        kernel = _t.compute_kernel(
                            graph[name], spec, tiling,
                            launch_overhead_ns=self.launch_overhead_ns)
                        executor.launch_kernel(
                            kernel, on_complete=lambda n=name: finish(n))

                executor.when_all(all_rows, launch_barrier_consumers)

            def launch_gemm2s() -> None:
                for kernel, name in gemm2_kernels:
                    executor.launch_kernel(
                        kernel, on_complete=lambda n=name: finish(n))

            if self.dataflow:
                launch_gemm2s()     # TBs self-gate on per-row ln tokens
            else:
                # CAIS-Base: launch after the producer stage fully finished,
                # then signal every row at once (barrier semantics).
                tokens = self._producer_barrier_tokens(chain, rs_layout,
                                                       num_col_tiles,
                                                       in_layout)
                def barrier_release(in_layout=in_layout) -> None:
                    for mb in range(in_layout.num_blocks):
                        executor.signal(("ln", in_layout.tensor_id, mb))
                    if not self.dataflow:
                        finish_ag()
                    launch_gemm2s()
                executor.when_all(tokens, barrier_release)

    # ------------------------------------------------------------------
    # Basic-TP AllReduce chains (AR-GEMM / GEMM-AR semantics, Fig. 1c/f)
    # ------------------------------------------------------------------
    def _start_ar_chain(self, graph: Graph, chain: FusedChain,
                        finish: Callable[[str], None]) -> None:
        _t = _tiling_module()
        spec = self.harness.config.gpu
        tp = self.harness.config.num_gpus
        tiling = self.tiling
        executor = self.executor
        if chain.gemm1 is None:
            raise WorkloadError(
                f"AllReduce {chain.ar} has no GEMM producer; CAIS lowers "
                f"AR as a red.cais epilogue")

        # --- write side: the producer GEMM reduces rows to their homes.
        gemm1_op = graph[chain.gemm1]
        shape = gemm1_op.gemm
        layout = _t.make_layout(rows=shape.m, row_bytes=shape.n * DTYPE_BYTES,
                             tp=tp, row_block=tiling.tile)
        num_col_tiles = _t.ceil_div(shape.n, tiling.tile)
        k1 = _t.gemm_rs_kernel(gemm1_op, layout, spec, tiling, tp=tp,
                            transport=self.transport,
                            launch_overhead_ns=self.launch_overhead_ns)
        self._arm_coordination(k1)
        self._register_reductions(layout, num_col_tiles, tp)
        red_tokens = [("red", layout.tensor_id, mb, nb)
                      for mb in range(layout.num_blocks)
                      for nb in range(num_col_tiles)]
        executor.when_all(red_tokens, lambda name=chain.ar: finish(name))
        executor.launch_kernel(
            k1, on_complete=lambda name=chain.gemm1: finish(name))

        # --- read side: replicated consumers pull rows on demand.
        if not chain.vectors:
            return
        fused_vec = self._fuse_vectors(graph, chain.vectors)
        gated = self.dataflow
        kv = _t.replicated_vector_kernel(
            fused_vec, layout, num_col_tiles, spec, tiling, tp=tp,
            transport=self.transport, gated_on_rs=gated,
            launch_overhead_ns=self.launch_overhead_ns)
        self._arm_coordination(kv)
        kv.on_tb_complete = (
            lambda gpu, bidx, tid=layout.tensor_id:
            executor.signal(("arv", tid, bidx[0], gpu)))

        def finish_vectors() -> None:
            for name in chain.vectors:
                finish(name)

        launch_vec = lambda: executor.launch_kernel(
            kv, on_complete=finish_vectors)
        if gated:
            launch_vec()
        else:
            executor.when_all(red_tokens, launch_vec)

        # --- downstream GEMMs: data is fully local per row once the
        # replicated vector TB for that row completed on this GPU.
        for g2_name in chain.gemm2s:
            g2 = graph[g2_name]
            if g2.gemm.m != layout.rows:
                # Consumes the replicated tensor along K (a wgrad): every
                # TB needs every row present on its own GPU.
                k2 = _t.compute_kernel(g2, spec, tiling,
                                    launch_overhead_ns=self.launch_overhead_ns)
                k2.tb_deps = (
                    lambda gpu, bidx, tid=layout.tensor_id,
                    blocks=layout.num_blocks:
                    [("arv", tid, mb, gpu) for mb in range(blocks)])
            else:
                k2 = _t.row_gated_gemm_kernel(
                    g2, "arv", layout.tensor_id, spec, tiling,
                    launch_overhead_ns=self.launch_overhead_ns)
            if not self.dataflow:
                # Barrier variant: wait until every row finished everywhere.
                k2.tb_deps = None
                executor.when_all(
                    [("arv", layout.tensor_id, mb, g)
                     for mb in range(layout.num_blocks)
                     for g in range(tp)],
                    lambda k=k2, n=g2_name: executor.launch_kernel(
                        k, on_complete=lambda n=n: finish(n)))
            else:
                executor.launch_kernel(
                    k2, on_complete=lambda n=g2_name: finish(n))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _arm_coordination(self, kernel: KernelInstance) -> None:
        kernel.sync_prelaunch = "prelaunch" in self.features
        kernel.sync_preaccess = "preaccess" in self.features
        if "order" not in self.features:
            # Merging-aware TB ordering is a coordination feature; without
            # it kernels launch in plain row-major order.
            kernel.block_order = None

    def _register_reductions(self, layout: "ActivationLayout",
                             num_col_tiles: int, tp: int) -> None:
        """Expect tp contributions per reduction sub-chunk at its home GPU;
        a tile's red token fires when all of its sub-chunks completed."""
        from ..llm.tiling import reduction_sub_chunks
        from ..interconnect.message import Address
        tile_bytes = layout.block_bytes // num_col_tiles
        subs, sub_bytes = reduction_sub_chunks(
            tile_bytes, self.tiling.red_chunk_bytes)
        executor = self.executor
        for mb in range(layout.num_blocks):
            home = layout.home_of_block(mb)
            memory = executor.gpus[home].memory
            for nb in range(num_col_tiles):
                base = layout.address(mb, nb, tile_bytes)
                token = ("red", layout.tensor_id, mb, nb)
                state = {"left": subs}

                def sub_done(_v, token=token, state=state) -> None:
                    state["left"] -= 1
                    if state["left"] == 0:
                        executor.signal(token)

                for c in range(subs):
                    memory.expect_reduction(
                        Address(base.home_gpu, base.offset + c * sub_bytes),
                        expected=tp, on_complete=sub_done)

    def _make_ln_signal(self, ln_layout: "ActivationLayout"):
        executor = self.executor

        def on_tb_complete(gpu: int, bidx: Tuple[int, ...]) -> None:
            if bidx[0] >= ln_layout.shard_blocks(gpu):
                return               # padding TB on a short shard
            mb = ln_layout.shard_start(gpu) + bidx[0]
            executor.signal(("ln", ln_layout.tensor_id, mb))
        return on_tb_complete

    def _bridge_rs_to_ln(self, rs_layout: "ActivationLayout",
                         num_col_tiles: int) -> None:
        executor = self.executor
        for mb in range(rs_layout.num_blocks):
            tokens = [("red", rs_layout.tensor_id, mb, nb)
                      for nb in range(num_col_tiles)]
            executor.when_all(
                tokens,
                lambda mb=mb: executor.signal(
                    ("ln", rs_layout.tensor_id, mb)))

    def _fuse_vectors(self, graph: Graph, names: List[str]) -> LogicalOp:
        ops = [graph[n] for n in names]
        fused_fpe = sum(op.flops_per_element for op in ops)
        return LogicalOp(name="+".join(names), kind=OpKind.VECTOR,
                         elements=ops[0].elements,
                         flops_per_element=fused_fpe)

    def _vector_tensor_dims(self, graph: Graph, chain: FusedChain,
                            vec0: LogicalOp, tp: int) -> Tuple[int, int]:
        """Infer [rows, row_bytes] of an AG-only chain's tensor from the
        consumer GEMM (rows = its m, row_bytes = its k * dtype)."""
        if not chain.gemm2s:
            raise WorkloadError(
                f"AllGather {chain.ag} has no GEMM consumer")
        g2 = graph[chain.gemm2s[0]]
        return g2.gemm.m, g2.gemm.k * DTYPE_BYTES

    def _producer_barrier_tokens(self, chain: FusedChain,
                                 rs_layout: Optional[ActivationLayout],
                                 num_col_tiles: int,
                                 in_layout) -> List[Tuple]:
        if chain.vectors:
            # Barrier = every row token the fused vector kernel signals.
            return [("ln", in_layout.tensor_id, mb)
                    for mb in range(in_layout.num_blocks)]
        if rs_layout is not None:
            return [("red", rs_layout.tensor_id, mb, nb)
                    for mb in range(rs_layout.num_blocks)
                    for nb in range(num_col_tiles)]
        # Barrier producer: the row tokens were signalled when the chain
        # started, so the barrier is immediately satisfied.
        return [("ln", in_layout.tensor_id, mb)
                for mb in range(in_layout.num_blocks)]
