"""Compiler support for CAIS (paper Section III-B-1, Fig. 8a).

During CUDA-to-PTX compilation CAIS performs *static index analysis* on the
address expressions of remote memory instructions.  If an address expression
does not reference the GPU ID, the index is **GPU-invariant**: thread blocks
on different GPUs with the same ``blockIdx`` will access the same memory
location and can therefore have their requests merged in the switch.  The
compiler

1. rewrites such instructions to their CAIS variants (``ld`` -> ``ld.cais``,
   ``red`` -> ``red.cais``),
2. groups the corresponding TBs across GPUs into logical **TB groups** (one
   group per ``blockIdx``), and
3. attaches TB-group metadata to the kernel launch configuration, consumed
   by the runtime synchronizers and the switch's Group Sync Table.

The address-expression IR below is the analogue of the PTX address operands
the real compiler would inspect: kernels in :mod:`repro.gpu.kernels` describe
their remote accesses symbolically in terms of ``blockIdx``, ``gpuId`` and
shape parameters, and the simulator evaluates the same expressions to
generate concrete request addresses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..common.errors import WorkloadError

# ---------------------------------------------------------------------------
# Address-expression IR
# ---------------------------------------------------------------------------


class Expr:
    """Base class for address expressions (immutable tree)."""

    def references_gpu_id(self) -> bool:
        """True if evaluating this expression depends on the GPU ID."""
        raise NotImplementedError

    def referenced_block_dims(self) -> frozenset:
        """Which ``blockIdx`` dimensions the expression depends on.

        TBs whose referenced dimensions agree access the same data region,
        so they belong to the same TB group (Fig. 7b) — e.g. an AG-GEMM
        tile's input address depends only on ``blockIdx.x`` (the row), so
        every column tile of a row joins one group.
        """
        return frozenset()

    def evaluate(self, env: "Env") -> int:
        """Evaluate under concrete ``blockIdx`` / ``gpuId`` / params."""
        raise NotImplementedError

    # Operator sugar so kernel authors can write ``bx * Const(128) + off``.
    def __add__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", self, _wrap(other))

    def __mul__(self, other: "ExprLike") -> "Expr":
        return BinOp("*", self, _wrap(other))

    def __floordiv__(self, other: "ExprLike") -> "Expr":
        return BinOp("//", self, _wrap(other))

    def __mod__(self, other: "ExprLike") -> "Expr":
        return BinOp("%", self, _wrap(other))


ExprLike = Union[Expr, int]


def _wrap(value: ExprLike) -> Expr:
    return Const(value) if isinstance(value, int) else value


@dataclass(frozen=True)
class Env:
    """Concrete evaluation environment for an address expression."""

    block_idx: Tuple[int, ...] = (0,)
    gpu_id: int = 0
    params: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def references_gpu_id(self) -> bool:
        return False

    def evaluate(self, env: Env) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BlockIdx(Expr):
    """The TB's block index along ``dim`` (0 = x, 1 = y, 2 = z)."""

    dim: int = 0

    def references_gpu_id(self) -> bool:
        return False

    def referenced_block_dims(self) -> frozenset:
        return frozenset({self.dim})

    def evaluate(self, env: Env) -> int:
        if self.dim >= len(env.block_idx):
            raise WorkloadError(
                f"blockIdx.{'xyz'[self.dim]} unavailable in {env.block_idx}")
        return env.block_idx[self.dim]

    def __repr__(self) -> str:
        return f"blockIdx.{'xyz'[self.dim]}"


@dataclass(frozen=True)
class GpuId(Expr):
    """The executing GPU's rank — the thing the analysis looks for."""

    def references_gpu_id(self) -> bool:
        return True

    def evaluate(self, env: Env) -> int:
        return env.gpu_id

    def __repr__(self) -> str:
        return "gpuId"


@dataclass(frozen=True)
class Param(Expr):
    """A kernel launch parameter (tile size, stride, shard bytes...)."""

    name: str

    def references_gpu_id(self) -> bool:
        return False

    def evaluate(self, env: Env) -> int:
        if self.name not in env.params:
            raise WorkloadError(f"unbound kernel parameter {self.name!r}")
        return env.params[self.name]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    _FUNCS = {"+": lambda a, b: a + b, "*": lambda a, b: a * b,
              "//": lambda a, b: a // b, "%": lambda a, b: a % b}

    def __post_init__(self) -> None:
        if self.op not in self._FUNCS:
            raise WorkloadError(f"unsupported operator {self.op!r}")

    def references_gpu_id(self) -> bool:
        return self.lhs.references_gpu_id() or self.rhs.references_gpu_id()

    def referenced_block_dims(self) -> frozenset:
        return (self.lhs.referenced_block_dims() |
                self.rhs.referenced_block_dims())

    def evaluate(self, env: Env) -> int:
        return self._FUNCS[self.op](self.lhs.evaluate(env),
                                    self.rhs.evaluate(env))

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


# ---------------------------------------------------------------------------
# Memory instructions and kernel IR
# ---------------------------------------------------------------------------


class MemOpKind(enum.Enum):
    """Remote memory instruction kinds subject to rewriting (Fig. 4)."""

    LOAD = "ld"
    REDUCE = "red"
    LOAD_CAIS = "ld.cais"
    REDUCE_CAIS = "red.cais"

    @property
    def is_cais(self) -> bool:
        return self in (MemOpKind.LOAD_CAIS, MemOpKind.REDUCE_CAIS)

    def to_cais(self) -> "MemOpKind":
        if self is MemOpKind.LOAD:
            return MemOpKind.LOAD_CAIS
        if self is MemOpKind.REDUCE:
            return MemOpKind.REDUCE_CAIS
        return self


@dataclass(frozen=True)
class MemInstr:
    """One remote memory instruction of a kernel.

    ``home_expr`` gives the owning GPU of the accessed chunk and
    ``offset_expr`` its byte offset in that GPU's memory; ``chunk_bytes``
    is the transfer granularity.
    """

    kind: MemOpKind
    home_expr: Expr
    offset_expr: Expr
    chunk_bytes: int

    def references_gpu_id(self) -> bool:
        return (self.home_expr.references_gpu_id() or
                self.offset_expr.references_gpu_id())

    def referenced_block_dims(self) -> frozenset:
        return (self.home_expr.referenced_block_dims() |
                self.offset_expr.referenced_block_dims())


@dataclass(frozen=True)
class KernelIR:
    """Pre-compilation kernel description: grid shape + memory instructions."""

    name: str
    grid: Tuple[int, ...]
    mem_instrs: Tuple[MemInstr, ...]

    def num_blocks(self) -> int:
        n = 1
        for d in self.grid:
            n *= d
        return n


@dataclass(frozen=True)
class TBGroup:
    """All TBs across GPUs accessing one data region (Fig. 7b).

    ``region`` is the tuple of values of the blockIdx dimensions the
    kernel's mergeable address expressions reference; TBs agreeing on those
    values touch the same chunks and must align their requests.
    """

    group_id: int
    kernel_name: str
    region: Tuple[int, ...]


@dataclass(frozen=True)
class CompiledKernel:
    """JIT output: rewritten instructions plus TB-group launch metadata."""

    ir: KernelIR
    mergeable: Tuple[MemInstr, ...]      # rewritten to .cais variants
    non_mergeable: Tuple[MemInstr, ...]  # left untouched
    groups: Tuple[TBGroup, ...]          # one per blockIdx, () if none
    group_by_block: Dict[Tuple[int, ...], TBGroup]

    @property
    def uses_cais(self) -> bool:
        return bool(self.mergeable)


_group_ids = itertools.count(1)


def reset_group_ids() -> None:
    """Restart group-id allocation (tests and fresh simulations)."""
    global _group_ids
    _group_ids = itertools.count(1)


def _block_indices(grid: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    if not grid or any(d <= 0 for d in grid):
        raise WorkloadError(f"invalid grid {grid}")
    indices: List[Tuple[int, ...]] = [()]
    for dim in grid:
        indices = [idx + (i,) for idx in indices for i in range(dim)]
    return indices


def compile_kernel(ir: KernelIR) -> CompiledKernel:
    """Run the CAIS static index analysis and TB grouping on one kernel.

    An instruction is *mergeable* when its address expression is
    GPU-invariant — it does not reference ``gpuId`` — because TBs with equal
    ``blockIdx`` on different GPUs then target identical chunks.
    """
    mergeable = tuple(replace(i, kind=i.kind.to_cais())
                      for i in ir.mem_instrs if not i.references_gpu_id())
    non_mergeable = tuple(i for i in ir.mem_instrs if i.references_gpu_id())
    group_by_block: Dict[Tuple[int, ...], TBGroup] = {}
    groups: Tuple[TBGroup, ...] = ()
    if mergeable:
        dims = sorted(set().union(*(i.referenced_block_dims()
                                    for i in mergeable)))
        by_region: Dict[Tuple[int, ...], TBGroup] = {}
        for idx in _block_indices(ir.grid):
            region = tuple(idx[d] for d in dims)
            group = by_region.get(region)
            if group is None:
                group = TBGroup(next(_group_ids), ir.name, region)
                by_region[region] = group
            group_by_block[idx] = group
        groups = tuple(by_region.values())
    return CompiledKernel(
        ir=ir, mergeable=mergeable, non_mergeable=non_mergeable,
        groups=groups, group_by_block=group_by_block)
