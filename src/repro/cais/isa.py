"""The compute-aware ISA extension surface (paper Section III-A-1, Fig. 4).

CAIS extends PTX with two instructions:

* ``ld.cais``  — a load whose request carries the 1-bit CAIS flag, telling
  the switch it is eligible for in-switch *load request merging*;
* ``red.cais`` — a remote reduction carrying the same flag, eligible for
  in-switch *reduction request merging*.

In this reproduction the flag is the message-level distinction between the
``LD_CAIS_*``/``RED_CAIS`` operations and their plain counterparts; this
module gathers that surface in one place and provides the encoding/decoding
helpers an assembler-level view would use.
"""

from __future__ import annotations

from typing import Dict

from ..interconnect.message import Message, Op
from .compiler import MemOpKind

#: Fig. 4: the CAIS variants add a single flag bit to the access encoding.
CAIS_FLAG_BITS = 1

#: Mapping from the compiler's (rewritten) memory-instruction kinds to the
#: fabric operation their requests travel as.
REQUEST_OP: Dict[MemOpKind, Op] = {
    MemOpKind.LOAD: Op.LOAD_REQ,
    MemOpKind.LOAD_CAIS: Op.LD_CAIS_REQ,
    MemOpKind.REDUCE: Op.STORE,
    MemOpKind.REDUCE_CAIS: Op.RED_CAIS,
}

#: Operations whose requests carry the CAIS flag.
CAIS_OPS = frozenset({Op.LD_CAIS_REQ, Op.LD_CAIS_RESP, Op.RED_CAIS,
                      Op.RED_CAIS_ACK})


def is_cais_request(msg: Message) -> bool:
    """True when the message carries the CAIS flag (is merge-eligible)."""
    return msg.op in CAIS_OPS


def mnemonic(kind: MemOpKind) -> str:
    """PTX-style mnemonic for a memory-instruction kind (Fig. 4 syntax)."""
    return {
        MemOpKind.LOAD: "ld.global",
        MemOpKind.LOAD_CAIS: "ld.global.cais",
        MemOpKind.REDUCE: "red.global",
        MemOpKind.REDUCE_CAIS: "red.global.cais",
    }[kind]
