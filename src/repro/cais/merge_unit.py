"""CAIS switch merge unit (paper Section III-A-2/3/4, Figs. 5 and 6).

The merge unit sits on the datapath of each output port (the port toward a
chunk's *home* GPU — deterministic routing guarantees all mergeable requests
for an address converge there).  It consists of:

* a **CAM lookup table** — here the dict key ``(address, kind)``; a hit
  merges the request into an existing session, a miss allocates one, and
* a **merging table** — the :class:`MergeEntry` records: session status
  (``Load-Wait`` / ``Load-Ready`` / ``Reduction``), a merged-request counter,
  and the content array (cached load data or the accumulated reduction sum).

Micro-function 1 (load request merging): the first ``ld.cais`` is forwarded
to the home GPU; later requests wait in the content array; when the data
returns, all queued requesters are answered and subsequent hits are served
from the cache; the session retires when ``count == expected`` (participating
GPUs minus the one holding the local copy).

Micro-function 2 (reduction request merging): contributions to the same
address accumulate in the switch; when all expected requests arrived a single
combined write is sent to the home GPU.

Capacity is accounted in 128-byte entries per port (40 KB = 320 entries by
default).  When an allocation does not fit, an LRU eviction fires:
reduction entries are evicted by flushing their *partial* sum to the home
GPU; ``Load-Ready`` entries are dropped; ``Load-Wait`` entries are deferred
(marked evict-on-ready) and the arriving request **bypasses** the merge unit
instead, avoiding thrashing and deadlock.  A per-entry timeout provides
forward progress exactly as in NVLS.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ProtocolError
from ..common.events import Event
from ..common.functional import combine_payloads
from ..faults.retry import RKEY_META
from ..interconnect.message import Address, Message, Op, gpu_node
from ..interconnect.switch import Switch
from ..metrics.merge_stats import MergeStats
from ..obs import current_causality, current_metrics, current_tracer
from ..obs.causality import SWITCH_MERGE


class SessionKind(enum.Enum):
    LOAD = "load"
    REDUCTION = "reduction"


class Status(enum.Enum):
    LOAD_WAIT = "load-wait"
    LOAD_READY = "load-ready"
    REDUCTION = "reduction"


def entries_for(chunk_bytes: int, entry_bytes: int) -> int:
    """Capacity units consumed by ``chunk_bytes`` of content-array data."""
    return max(1, -(-chunk_bytes // entry_bytes))


@dataclass
class MergeEntry:
    """One merging-table session."""

    address: Address
    kind: SessionKind
    chunk_bytes: int
    expected: int
    status: Status
    first_arrival: float
    last_access: float
    count: int = 0
    waiters: List[int] = field(default_factory=list)
    #: GPUs that contributed reduction requests (for credit return).
    participants: List[int] = field(default_factory=list)
    acc: Any = None                      # reduction accumulator
    cached: Any = None                   # load content array
    charged_entries: int = 0
    evict_on_ready: bool = False
    timeout_event: Optional[Event] = None
    obs_aid: int = -1                    # async-span id (tracing only)
    #: Causal-node ids of the switch-hop events that delivered each
    #: contribution (repro.obs.causality; filled only when recording).
    cz_contribs: List[int] = field(default_factory=list)

    @property
    def home(self) -> int:
        return self.address.home_gpu


class MergeUnit:
    """Per-switch CAIS merge unit; one logical table partition per port."""

    #: In-switch compute unit: an NVLS_FAIL/PLANE_FAIL fault drains it.
    COMPUTE_UNIT = True

    def __init__(self, stats: MergeStats, num_gpus: int,
                 capacity_entries: Optional[int] = 320,
                 entry_bytes: int = 128,
                 timeout_ns: Optional[float] = 50_000.0,
                 emit_credits: bool = False,
                 eviction_policy: str = "lru",
                 fault_state=None):
        self.stats = stats
        self.num_gpus = num_gpus
        #: ``None`` means unbounded (used to *measure* required capacity).
        self.capacity_entries = capacity_entries
        self.entry_bytes = entry_bytes
        self.timeout_ns = timeout_ns
        self.emit_credits = emit_credits
        if eviction_policy not in ("lru", "fifo"):
            raise ProtocolError(
                f"unknown eviction policy {eviction_policy!r}")
        #: "lru" refreshes an entry's victim rank on every access (the
        #: paper's policy); "fifo" evicts in allocation order (ablation).
        self.eviction_policy = eviction_policy
        # Per home-port LRU table: port -> OrderedDict[key -> entry].
        self._tables: Dict[int, "OrderedDict[Tuple[Address, SessionKind], MergeEntry]"] = {}
        self._used: Dict[int, int] = {}
        self._switch: Optional[Switch] = None
        # Fault-injection state (repro.faults): a drained unit stops
        # allocating sessions and bypasses everything; stale fills for
        # sessions killed by the drain are swallowed on arrival.
        self._fault_state = fault_state
        self.draining = False
        self._stale_fills: set = set()
        self._tr = current_tracer()
        self._mx = current_metrics()
        self._cz = current_causality()
        self._next_aid = 0
        # (switch index, port) -> track: one trace row per merge-table bank.
        self._bank_tracks: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    def _bank_track(self, switch: Switch, port: int) -> int:
        key = (switch.index, port)
        track = self._bank_tracks.get(key)
        if track is None:
            track = self._tr.track(f"Switch {switch.index}",
                                   f"merge bank {port}")
            self._bank_tracks[key] = track
        return track

    def _entry_open(self, switch: Switch, entry: MergeEntry) -> None:
        if self._mx.enabled:
            self._mx.counter("cais.merge.allocs").inc()
        if not self._tr.enabled:
            return
        entry.obs_aid = self._next_aid
        self._next_aid += 1
        self._tr.async_begin(
            self._bank_track(switch, entry.home),
            f"merge {entry.kind.value}", entry.obs_aid,
            switch.sim.now, cat="merge",
            args={"expected": entry.expected,
                  "chunk_bytes": entry.chunk_bytes})

    def _entry_close(self, switch: Switch, entry: MergeEntry,
                     completed: bool) -> None:
        if self._mx.enabled:
            if completed:
                self._mx.histogram("cais.merge.session_wait_ns").record(
                    entry.last_access - entry.first_arrival)
            else:
                self._mx.counter("cais.merge.evictions").inc()
        if self._tr.enabled and entry.obs_aid >= 0:
            self._tr.async_end(
                self._bank_track(switch, entry.home),
                f"merge {entry.kind.value}", entry.obs_aid,
                switch.sim.now, cat="merge",
                args={"completed": completed, "count": entry.count})

    # ------------------------------------------------------------------
    # Fault injection: graceful drain
    # ------------------------------------------------------------------
    def fail(self, switch: Switch) -> None:
        """Drain the merge unit after a compute-unit/plane fault.

        Correctness is preserved by the protocol's own partial-flush
        semantics: reduction sessions flush their accumulated sum with a
        ``contributions`` count (the home GPU completes by count, so late
        contributions arriving as bypassed partials still add up exactly
        once); Load-Wait waiters are reissued as direct home reads and the
        now-orphaned merge fill is swallowed on arrival.  From then on the
        unit bypasses every request, degrading CAIS to direct home-memory
        traffic instead of wedging or losing contributions.
        """
        if self.draining:
            return
        self.draining = True
        for table in list(self._tables.values()):
            for entry in list(table.values()):
                if entry.kind is SessionKind.REDUCTION:
                    self._flush_reduction(switch, entry, partial=True)
                elif entry.status is Status.LOAD_WAIT:
                    for waiter in entry.waiters:
                        direct = Message(
                            op=Op.LOAD_REQ, src=gpu_node(waiter),
                            dst=gpu_node(entry.home), address=entry.address,
                            meta={"direct": True, "requester": waiter,
                                  "chunk_bytes": entry.chunk_bytes})
                        switch.forward(direct)
                    self._stale_fills.add(entry.address)
                self._release(switch, entry, completed=False)
        if self._fault_state is not None:
            self._fault_state.counters.bump("merge_drains")

    # ------------------------------------------------------------------
    # SwitchEngine interface
    # ------------------------------------------------------------------
    def process(self, switch: Switch, msg: Message, in_port: int) -> bool:
        self._switch = switch
        if msg.op is Op.LD_CAIS_REQ:
            self._on_load_request(switch, msg)
            return True
        if msg.op is Op.LD_CAIS_RESP and msg.meta.get("merge_fill"):
            self._on_load_fill(switch, msg)
            return True
        if msg.op is Op.RED_CAIS:
            self._on_reduction(switch, msg)
            return True
        return False

    # ------------------------------------------------------------------
    # Micro-function 1: load request merging
    # ------------------------------------------------------------------
    def _on_load_request(self, switch: Switch, msg: Message) -> None:
        addr = self._require_address(msg)
        requester = msg.src[1]
        chunk = msg.meta.get("chunk_bytes", msg.payload_bytes)
        if self.draining:
            self._bypass_load(switch, msg, requester, chunk)
            return
        expected = msg.meta.get("expected", self.num_gpus - 1)
        key = (addr, SessionKind.LOAD)
        table = self._table(addr.home_gpu)
        entry = table.get(key)
        now = switch.sim.now

        if entry is None:
            entry = self._allocate(switch, addr, SessionKind.LOAD, chunk,
                                   expected, Status.LOAD_WAIT, charge=1)
            if entry is None:
                self._bypass_load(switch, msg, requester, chunk)
                return
            self.stats.requests_started += 1
            entry.count = 1
            entry.waiters.append(requester)
            fill = Message(op=Op.LOAD_REQ, src=switch.node_id,
                           dst=gpu_node(addr.home_gpu), address=addr,
                           meta={"merge_fill": True, "chunk_bytes": chunk})
            switch.forward(fill)
            self._touch(switch, entry)
            return

        self.stats.requests_merged += 1
        if self._mx.enabled:
            self._mx.counter("cais.merge.hits").inc()
        entry.count += 1
        self._touch(switch, entry)
        if self.eviction_policy == "lru":
            table.move_to_end(key)
        if entry.status is Status.LOAD_WAIT:
            entry.waiters.append(requester)
        else:
            self._respond_load(switch, entry, requester)
            if entry.count >= entry.expected:
                self._complete(switch, entry, now)

    def _on_load_fill(self, switch: Switch, msg: Message) -> None:
        addr = self._require_address(msg)
        key = (addr, SessionKind.LOAD)
        table = self._table(addr.home_gpu)
        entry = table.get(key)
        if entry is None or entry.status is not Status.LOAD_WAIT:
            if self._fault_state is not None:
                # Orphaned fill: its session was killed by a drain, or the
                # fill was rerouted here from a failed plane.  The waiters
                # were already reissued as direct loads, so drop it.
                self._stale_fills.discard(addr)
                self._fault_state.counters.bump("stale_fills_dropped")
                return
            raise ProtocolError(f"unexpected merge fill for {addr}")
        entry.status = Status.LOAD_READY
        entry.cached = msg.payload
        # Serve everything queued before caching (paper step 3).
        for waiter in entry.waiters:
            self._respond_load(switch, entry, waiter)
        entry.waiters.clear()
        self._touch(switch, entry)
        if entry.count >= entry.expected or entry.evict_on_ready:
            self._complete(switch, entry, switch.sim.now,
                           completed=entry.count >= entry.expected)
            return
        # Grow the charge from metadata-only to the full content array.
        grow = entries_for(entry.chunk_bytes, self.entry_bytes) - 1
        if grow > 0 and not self._reserve(switch, addr.home_gpu, grow,
                                          exclude=entry):
            # Cannot cache the data: answer the queued waiters (done above)
            # and retire without caching; later requests re-fetch.
            self._complete(switch, entry, switch.sim.now, completed=False)
            return
        if grow > 0:
            entry.charged_entries += grow
            self.stats.occupancy_change(switch.sim.now, switch.index,
                                        addr.home_gpu, grow)

    def _respond_load(self, switch: Switch, entry: MergeEntry,
                      requester: int) -> None:
        resp = Message(op=Op.LD_CAIS_RESP, src=switch.node_id,
                       dst=gpu_node(requester),
                       payload_bytes=entry.chunk_bytes,
                       address=entry.address, payload=entry.cached,
                       meta={"completed": True})
        switch.forward(resp)

    def _bypass_load(self, switch: Switch, msg: Message, requester: int,
                     chunk: int) -> None:
        self.stats.bypasses += 1
        if self._mx.enabled:
            self._mx.counter("cais.merge.bypasses").inc()
        direct = Message(op=Op.LOAD_REQ, src=msg.src,
                         dst=gpu_node(msg.address.home_gpu),
                         address=msg.address,
                         meta={"direct": True, "requester": requester,
                               "chunk_bytes": chunk})
        switch.forward(direct)

    # ------------------------------------------------------------------
    # Micro-function 2: reduction request merging
    # ------------------------------------------------------------------
    def _on_reduction(self, switch: Switch, msg: Message) -> None:
        addr = self._require_address(msg)
        state = self._fault_state
        if state is not None and RKEY_META in msg.meta:
            if msg.meta.get("corrupted"):
                # Damaged on the wire: discard without acking; the sender's
                # retransmit timer re-delivers a clean copy.
                state.counters.bump("corrupt_discards")
                return
            rkey = msg.meta[RKEY_META]
            ack = Message(op=Op.RED_CAIS_ACK, src=switch.node_id,
                          dst=msg.src, meta={RKEY_META: rkey})
            switch.forward(ack)
            if not state.retransmitter.accept(rkey):
                return                  # duplicate delivery: re-acked only
        if self.draining:
            self._bypass_reduction(switch, msg)
            return
        chunk = msg.payload_bytes
        expected = msg.meta.get("expected", self.num_gpus - 1)
        key = (addr, SessionKind.REDUCTION)
        table = self._table(addr.home_gpu)
        entry = table.get(key)
        now = switch.sim.now

        if entry is None:
            charge = entries_for(chunk, self.entry_bytes)
            entry = self._allocate(switch, addr, SessionKind.REDUCTION, chunk,
                                   expected, Status.REDUCTION, charge=charge)
            if entry is None:
                self._bypass_reduction(switch, msg)
                return
            self.stats.requests_started += 1
        else:
            self.stats.requests_merged += 1
            if self._mx.enabled:
                self._mx.counter("cais.merge.hits").inc()
            if self.eviction_policy == "lru":
                table.move_to_end(key)
        entry.count += 1
        entry.participants.append(msg.src[1])
        entry.acc = combine_payloads(entry.acc, msg.payload)
        if self._cz.enabled:
            # Ambient cause here is the switch-hop node that delivered
            # this contribution; the flush joins all of them.
            entry.cz_contribs.append(self._cz.current)
        # Second-arrival crediting (TB-aware throttling feedback): a
        # contribution's credit returns as soon as a *peer matches it* —
        # so a GPU running ahead (whose requests sit unmatched, it is
        # "ahead of its peer TBs") exhausts its window and stalls, while
        # GPUs matching existing sessions are never slowed.
        if self.emit_credits:
            if entry.count == 2:
                self._send_credit(switch, entry, entry.participants[0])
                self._send_credit(switch, entry, entry.participants[1])
            elif entry.count > 2:
                self._send_credit(switch, entry, msg.src[1])
        self._touch(switch, entry)
        if entry.count >= entry.expected:
            self._flush_reduction(switch, entry, partial=False)
            self._complete(switch, entry, now)

    def _flush_reduction(self, switch: Switch, entry: MergeEntry,
                         partial: bool) -> None:
        if self._cz.enabled:
            # Zero-duration join node: the combined write is caused by
            # *every* contribution; the critical-path walk follows the
            # latest-arriving one (the straggler).
            now = switch.sim.now
            self._cz.current = self._cz.node(
                SWITCH_MERGE, now, now,
                f"sw{switch.index} merge flush"
                f"{' (partial)' if partial else ''}",
                parents=tuple((c, "merge") for c in entry.cz_contribs))
        result = Message(op=Op.STORE, src=switch.node_id,
                         dst=gpu_node(entry.home),
                         payload_bytes=entry.chunk_bytes,
                         address=entry.address, payload=entry.acc,
                         meta={"reduced": True, "contributions": entry.count,
                               "partial": partial})
        switch.forward(result)
        if partial:
            self.stats.partial_reductions_emitted += 1

    def _bypass_reduction(self, switch: Switch, msg: Message) -> None:
        self.stats.bypasses += 1
        if self._mx.enabled:
            self._mx.counter("cais.merge.bypasses").inc()
        direct = Message(op=Op.STORE, src=msg.src,
                         dst=gpu_node(msg.address.home_gpu),
                         payload_bytes=msg.payload_bytes, address=msg.address,
                         payload=msg.payload,
                         meta={"reduced": True, "contributions": 1,
                               "partial": True})
        switch.forward(direct)
        if self.emit_credits:
            credit = Message(op=Op.CREDIT, src=switch.node_id,
                             dst=gpu_node(msg.src[1]), address=msg.address,
                             meta={"kind": SessionKind.REDUCTION.value})
            switch.forward(credit)

    # ------------------------------------------------------------------
    # Table management: allocation, LRU eviction, timeout
    # ------------------------------------------------------------------
    def _table(self, port: int) -> "OrderedDict[Tuple[Address, SessionKind], MergeEntry]":
        if port not in self._tables:
            self._tables[port] = OrderedDict()
            self._used[port] = 0
        return self._tables[port]

    def _allocate(self, switch: Switch, addr: Address, kind: SessionKind,
                  chunk: int, expected: int, status: Status,
                  charge: int) -> Optional[MergeEntry]:
        port = addr.home_gpu
        self._table(port)
        if not self._reserve(switch, port, charge):
            return None
        now = switch.sim.now
        entry = MergeEntry(address=addr, kind=kind, chunk_bytes=chunk,
                           expected=expected, status=status,
                           first_arrival=now, last_access=now,
                           charged_entries=charge)
        self._tables[port][(addr, kind)] = entry
        self._used[port] += charge
        self.stats.occupancy_change(now, switch.index, port, charge)
        self._entry_open(switch, entry)
        return entry

    def _reserve(self, switch: Switch, port: int, needed: int,
                 exclude: Optional[MergeEntry] = None) -> bool:
        """Make room for ``needed`` entries on ``port``, evicting LRU
        sessions if necessary.  Returns False when space cannot be found."""
        if self.capacity_entries is None:
            return True
        while self._used[port] + needed > self.capacity_entries:
            victim = self._pick_victim(port, exclude)
            if victim is None:
                return False
            self._evict(switch, victim, reason="lru")
        return True

    def _pick_victim(self, port: int,
                     exclude: Optional[MergeEntry]) -> Optional[MergeEntry]:
        oldest_wait: Optional[MergeEntry] = None
        for entry in self._tables[port].values():   # LRU order
            if entry is exclude:
                continue
            if entry.status is Status.LOAD_WAIT:
                # Cannot drop an outstanding fill (paper's eviction rule 2).
                if oldest_wait is None:
                    oldest_wait = entry
                continue
            return entry
        if oldest_wait is not None:
            # No immediately evictable entry: defer the LRU Load-Wait
            # session so it frees as soon as its fill lands, and let the
            # caller bypass — avoiding thrashing and deadlock.
            oldest_wait.evict_on_ready = True
        return None

    def _evict(self, switch: Switch, entry: MergeEntry, reason: str) -> None:
        if entry.kind is SessionKind.REDUCTION:
            self._flush_reduction(switch, entry, partial=True)
        if reason == "lru":
            self.stats.lru_evictions += 1
        else:
            self.stats.timeout_evictions += 1
        self._release(switch, entry, completed=False)

    def _complete(self, switch: Switch, entry: MergeEntry, now: float,
                  completed: bool = True) -> None:
        self._release(switch, entry, completed=completed)

    def _release(self, switch: Switch, entry: MergeEntry,
                 completed: bool) -> None:
        port = entry.home
        key = (entry.address, entry.kind)
        if key not in self._tables.get(port, {}):
            return
        del self._tables[port][key]
        self._used[port] -= entry.charged_entries
        self.stats.occupancy_change(switch.sim.now, switch.index, port,
                                    -entry.charged_entries)
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
        if completed:
            self.stats.sessions_completed += 1
            self.stats.record_session_wait(entry.first_arrival,
                                           entry.last_access)
        self._entry_close(switch, entry, completed)
        # A sole contributor's credit returns when its session retires
        # (completion cannot strand it; eviction/timeout must not either).
        if self.emit_credits and entry.count == 1 and entry.participants:
            self._send_credit(switch, entry, entry.participants[0])

    def _send_credit(self, switch: Switch, entry: MergeEntry,
                     gpu: int) -> None:
        credit = Message(op=Op.CREDIT, src=switch.node_id,
                         dst=gpu_node(gpu), address=entry.address,
                         meta={"kind": entry.kind.value})
        switch.forward(credit)

    def _touch(self, switch: Switch, entry: MergeEntry) -> None:
        entry.last_access = switch.sim.now
        if self.timeout_ns is None:
            return
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
        entry.timeout_event = switch.sim.schedule(
            self.timeout_ns, self._on_timeout, switch, entry)

    def _on_timeout(self, switch: Switch, entry: MergeEntry) -> None:
        table = self._tables.get(entry.home, {})
        key = (entry.address, entry.kind)
        if table.get(key) is not entry:
            return                      # stale timer for a retired session
        idle = switch.sim.now - entry.last_access
        # The small epsilon absorbs float error when the timer fires at
        # exactly last_access + timeout; an early fire re-arms the timer
        # instead of silently stranding the session.
        if idle + 1e-6 < self.timeout_ns:
            entry.timeout_event = switch.sim.schedule(
                self.timeout_ns - idle, self._on_timeout, switch, entry)
            return
        if entry.status is Status.LOAD_WAIT:
            # The fill from the home GPU is still outstanding; free the
            # session as soon as it lands instead of dropping it.
            entry.evict_on_ready = True
            return
        self._evict(switch, entry, reason="timeout")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _require_address(msg: Message) -> Address:
        if msg.address is None:
            raise ProtocolError(f"{msg.op.value} requires an address")
        return msg.address

    def open_sessions(self) -> int:
        """Live sessions across all ports of this switch."""
        return sum(len(t) for t in self._tables.values())

    def used_entries(self, port: int) -> int:
        """Live capacity units charged on ``port``."""
        return self._used.get(port, 0)
