"""Cross-GPU TB coordination (paper Section III-B).

Three cooperating mechanisms align the *timing* of mergeable requests so the
merge unit sees them within one table-entry lifetime:

* **Group Sync Table** (switch side, Fig. 8b): counts sync requests per
  (TB group, phase); when every participating GPU has registered, it
  broadcasts a release.  Used for both *pre-launch* and *pre-access*
  synchronization.  The packets are empty (one flit), so a sync costs one
  GPU<->switch round trip (~0.5 us in the paper's setup).
* **GPU-side synchronizer** protocol helpers: the actual module lives with
  the GPU model (:mod:`repro.gpu.synchronizer`); here we define the plane
  mapping that makes all GPUs of a group converge on one switch.
* **TB-aware request throttling**: a credit window on outstanding mergeable
  sessions per GPU.  A GPU running ahead of its peers exhausts its credits
  (its sessions cannot retire until peers contribute) and stalls, letting
  the others catch up — driven by the switch's per-address tracking state
  (the merge unit's completion credits).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..common.errors import ProtocolError
from ..interconnect.message import Message, Op, gpu_node
from ..interconnect.switch import Switch
from ..obs import current_causality
from ..obs.causality import BARRIER_SYNC


class SyncPhase(enum.Enum):
    """The two synchronization points of Section III-B-2."""

    LAUNCH = "launch"        # before the TB is dispatched to an SM
    ACCESS = "access"        # at the first *.cais instruction of a warp


def plane_for_group(group_id: int, num_planes: int) -> int:
    """Switch plane handling a TB group's sync traffic (deterministic)."""
    if num_planes <= 0:
        raise ValueError(f"num_planes must be positive, got {num_planes}")
    return group_id % num_planes


@dataclass
class _SyncState:
    expected: int
    arrived: Set[int] = field(default_factory=set)
    timer: object = None
    #: Causal-node ids of the switch hops that delivered each SYNC_REQ
    #: (repro.obs.causality; filled only when recording).
    cz_arrivals: List[int] = field(default_factory=list)


class GroupSyncTable:
    """Switch engine: lightweight per-group counters + release broadcast.

    ``release_timeout_ns`` is the forward-progress guarantee: a group whose
    stragglers never register (e.g. their accesses were satisfied by a
    peer kernel's cached fetch) is released to whoever did register, so a
    miscounted barrier costs alignment, never liveness.
    """

    def __init__(self,
                 release_timeout_ns: Optional[float] = 40_000.0) -> None:
        self.release_timeout_ns = release_timeout_ns
        self._states: Dict[Tuple[int, SyncPhase], _SyncState] = {}
        self.releases_broadcast = 0
        self.timeout_releases = 0
        self._cz = current_causality()

    def process(self, switch: Switch, msg: Message, in_port: int) -> bool:
        if msg.op is not Op.SYNC_REQ:
            return False
        if msg.group_id is None:
            raise ProtocolError("sync request without a group id")
        phase = SyncPhase(msg.meta["phase"])
        expected = msg.meta["expected"]
        key = (msg.group_id, phase)
        state = self._states.get(key)
        if state is None:
            state = _SyncState(expected=expected)
            self._states[key] = state
            if self.release_timeout_ns is not None:
                state.timer = switch.sim.schedule(
                    self.release_timeout_ns, self._timeout, switch, key)
        elif state.expected != expected:
            raise ProtocolError(
                f"group {msg.group_id} expected-count mismatch: "
                f"{state.expected} vs {expected}")
        state.arrived.add(msg.src[1])
        if self._cz.enabled:
            state.cz_arrivals.append(self._cz.current)
        if len(state.arrived) >= state.expected:
            self._release(switch, key, state)
        return True

    def _release(self, switch: Switch, key: Tuple[int, SyncPhase],
                 state: _SyncState) -> None:
        del self._states[key]
        if state.timer is not None:
            state.timer.cancel()
        self.releases_broadcast += 1
        group_id, phase = key
        if self._cz.enabled:
            # The release broadcast is caused by every registered arrival;
            # the critical-path walk follows the last one in.
            now = switch.sim.now
            self._cz.current = self._cz.node(
                BARRIER_SYNC, now, now,
                f"sw{switch.index} group {group_id} {phase.value} release",
                parents=tuple((a, "sync") for a in state.cz_arrivals))
        for gpu in state.arrived:
            release = Message(op=Op.SYNC_RELEASE, src=switch.node_id,
                              dst=gpu_node(gpu), group_id=group_id,
                              meta={"phase": phase.value})
            switch.forward(release)

    def _timeout(self, switch: Switch, key: Tuple[int, SyncPhase]) -> None:
        state = self._states.get(key)
        if state is None:
            return
        self.timeout_releases += 1
        self._release(switch, key, state)

    def pending_groups(self) -> int:
        """Groups still waiting for stragglers."""
        return len(self._states)

    def open_sessions(self) -> int:
        """Alias for deadlock diagnostics (see Switch.outstanding_work)."""
        return len(self._states)

    def fail(self, switch: Switch) -> None:
        """Plane-failure drain: release every pending group immediately.

        New sync traffic is rerouted to healthy planes by the network; the
        groups parked here would otherwise wait out the release timeout, so
        an eager release converts the fault into a one-shot alignment loss
        rather than a stall (the table's releases are advisory, not a
        correctness barrier).
        """
        for key, state in list(self._states.items()):
            if key in self._states:     # a release may cascade
                self.timeout_releases += 1
                self._release(switch, key, state)


class CreditThrottle:
    """Per-GPU window of outstanding mergeable sessions.

    ``acquire`` either grants a credit immediately or queues the continuation
    until a credit is released (the merge unit's completion CREDIT arrives).
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._in_flight = 0
        self._waiting: Deque[Callable[[], None]] = deque()
        self.stalls = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def acquire(self, on_granted: Callable[[], None]) -> None:
        """Run ``on_granted`` now if a credit is free, else queue it."""
        if self._in_flight < self.window:
            self._in_flight += 1
            on_granted()
        else:
            self.stalls += 1
            self._waiting.append(on_granted)

    def release(self) -> None:
        """Return one credit; wakes the oldest queued issuer if any."""
        if self._in_flight <= 0:
            raise ProtocolError("credit released that was never acquired")
        if self._waiting:
            # Hand the credit straight to the next issuer.
            self._waiting.popleft()()
        else:
            self._in_flight -= 1
