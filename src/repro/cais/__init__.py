"""CAIS core: compute-aware ISA, merge unit, TB coordination, dataflow."""

from .compiler import (
    BlockIdx,
    CompiledKernel,
    Const,
    Env,
    Expr,
    GpuId,
    KernelIR,
    MemInstr,
    MemOpKind,
    Param,
    TBGroup,
    compile_kernel,
    reset_group_ids,
)
from .coordination import (
    CreditThrottle,
    GroupSyncTable,
    SyncPhase,
    plane_for_group,
)
from .isa import CAIS_OPS, is_cais_request, mnemonic
from .merge_unit import MergeUnit, SessionKind, Status, entries_for

# NOTE: the dataflow optimizer is intentionally NOT re-exported here.
# repro.cais.dataflow imports the GPU executor and the LLM tiling layer,
# both of which import back into repro.cais (compiler, coordination);
# importing it from this package __init__ would close that cycle.  Use
# ``from repro.cais.dataflow import CaisRunner`` directly.

__all__ = [
    "BlockIdx",
    "CAIS_OPS",
    "is_cais_request",
    "mnemonic",
    "CompiledKernel",
    "Const",
    "CreditThrottle",
    "Env",
    "Expr",
    "GpuId",
    "GroupSyncTable",
    "KernelIR",
    "MemInstr",
    "MemOpKind",
    "MergeUnit",
    "Param",
    "SessionKind",
    "Status",
    "SyncPhase",
    "TBGroup",
    "compile_kernel",
    "entries_for",
    "plane_for_group",
    "reset_group_ids",
]
