"""ACK-timeout retransmission with bounded exponential backoff.

One harness-wide :class:`Retransmitter` gives reliable delivery to the
fault-exposed data-plane messages (ring collective chunks and CAIS
reduction contributions).  Senders ``track`` a message under a unique
``rkey`` carried in its metadata; the receiver acks the key back and
deduplicates redelivery with ``accept``.  A lost message (or lost ack)
times out and is resent with exponentially growing timeouts until either
the ack lands or the retry budget is exhausted — at which point the
sim-time watchdog (:mod:`repro.faults.watchdog`) reports the stall rather
than the run hanging silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, \
    TYPE_CHECKING

from ..common.config import FaultSpec
from ..common.errors import ConfigError
from ..common.events import Event, Simulator
from ..obs import current_causality
from ..obs.causality import RETRANSMIT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .injector import FaultCounters

#: A retransmission key: hashable, unique per logical message.
Rkey = Tuple

RKEY_META = "rkey"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff parameters (see :class:`FaultSpec`)."""

    ack_timeout_ns: float = 100_000.0
    max_retries: int = 8
    backoff_base: float = 2.0
    max_backoff_ns: float = 1.6e6

    @classmethod
    def from_spec(cls, spec: FaultSpec) -> "RetryPolicy":
        return cls(ack_timeout_ns=spec.ack_timeout_ns,
                   max_retries=spec.max_retries,
                   backoff_base=spec.backoff_base,
                   max_backoff_ns=spec.max_backoff_ns)

    def timeout_for(self, attempt: int) -> float:
        """Ack deadline for the ``attempt``-th (re)send, attempt 0 first."""
        return min(self.ack_timeout_ns * self.backoff_base ** attempt,
                   self.max_backoff_ns)


class _Outstanding:
    __slots__ = ("attempt", "resend", "timer", "timeout_scale")

    def __init__(self, resend: Callable[[int], None], timeout_scale: float):
        self.attempt = 0
        self.resend = resend
        self.timer: Optional[Event] = None
        self.timeout_scale = timeout_scale


class Retransmitter:
    """Sender-side ack tracking plus receiver-side dedup, in sim time."""

    def __init__(self, sim: Simulator, policy: RetryPolicy,
                 counters: "FaultCounters"):
        self.sim = sim
        self.policy = policy
        self.counters = counters
        self._outstanding: Dict[Rkey, _Outstanding] = {}
        self._seen: Set[Rkey] = set()
        self._cz = current_causality()
        self._retry_listeners: List[Callable[[], None]] = []

    def add_retry_listener(self, callback: Callable[[], None]) -> None:
        """Called once per retransmission (after the ``retries`` counter
        bump).  The serving layer hangs its per-request retry budget
        here; listeners must not send messages of their own."""
        self._retry_listeners.append(callback)

    # -- sender side ---------------------------------------------------
    def track(self, key: Rkey, resend: Callable[[int], None],
              timeout_scale: float = 1.0) -> None:
        """Arm the ack timer for a just-sent message.

        ``resend(attempt)`` must rebuild and re-inject the message (the
        original object is consumed by delivery); it is called with
        attempt numbers 1..max_retries.  ``timeout_scale`` stretches the
        policy's deadlines for paths with longer round trips (multi-hop,
        large serialized payloads, deep queues).
        """
        if key in self._outstanding:
            return
        entry = _Outstanding(resend, timeout_scale)
        self._outstanding[key] = entry
        self._arm(key, entry)

    def ack(self, key: Rkey) -> bool:
        """Ack arrival: disarm the timer.  False for unknown/stale keys."""
        entry = self._outstanding.pop(key, None)
        if entry is None:
            return False
        if entry.timer is not None:
            entry.timer.cancel()
        return True

    def outstanding(self) -> int:
        return len(self._outstanding)

    def quiesce(self) -> None:
        """Drop all tracked messages and their timers (end of workload:
        anything still unacked only had its ack in flight)."""
        for entry in self._outstanding.values():
            if entry.timer is not None:
                entry.timer.cancel()
        self._outstanding.clear()

    def _arm(self, key: Rkey, entry: _Outstanding) -> None:
        entry.timer = self.sim.schedule(
            self.policy.timeout_for(entry.attempt) * entry.timeout_scale,
            self._on_timeout, key)

    def _on_timeout(self, key: Rkey) -> None:
        entry = self._outstanding.get(key)
        if entry is None:
            return
        entry.attempt += 1
        if entry.attempt > self.policy.max_retries:
            # Give up; the watchdog turns any resulting stall into a
            # diagnosable DeadlockError instead of a silent hang.
            del self._outstanding[key]
            self.counters.bump("retry_exhausted")
            return
        self.counters.bump("retries")
        for callback in self._retry_listeners:
            callback()
        if self._cz.enabled:
            # Attribute the timeout wait (and the resent copy's whole
            # causal subtree) to retransmission.  The node spans the ack
            # wait that just expired, so interval-weighted attribution
            # (request phase breakdowns, critical-path segments — which
            # clamp overlaps) charges the lost time to `retransmit`
            # rather than seeing a zero-duration blip.  The timer event
            # carries the original send's cause as ambient; chained
            # retries link through each other via re-arming below.
            now = self.sim.now
            waited = (self.policy.timeout_for(entry.attempt - 1)
                      * entry.timeout_scale)
            self._cz.current = self._cz.node(
                RETRANSMIT, now - waited, now,
                f"retransmit attempt {entry.attempt}",
                parents=((self._cz.current, "retry"),))
        entry.resend(entry.attempt)
        self._arm(key, entry)

    # -- receiver side -------------------------------------------------
    def accept(self, key: Rkey) -> bool:
        """First delivery of ``key``?  Duplicates return False."""
        if key in self._seen:
            self.counters.bump("duplicates_discarded")
            return False
        self._seen.add(key)
        return True


class RequestRetryBudget:
    """Bounds retry storms per serving request.

    The fabric's retransmissions are not attributable to individual
    requests (a dropped ring chunk carries a whole iteration's batch), so
    the budget charges *collectively*: every retry observed between two
    ``settle`` calls (one iteration) is charged to each request that
    participated in that iteration.  A request stuck co-scheduled with a
    retry storm therefore accumulates charge each iteration it fails to
    make progress through, and once its cumulative charge exceeds the
    budget the batcher aborts it — dropping its KV cache and requeueing a
    full re-prefill — instead of letting the storm stretch every other
    request's tail.  Deterministic: pure function of the retry sequence
    and the iteration membership.
    """

    def __init__(self, budget: int):
        if budget < 1:
            raise ConfigError(
                f"RequestRetryBudget.budget={budget!r} must be >= 1")
        self.budget = budget
        self._pending = 0
        #: Cumulative charge per request id, cleared on abort/finish.
        self.charges: Dict[int, int] = {}

    def note_retry(self) -> None:
        """Retransmitter listener: one retry happened."""
        self._pending += 1

    def settle(self, rids: Sequence[int]) -> List[int]:
        """Charge the retries since the last settle to every participant;
        returns the rids (in participation order) now over budget."""
        delta, self._pending = self._pending, 0
        if not delta:
            return []
        over: List[int] = []
        for rid in rids:
            charge = self.charges.get(rid, 0) + delta
            self.charges[rid] = charge
            if charge > self.budget:
                over.append(rid)
        return over

    def reset(self, rid: int) -> None:
        """Forget a request's charge (it was aborted or finished)."""
        self.charges.pop(rid, None)
