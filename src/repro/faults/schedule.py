"""Deterministic, seeded fault timelines.

A :class:`FaultSchedule` is a pure function of the :class:`SystemConfig`:
every draw comes from a named :class:`~repro.common.rng.RngPool` stream
keyed by the fault seed, so the same config always yields an identical
timeline regardless of what the simulation itself does.

Monotone degradation by construction
------------------------------------
The per-entity trigger draws are made *independently of the intensity*: a
candidate fault materialises iff its latent uniform ``u`` satisfies
``u < rate * intensity``.  Because ``u``, the onset and the duration are
always drawn (whether or not the fault triggers), the set of faults at a
lower intensity is a strict subset of the set at a higher one, and the
shared faults keep identical onsets/durations — only their severity scales.
Degradation curves over intensity are therefore structurally monotone, not
just monotone in expectation over seeds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common.config import FaultSpec, SystemConfig
from ..common.rng import RngPool


class FaultKind(enum.Enum):
    LINK_DEGRADE = "link_degrade"     # bandwidth cut on one link direction
    LINK_DOWN = "link_down"           # transient full outage of one link
    PLANE_FAIL = "plane_fail"         # whole switch plane out of service
    NVLS_FAIL = "nvls_fail"           # in-switch compute unit dead, plane up
    GPU_STRAGGLER = "gpu_straggler"   # compute-time multiplier window
    SM_THROTTLE = "sm_throttle"       # fraction of SM slots offline


#: Windowed fault kinds get a matching clear event ``duration_ns`` later;
#: the rest are permanent for the run.
WINDOWED_KINDS = frozenset({FaultKind.LINK_DEGRADE, FaultKind.LINK_DOWN,
                            FaultKind.GPU_STRAGGLER, FaultKind.SM_THROTTLE})


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what, where, when, how bad.

    ``magnitude`` is kind-specific: surviving bandwidth fraction for
    LINK_DEGRADE, compute-time multiplier for GPU_STRAGGLER, surviving
    SM-slot fraction for SM_THROTTLE, unused (1.0) otherwise.
    ``duration_ns == 0`` means the fault is permanent.
    """

    time_ns: float
    kind: FaultKind
    target: str
    duration_ns: float = 0.0
    magnitude: float = 1.0


def link_name(gpu: int, switch: int, up: bool) -> str:
    """Schedule target for one link direction — matches ``Link.name`` as
    wired by :class:`~repro.interconnect.network.Network`."""
    return (f"gpu{gpu}->sw{switch}" if up
            else f"sw{switch}->gpu{gpu}")


class FaultSchedule:
    """The full fault timeline for one run, sorted by injection time."""

    def __init__(self, spec: FaultSpec, events: Tuple[FaultEvent, ...]):
        self.spec = spec
        self.events = events

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: FaultKind) -> List[FaultEvent]:
        return [ev for ev in self.events if ev.kind is kind]

    def windows(self) -> List[Tuple[float, Optional[float]]]:
        """Active ``(start_ns, end_ns)`` span per fault; ``end_ns`` is
        ``None`` for permanent faults.  Used to classify serving requests
        as clean vs degraded: a request whose lifetime overlaps any span
        ran under degradation."""
        return [(ev.time_ns,
                 ev.time_ns + ev.duration_ns if ev.duration_ns > 0 else None)
                for ev in self.events]

    # Effective per-message probabilities (already intensity-scaled).
    @property
    def drop_probability(self) -> float:
        if not self.spec.enabled:
            return 0.0
        return self.spec.msg_drop_rate * self.spec.intensity

    @property
    def corrupt_probability(self) -> float:
        if not self.spec.enabled:
            return 0.0
        return self.spec.msg_corrupt_rate * self.spec.intensity

    @classmethod
    def build(cls, config: SystemConfig) -> "FaultSchedule":
        """Derive the timeline for ``config`` (empty when faults disabled)."""
        spec = config.faults
        if not spec.enabled:
            return cls(spec, ())
        pool = RngPool(config.seed)
        prefix = f"faults.{spec.fault_seed}"
        events: List[FaultEvent] = []

        def draw(stream_name: str, entity: str):
            """Latent (trigger-uniform, onset, duration-scale) triple.

            Always consumed, so the draw sequence — and hence every other
            entity's draws — is independent of which faults trigger.
            """
            rng = pool.stream(f"{prefix}.{stream_name}.{entity}")
            u = float(rng.random())
            onset = float(rng.random()) * (spec.horizon_ns
                                           - spec.fault_window_ns)
            dur_scale = 0.5 + float(rng.random())   # in [0.5, 1.5)
            return u, onset, dur_scale

        def windowed(kind: FaultKind, stream: str, entity: str,
                     target: str, rate: float, magnitude: float) -> None:
            u, onset, dur_scale = draw(stream, entity)
            if u < rate * spec.intensity:
                # Window length also grows with intensity (x0.5 at 0 to
                # x1.5 at 1): shared faults keep their onsets across
                # intensities, but higher intensity holds each one longer —
                # this keeps the degradation curve monotone even where
                # discrete-event timing noise would otherwise wash out the
                # severity interpolation alone.
                events.append(FaultEvent(
                    time_ns=onset, kind=kind, target=target,
                    duration_ns=(spec.fault_window_ns * dur_scale
                                 * (0.5 + spec.intensity)),
                    magnitude=magnitude))

        # Severities interpolate from harmless at intensity 0 to the spec's
        # configured worst case at intensity 1.
        degrade_bw = 1.0 - (1.0 - spec.link_degrade_floor) * spec.intensity
        slowdown = 1.0 + (spec.straggler_slowdown - 1.0) * spec.intensity
        throttle = 1.0 - (1.0 - spec.sm_throttle_floor) * spec.intensity

        for gpu in range(config.num_gpus):
            for sw in range(config.num_switches):
                for up in (True, False):
                    name = link_name(gpu, sw, up)
                    windowed(FaultKind.LINK_DEGRADE, "link_degrade",
                             name, name, spec.link_degrade_rate, degrade_bw)
                    windowed(FaultKind.LINK_DOWN, "link_down",
                             name, name, spec.link_down_rate, 0.0)

        # Plane failures are permanent; at least one plane must survive, so
        # later-onset candidates beyond num_switches-1 are discarded.
        plane_candidates: List[FaultEvent] = []
        for sw in range(config.num_switches):
            u, onset, _ = draw("plane_fail", f"sw{sw}")
            if u < spec.plane_fail_rate * spec.intensity:
                plane_candidates.append(FaultEvent(
                    time_ns=onset, kind=FaultKind.PLANE_FAIL,
                    target=f"sw:{sw}"))
        plane_candidates.sort(key=lambda ev: (ev.time_ns, ev.target))
        events.extend(plane_candidates[:max(config.num_switches - 1, 0)])

        for sw in range(config.num_switches):
            u, onset, _ = draw("nvls_fail", f"sw{sw}")
            if u < spec.nvls_fail_rate * spec.intensity:
                events.append(FaultEvent(
                    time_ns=onset, kind=FaultKind.NVLS_FAIL,
                    target=f"sw:{sw}"))

        for gpu in range(config.num_gpus):
            windowed(FaultKind.GPU_STRAGGLER, "straggler", f"gpu{gpu}",
                     f"gpu:{gpu}", spec.gpu_straggler_rate, slowdown)
            windowed(FaultKind.SM_THROTTLE, "sm_throttle", f"gpu{gpu}",
                     f"gpu:{gpu}", spec.sm_throttle_rate, throttle)

        events.sort(key=lambda ev: (ev.time_ns, ev.kind.value, ev.target))
        return cls(spec, tuple(events))
