"""Applies a :class:`FaultSchedule` to a live harness.

The injector is built by the harness after all hardware is wired.  It
schedules one sim event per fault (plus a clear event for windowed
faults), arms the per-message drop/corrupt hook on every link, and starts
the stall watchdog.  All resilience counters accumulate in the shared
:class:`FaultState`, which ends up in the run result's ``details`` and —
when observability is installed — mirrored as ``faults.*`` metrics with
fault windows drawn as spans on a dedicated trace track.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..common.events import Simulator
from ..common.config import FaultSpec
from ..common.rng import RngPool
from ..interconnect.message import Message, Op, mark_corrupted
from ..obs import current_metrics, current_timeseries, current_tracer
from .retry import RetryPolicy, Retransmitter
from .schedule import FaultEvent, FaultKind, FaultSchedule
from .watchdog import Watchdog

#: Ops the drop/corrupt fault may target.  Only messages protected by an
#: ack/retransmit protocol are eligible — ring chunk hops (STORE with ring
#: metadata), CAIS reduction contributions, and both ack types (a lost ack
#: is recovered by retransmit + receiver-side dedup).  Unprotected control
#: traffic is exempt: dropping it models a fault the paper's fabric cannot
#: recover from at all, which would turn every study run into a deadlock
#: report rather than a degradation curve.
_DROPPABLE_OPS = frozenset({Op.RED_CAIS, Op.RED_CAIS_ACK, Op.CHUNK_ACK})

#: Effective fabric capacity once NVLS collectives fall back to ring: the
#: degradation listeners (the serving batcher's replanning) treat the
#: fallback as halving collective throughput, matching the roughly 2x
#: NVLS-vs-ring gap the fig18 validation measures.
NVLS_FALLBACK_CAPACITY = 0.5


class FaultCounters:
    """Order-independent event counters, mirrored to obs metrics.

    With a simulator attached, every bump is also stamped into the
    windowed time-series sink (``faults.*`` per-window counters) so run
    reports can correlate retries and drops with fault windows.
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self._counts: Dict[str, int] = {}
        self._mx = current_metrics()
        self._ts = current_timeseries()
        self._sim = sim

    def bump(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n
        if self._mx.enabled:
            self._mx.counter(f"faults.{name}").inc(n)
        if self._ts.enabled and self._sim is not None:
            self._ts.counter(f"faults.{name}").add(self._sim.now, n)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_details(self) -> Dict[str, float]:
        """Flat ``faults.*`` mapping for RunResult.details."""
        return {f"faults.{k}": float(v)
                for k, v in sorted(self._counts.items())}


class FaultState:
    """Shared per-run fault context: counters, retransmitter, NVLS status.

    One instance is threaded through every component the resilience
    machinery touches (executor, merge units, ring drivers, comm adapters)
    so they agree on retransmission state and fallback decisions.
    """

    def __init__(self, sim: Simulator, spec: FaultSpec):
        self.sim = sim
        self.spec = spec
        self.counters = FaultCounters(sim)
        self.retransmitter = Retransmitter(sim, RetryPolicy.from_spec(spec),
                                           self.counters)
        #: True once any switch's NVLS compute unit has failed; new NVLS
        #: collectives must take the ring fallback from then on.
        self.nvls_faulted = False
        self._nvls_listeners: List[Callable[[], None]] = []
        #: Degraded-capacity tracking for workload-level replanning: the
        #: injector records the plane population at install time and every
        #: permanent capacity loss (plane death, NVLS fallback) notifies
        #: the degradation listeners so schedulers can shrink their next
        #: plan instead of stalling against hardware that no longer exists.
        self.planes_total = 0
        self.planes_failed: Set[int] = set()
        self._degradation_listeners: List[Callable[[], None]] = []

    def on_nvls_fault(self, callback: Callable[[], None]) -> None:
        """Register for notification when an NVLS compute unit dies."""
        self._nvls_listeners.append(callback)

    def on_degradation(self, callback: Callable[[], None]) -> None:
        """Register for notification of any permanent capacity loss."""
        self._degradation_listeners.append(callback)

    def _notify_degradation(self) -> None:
        for callback in self._degradation_listeners:
            callback()

    def nvls_unit_failed(self, switch_index: int) -> None:
        self.counters.bump("nvls_unit_failures")
        self.nvls_faulted = True
        for callback in self._nvls_listeners:
            callback()
        self._notify_degradation()

    def plane_failed(self, plane: int) -> None:
        """One switch plane left service permanently."""
        self.counters.bump("plane_failures")
        self.planes_failed.add(plane)
        self._notify_degradation()

    def capacity_factor(self) -> float:
        """Surviving fabric capacity in [0, 1] for degradation-aware
        replanning: the fraction of planes still alive, further capped at
        :data:`NVLS_FALLBACK_CAPACITY` once NVLS collectives run on the
        ring fallback."""
        factor = 1.0
        if self.planes_total:
            factor = ((self.planes_total - len(self.planes_failed))
                      / self.planes_total)
        if self.nvls_faulted:
            factor = min(factor, NVLS_FALLBACK_CAPACITY)
        return factor


class FaultInjector:
    """Arms a schedule's faults on the harness's live components."""

    def __init__(self, harness, state: FaultState,
                 schedule: FaultSchedule) -> None:
        self.harness = harness
        self.state = state
        self.schedule = schedule
        self.sim = harness.sim
        self.network = harness.network
        self._links = {link.name: link
                       for link in self.network.all_links()}
        self._drop_rng = RngPool(harness.config.seed).stream(
            f"faults.{schedule.spec.fault_seed}.msg")
        self._tr = current_tracer()
        self._ts = current_timeseries()
        self._track = (self._tr.track("Faults", "injected")
                       if self._tr.enabled else 0)
        self._next_span = 0
        self._scheduled: List = []
        self._watchdog: Optional[Watchdog] = None
        self._pending_reporters: List[Callable[[], str]] = []
        self._quiesced = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every fault, arm the message hook and the watchdog."""
        spec = self.schedule.spec
        self.state.planes_total = len(self.network.switches)
        if self.schedule.drop_probability > 0.0 \
                or self.schedule.corrupt_probability > 0.0:
            self.network.install_fault_hook(self._message_fault)
        for ev in self.schedule.events:
            self._scheduled.append(
                self.sim.schedule_at(ev.time_ns, self._apply, ev))
        self._watchdog = Watchdog(self.sim, spec.watchdog_interval_ns,
                                  spec.watchdog_strikes, self.state.counters)
        for reporter in self._pending_reporters:
            self._watchdog.add_reporter(reporter)
        self._pending_reporters.clear()
        self._watchdog.arm()

    def add_watch_reporter(self, reporter: Callable[[], str]) -> None:
        """Extend the stall watchdog's outstanding-work report.

        Serving loops register their request-queue state here so a
        watchdog trip mid-stream reports outstanding *requests* (who is
        running/waiting and how far along) and not just outstanding ops.
        """
        if self._watchdog is None:
            self._pending_reporters.append(reporter)
        else:
            self._watchdog.add_reporter(reporter)

    def quiesce(self) -> None:
        """The workload completed: stand down everything still scheduled.

        Faults not yet injected, pending restore events, the watchdog tick
        and any armed retransmit timers are cancelled so the event queue
        drains and ``sim.now`` at drain equals the workload makespan rather
        than the fault horizon.
        """
        if self._quiesced:
            return
        self._quiesced = True
        now = self.sim.now
        for timer in self._scheduled:
            if not timer.cancelled and timer.time >= now:
                timer.cancel()
        self._scheduled.clear()
        if self._watchdog is not None:
            self._watchdog.disarm()
        self.state.retransmitter.quiesce()

    # ------------------------------------------------------------------
    # Timed faults
    # ------------------------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        if self._quiesced:
            return
        counters = self.state.counters
        span = self._span_begin(ev)
        if self._ts.enabled:
            # duration 0 means permanent (PLANE_FAIL / NVLS_FAIL): an
            # open-ended mark that reports clamp to the makespan.
            self._ts.mark_window(
                self.sim.now,
                self.sim.now + ev.duration_ns if ev.duration_ns > 0.0
                else None,
                f"{ev.kind.value} {ev.target}")
        if ev.kind is FaultKind.LINK_DEGRADE:
            self._links[ev.target].set_bandwidth_factor(ev.magnitude)
            counters.bump("link_degrade_windows")
            self._schedule_clear(
                ev, span,
                lambda: self._links[ev.target].set_bandwidth_factor(1.0))
        elif ev.kind is FaultKind.LINK_DOWN:
            self._links[ev.target].set_down(True)
            counters.bump("link_down_windows")
            self._schedule_clear(
                ev, span, lambda: self._links[ev.target].set_down(False))
        elif ev.kind is FaultKind.PLANE_FAIL:
            plane = int(ev.target.split(":")[1])
            self.network.fail_plane(plane)
            switch = self.network.switches[plane]
            switch.failed = True
            self._fail_engines(switch, compute_only=False)
            # After the engine hooks, so replanning listeners observe the
            # post-fallback state (counter bump included).
            self.state.plane_failed(plane)
        elif ev.kind is FaultKind.NVLS_FAIL:
            plane = int(ev.target.split(":")[1])
            counters.bump("compute_unit_failures")
            self._fail_engines(self.network.switches[plane],
                               compute_only=True)
        elif ev.kind is FaultKind.GPU_STRAGGLER:
            gpu = self._gpu(ev.target)
            gpu.compute_slowdown = ev.magnitude
            counters.bump("straggler_windows")
            self._schedule_clear(
                ev, span,
                lambda: setattr(gpu, "compute_slowdown", 1.0))
        elif ev.kind is FaultKind.SM_THROTTLE:
            gpu = self._gpu(ev.target)
            gpu.set_sm_throttle(ev.magnitude)
            counters.bump("sm_throttle_windows")
            self._schedule_clear(
                ev, span, lambda: gpu.set_sm_throttle(1.0))

    def _gpu(self, target: str):
        return self.harness.executor.gpus[int(target.split(":")[1])]

    def _fail_engines(self, switch, compute_only: bool) -> None:
        """Fail the switch's engines via their ``fail(switch)`` hook.

        ``compute_only`` restricts the fault to engines marked as in-switch
        compute units (NVLS engine, CAIS merge unit); a whole-plane failure
        takes the sync table down too.
        """
        for engine in switch.engines:
            fail = getattr(engine, "fail", None)
            if fail is None:
                continue
            if compute_only and not getattr(engine, "COMPUTE_UNIT", False):
                continue
            fail(switch)

    def _schedule_clear(self, ev: FaultEvent, span: int,
                        clear: Callable[[], None]) -> None:
        if ev.duration_ns <= 0.0:
            return

        def _clear() -> None:
            clear()
            self._span_end(span)

        self._scheduled.append(self.sim.schedule(ev.duration_ns, _clear))

    # ------------------------------------------------------------------
    # Message drop / corruption
    # ------------------------------------------------------------------
    def _message_fault(self, msg: Message) -> bool:
        """Link hook: True drops the message; may mark it corrupted."""
        if msg.op is Op.STORE:
            if "ring" not in msg.meta:
                return False
        elif msg.op not in _DROPPABLE_OPS:
            return False
        u = float(self._drop_rng.random())
        drop_p = self.schedule.drop_probability
        if u < drop_p:
            self.state.counters.bump("messages_dropped")
            return True
        if msg.payload_bytes > 0 \
                and u < drop_p + self.schedule.corrupt_probability:
            # Idempotent: a message re-hooked on its second link hop stays
            # corrupted rather than drawing a second verdict.
            if not msg.meta.get("corrupted"):
                mark_corrupted(msg)
                self.state.counters.bump("messages_corrupted")
        return False

    # ------------------------------------------------------------------
    # Trace spans for fault windows
    # ------------------------------------------------------------------
    def _span_begin(self, ev: FaultEvent) -> int:
        if not self._tr.enabled:
            return -1
        aid = self._next_span
        self._next_span += 1
        if ev.duration_ns > 0.0:
            self._tr.async_begin(self._track,
                                 f"{ev.kind.value} {ev.target}", aid,
                                 self.sim.now, cat="fault",
                                 args={"magnitude": ev.magnitude})
        else:
            self._tr.instant(self._track, f"{ev.kind.value} {ev.target}",
                             self.sim.now, cat="fault")
        return aid

    def _span_end(self, aid: int) -> None:
        if self._tr.enabled and aid >= 0:
            self._tr.async_end(self._track, "fault-window", aid,
                               self.sim.now, cat="fault")
