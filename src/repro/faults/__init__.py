"""Fault injection and resilience machinery.

Seeded, deterministic fault schedules (:mod:`.schedule`), ack/retransmit
reliability with bounded exponential backoff (:mod:`.retry`), a sim-time
stall watchdog (:mod:`.watchdog`), and the injector that arms it all on a
live harness (:mod:`.injector`).  Disabled by default: with
``SystemConfig.faults.enabled == False`` none of this is constructed and
every simulation is bit-identical to a build without this package.
"""

from .injector import FaultCounters, FaultInjector, FaultState
from .retry import RKEY_META, Retransmitter, RetryPolicy
from .schedule import (FaultEvent, FaultKind, FaultSchedule, WINDOWED_KINDS,
                       link_name)
from .watchdog import Watchdog

__all__ = [
    "FaultCounters", "FaultInjector", "FaultState",
    "RKEY_META", "Retransmitter", "RetryPolicy",
    "FaultEvent", "FaultKind", "FaultSchedule", "WINDOWED_KINDS",
    "link_name",
    "Watchdog",
]
