"""Sim-time watchdog: converts silent stalls into diagnosable errors.

Under fault injection a run can wedge in ways the fault-free simulator
never does — e.g. a retransmission budget exhausted on a chunk nobody will
resend again.  The event queue then either drains early (caught by the
executor's existing drained-queue check) or, worse, keeps ticking on
periodic timers while no real work completes.  The watchdog samples
progress every ``watchdog_interval_ns`` and, after ``watchdog_strikes``
consecutive intervals in which nothing but the watchdog itself fired,
raises :class:`DeadlockError` carrying the per-entity outstanding-work
report from :meth:`Simulator.outstanding_report`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..common.errors import DeadlockError
from ..common.events import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .injector import FaultCounters


class Watchdog:
    """Periodic no-progress detector running inside the simulation."""

    def __init__(self, sim: Simulator, interval_ns: float, strikes: int,
                 counters: "FaultCounters",
                 progress: Optional[Callable[[], int]] = None):
        self.sim = sim
        self.interval_ns = interval_ns
        self.max_strikes = strikes
        self.counters = counters
        # Default progress metric: events fired, minus our own ticks.
        self._progress = progress or (lambda: sim.events_processed)
        self._own_fires = 0
        self._last = None
        self._strikes = 0
        self._timer = None
        self._reporters: List[Callable[[], str]] = []

    def add_reporter(self, reporter: Callable[[], str]) -> None:
        """Extend the trip report beyond the simulator's outstanding-ops
        view.  Serving loops add their request-queue state so a stall
        mid-stream names the wedged *requests*, not just wedged messages.
        Reporters returning an empty string are skipped."""
        self._reporters.append(reporter)

    def arm(self) -> None:
        self._timer = self.sim.schedule(self.interval_ns, self._tick)

    def disarm(self) -> None:
        """Stop watching (workload finished; the queue may now drain)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self._timer = None
        self._own_fires += 1
        if self.sim.pending() == 0:
            # Queue is otherwise empty: let the run drain; the executor's
            # drained-queue check owns that failure mode.
            return
        progress = self._progress() - self._own_fires
        if progress != self._last:
            self._last = progress
            self._strikes = 0
        else:
            self._strikes += 1
            if self._strikes >= self.max_strikes:
                self.counters.bump("watchdog_trips")
                report = list(self.sim.outstanding_report())
                for reporter in self._reporters:
                    line = reporter()
                    if line:
                        report.append(line)
                detail = "; ".join(report) if report else "<no reporters>"
                raise DeadlockError(
                    f"no simulation progress for "
                    f"{self._strikes * self.interval_ns:.0f} ns "
                    f"(t={self.sim.now:.0f} ns) — outstanding work: "
                    f"{detail}")
        self.arm()
