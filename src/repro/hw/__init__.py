"""Analytic hardware cost models (paper Section V-D)."""

from .area import (
    AreaEstimate,
    gpu_synchronizer_area,
    overhead_report,
    switch_merge_unit_area,
)

__all__ = [
    "AreaEstimate",
    "gpu_synchronizer_area",
    "overhead_report",
    "switch_merge_unit_area",
]
