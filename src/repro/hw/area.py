"""Analytic hardware-overhead model (paper Section V-D).

The paper synthesizes the CAIS extensions in TSMC 12 nm and reports:

* switch side (merge unit: CAM lookup + merging table + control) —
  ~0.50 mm^2, under 1% of an NVSwitch die;
* GPU side (TB-group synchronizer) — ~0.019 mm^2 per die, under 0.01% of
  an H100.

Without a synthesis flow we estimate the same structures from published
12 nm memory-macro densities: SRAM at ~0.30 mm^2 per Mib (bit-cell
~0.021 um^2 plus array overheads) and binary CAM at ~3x the SRAM cost per
bit.  Logic overhead is folded in with a fixed factor.  The point of the
exercise — both structures are vanishingly small next to their host dies —
is robust to the exact densities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import SwitchSpec

# Published-magnitude densities for a 12 nm process (high-density 6T
# bit-cell ~0.03 um^2, ~2x array overhead for decoders/sense amps).
SRAM_MM2_PER_MIB = 0.15
CAM_COST_FACTOR = 3.0                 # CAM bit ~ 3x an SRAM bit
CONTROL_LOGIC_FACTOR = 1.35           # comparators, FSMs, arbitration

#: Die areas for the "% of die" comparisons.
NVSWITCH_DIE_MM2 = 106.0              # third-gen NVSwitch (Hot Chips)
H100_DIE_MM2 = 814.0

#: CAM tag width per merge entry: 48-bit address + type + state bits.
CAM_TAG_BITS = 52
#: Group Sync Table provisioning on the GPU: active groups tracked.
SYNC_TABLE_GROUPS = 1024
SYNC_ENTRY_BITS = 48                  # group id + counters + state


@dataclass(frozen=True)
class AreaEstimate:
    """Area of one hardware extension and its share of the host die."""

    name: str
    sram_mm2: float
    cam_mm2: float
    total_mm2: float
    host_die_mm2: float

    @property
    def fraction_of_die(self) -> float:
        return self.total_mm2 / self.host_die_mm2


def _sram_mm2(bits: float) -> float:
    return bits / (1024 * 1024) * SRAM_MM2_PER_MIB


def switch_merge_unit_area(spec: SwitchSpec, ports: int = 8) -> AreaEstimate:
    """Merge unit area for one switch (all ports).

    Per port: a merging table of ``merge_table_entries`` x 128 B (SRAM) and
    a CAM lookup table of one tag per entry.
    """
    table_bits = ports * spec.merge_table_entries * spec.merge_entry_bytes * 8
    cam_bits = ports * spec.merge_table_entries * CAM_TAG_BITS
    sram = _sram_mm2(table_bits)
    cam = _sram_mm2(cam_bits) * CAM_COST_FACTOR
    total = (sram + cam) * CONTROL_LOGIC_FACTOR
    return AreaEstimate(name="switch merge unit", sram_mm2=sram,
                        cam_mm2=cam, total_mm2=total,
                        host_die_mm2=NVSWITCH_DIE_MM2)


def gpu_synchronizer_area() -> AreaEstimate:
    """TB-group synchronizer area per GPU die."""
    bits = SYNC_TABLE_GROUPS * SYNC_ENTRY_BITS
    sram = _sram_mm2(bits)
    total = sram * CONTROL_LOGIC_FACTOR * 2.0   # scheduler interfaces
    return AreaEstimate(name="gpu synchronizer", sram_mm2=sram,
                        cam_mm2=0.0, total_mm2=total,
                        host_die_mm2=H100_DIE_MM2)


def overhead_report(spec: SwitchSpec = None) -> str:
    """Human-readable Section V-D style summary."""
    spec = spec or SwitchSpec()
    switch = switch_merge_unit_area(spec)
    gpu = gpu_synchronizer_area()
    lines = [
        "Hardware overhead (12 nm analytic model):",
        f"  {switch.name}: {switch.total_mm2:.3f} mm^2 "
        f"({switch.fraction_of_die * 100:.2f}% of an NVSwitch die; "
        f"paper: ~0.50 mm^2, <1%)",
        f"  {gpu.name}: {gpu.total_mm2:.4f} mm^2 "
        f"({gpu.fraction_of_die * 100:.4f}% of an H100 die; "
        f"paper: ~0.019 mm^2, <0.01%)",
    ]
    return "\n".join(lines)
